"""Pluggable credit-window managers for the CREDIT layer.

A :class:`WindowManager` is the *receiver-side grant policy* of one
flow: it decides how large the flow's credit window is right now and
how much of the pending (earned-but-unadvertised) credit to extend at
each opportunity.  The CREDIT layer keeps the cumulative accounting —
``consumed_total`` and ``advertised_total`` per flow — and asks the
manager two questions:

* ``grant(pending, now, tail)`` — how many of the ``pending`` credit
  bytes should be advertised *now*?  ``tail=True`` marks the periodic
  grant tick (a chance to flush deferrals); ``tail=False`` is the hot
  path right after a delivery.
* ``window`` — the target amount of unconsumed credit a sender may hold
  (what WINDOW_UPDATE grants aim to restore).

Managers never touch the wire and never read a global clock — ``now``
comes in as an argument from whatever
:class:`~repro.runtime.clock.Clock` the owning stack runs on, which is
what keeps every implementation deterministic under the DES.

Three implementations, in the spirit of the hyper/http20 window manager
split:

* :class:`FixedWindowManager` — constant window; grants are batched to
  half-window quanta so a chatty flow costs two WINDOW_UPDATEs per
  window, not one per message.
* :class:`AimdWindowManager` — TCP-style additive-increase /
  multiplicative-decrease of the window, driven by the sender's
  piggybacked congestion bit (``on_shed``) and clean grant cycles
  (``on_ack``).
* :class:`PacedWindowManager` — grants metered through a byte-rate
  token bucket, turning credit into a smooth rate cap (the receiver
  paces the sender instead of the sender pacing itself, which is what
  made the old token-bucket FLOW layer one-sided).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Type

from repro.errors import ConfigurationError

#: Default per-flow window in credit bytes (one credit = one body byte,
#: minimum one per message).
DEFAULT_WINDOW = 64 * 1024


class WindowManager:
    """Base class and protocol for credit-window grant policies.

    Subclasses override :meth:`grant` and optionally the adaptation
    hooks.  ``window`` is mutable state — adaptive managers move it.
    """

    def __init__(self, window: int = DEFAULT_WINDOW, **_ignored: Any) -> None:
        if window < 1:
            raise ConfigurationError("window must be at least 1 credit byte")
        self.window = int(window)

    def grant(self, pending: int, now: float, tail: bool = False) -> int:
        """Credit bytes (``0..pending``) to advertise at this moment."""
        raise NotImplementedError

    # -- adaptation hooks (no-ops unless the manager adapts) -----------

    def on_shed(self) -> None:
        """The sender reported overload (shed/blocked) on this flow."""

    def on_ack(self) -> None:
        """A grant cycle completed without any overload report."""

    def snapshot(self) -> Dict[str, Any]:
        """Introspection blob for ``dump`` and tests."""
        return {"kind": type(self).__name__, "window": self.window}


class FixedWindowManager(WindowManager):
    """Constant window; grants batched to half-window quanta.

    Deferring grants until half the window has been earned (or the tail
    tick fires) is the standard WINDOW_UPDATE batching trade-off:
    grant traffic stays O(2) per window while the sender never stalls
    for more than half a window plus one tick.
    """

    def grant(self, pending: int, now: float, tail: bool = False) -> int:
        if pending <= 0:
            return 0
        if tail or pending * 2 >= self.window:
            return pending
        return 0


class AimdWindowManager(WindowManager):
    """Additive-increase / multiplicative-decrease adaptive window.

    The congestion signal is end-to-end: a sender that shed or refused
    traffic piggybacks a congestion bit on its next data message, and
    the receiving CREDIT layer calls :meth:`on_shed`; a full grant
    cycle without the bit calls :meth:`on_ack`.  Decreases are
    multiplicative (halve, floor ``min_window``), increases additive
    (``increment``, cap ``max_window``) — the classic AIMD fairness
    argument carried over to receiver-granted credit.
    """

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        min_window: int = 1024,
        max_window: int = 4 * DEFAULT_WINDOW,
        increment: int = 4096,
        **_ignored: Any,
    ) -> None:
        super().__init__(window=window)
        if not (1 <= min_window <= window <= max_window):
            raise ConfigurationError(
                "need 1 <= min_window <= window <= max_window"
            )
        self.min_window = int(min_window)
        self.max_window = int(max_window)
        self.increment = int(increment)
        self.decreases = 0
        self.increases = 0

    def grant(self, pending: int, now: float, tail: bool = False) -> int:
        if pending <= 0:
            return 0
        if tail or pending * 2 >= self.window:
            return pending
        return 0

    def on_shed(self) -> None:
        self.window = max(self.min_window, self.window // 2)
        self.decreases += 1

    def on_ack(self) -> None:
        if self.window < self.max_window:
            self.window = min(self.max_window, self.window + self.increment)
            self.increases += 1

    def snapshot(self) -> Dict[str, Any]:
        info = super().snapshot()
        info.update(
            min_window=self.min_window,
            max_window=self.max_window,
            increases=self.increases,
            decreases=self.decreases,
        )
        return info


class PacedWindowManager(WindowManager):
    """Rate-paced grants: a token bucket meters credit at ``rate`` B/s.

    The window bounds the sender's burst; the bucket bounds its
    sustained rate.  Unlike the deprecated sender-side FLOW bucket,
    the receiver holds this one — a sender cannot overrun it by simply
    ignoring its own pacing, because unearned credit never arrives.
    """

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        rate: float = 256 * 1024.0,
        **_ignored: Any,
    ) -> None:
        super().__init__(window=window)
        if rate <= 0:
            raise ConfigurationError("pacing rate must be positive")
        self.rate = float(rate)
        self._tokens = float(window)  # a full initial burst allowance
        self._last: Optional[float] = None  # lazy: first grant() sets it

    def _refill(self, now: float) -> None:
        # Lazy epoch: the first call measures zero elapsed time, never
        # time-since-clock-epoch (the legacy FLOW layer's init bug).
        if self._last is None:
            self._last = now
        self._tokens = min(
            float(self.window), self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    def grant(self, pending: int, now: float, tail: bool = False) -> int:
        if pending <= 0:
            return 0
        self._refill(now)
        amount = int(min(pending, self._tokens))
        if amount > 0:
            self._tokens -= amount
        return amount

    def snapshot(self) -> Dict[str, Any]:
        info = super().snapshot()
        info.update(rate=self.rate, tokens=round(self._tokens, 3))
        return info


_MANAGER_KINDS: Dict[str, Type[WindowManager]] = {
    "fixed": FixedWindowManager,
    "aimd": AimdWindowManager,
    "paced": PacedWindowManager,
}


def make_window_manager(kind: str, **config: Any) -> WindowManager:
    """Factory used by the CREDIT layer: ``make_window_manager("aimd",
    window=8192, increment=512)``.  Unknown kinds raise with the list of
    known ones (mirrors the stack composer's unknown-layer error)."""
    cls = _MANAGER_KINDS.get(kind)
    if cls is None:
        known = ", ".join(sorted(_MANAGER_KINDS))
        raise ConfigurationError(
            f"unknown window manager {kind!r}; known managers: {known}"
        )
    return cls(**config)
