"""repro.flow — credit windows, backpressure, and the overload plane.

The flow subsystem supplies the *policy* half of flow control; the
``CREDIT`` stack layer (:mod:`repro.layers.credit`) supplies the
*mechanism*.  Split this way, the grant policies here are plain
deterministic objects — testable in isolation, reusable beneath any
upper stack (the hourglass argument), and blind to wire formats:

* :mod:`repro.flow.window` — the pluggable :class:`WindowManager`
  protocol with fixed, AIMD-adaptive, and rate-pacing implementations;
* :mod:`repro.flow.loadgen` — the open-loop load generator behind
  ``python -m repro load``, reporting SLO-style goodput, tail latency,
  shed counts, and retransmit-buffer high-water marks on either
  substrate.
"""

from repro.flow.window import (
    DEFAULT_WINDOW,
    AimdWindowManager,
    FixedWindowManager,
    PacedWindowManager,
    WindowManager,
    make_window_manager,
)
from repro.flow.loadgen import LoadConfig, LoadReport, run_load

__all__ = [
    "DEFAULT_WINDOW",
    "AimdWindowManager",
    "FixedWindowManager",
    "PacedWindowManager",
    "WindowManager",
    "make_window_manager",
    "LoadConfig",
    "LoadReport",
    "run_load",
]
