"""Open-loop load generation with SLO-style reporting.

An *open-loop* generator schedules message arrivals from a clock, not
from completions: senders offer load at a configured rate whether or
not the system keeps up, which is the only honest way to measure an
overload plane (a closed loop self-throttles and hides the cliff).

The generator builds a fan-in topology — ``senders`` producer nodes
multicasting into one group that also contains a designated receiver —
on either substrate, drives seeded Poisson arrivals for ``duration``
seconds, and reports:

* **goodput** — payload bytes per second actually delivered at the
  receiver during the measurement window;
* **latency** — p50/p99/max of send-to-delivery time (the send
  timestamp rides in the payload, so no side channel is needed);
* **verdict counts** — accepted / queued / shed / blocked, straight
  from the :class:`~repro.core.events.FlowVerdict` each cast returns;
* **high-water marks** — per-sender CREDIT queue depth and NAK
  retransmission-buffer size, sampled through the ``dump`` downcall
  during the storm (the numbers the acceptance bound is about).

On the DES the whole report is a pure function of ``(seed, config)`` —
the checked-in baseline under ``benchmarks/results/`` is reproducible
byte-for-byte.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError

#: Stack template used when the caller does not supply one.  CREDIT on
#: top (only application traffic is charged), reliable FIFO below.
DEFAULT_LOAD_STACK = (
    "CREDIT(window={window},manager={manager},max_queue={max_queue},"
    "shed_policy={shed_policy}):MBRSHIP:FRAG:NAK:COM"
)

_STAMP = struct.Struct("!d")  # send-time, leading the payload
_SAMPLE_PERIOD = 0.05  # high-water sampling cadence during the storm


@dataclass
class LoadConfig:
    """One load run, fully specified (and therefore fully replayable).

    Attributes:
        senders: number of producer nodes fanning into the receiver.
        rate: per-sender offered arrival rate, messages/second.
        size: payload size in bytes (floored at the timestamp size).
        duration: storm length in seconds.
        seed: world seed; on the DES it pins the entire report.
        substrate: ``"sim"`` or ``"realtime"``.
        stack: explicit stack spec; ``None`` builds one from
            ``window``/``manager``/``max_queue``/``shed_policy`` via
            :data:`DEFAULT_LOAD_STACK`.
        window / manager / max_queue / shed_policy: CREDIT parameters
            for the default stack (ignored when ``stack`` is given).
        consume_rate: receiver consumption rate in bytes/second
            (``None`` = the receiver keeps up; small values make it the
            slow receiver of the fan-in storm).
        drain: extra seconds after the storm for in-flight deliveries.
    """

    senders: int = 4
    rate: float = 200.0
    size: int = 256
    duration: float = 5.0
    seed: int = 0
    substrate: str = "sim"
    stack: Optional[str] = None
    window: int = 16384
    manager: str = "fixed"
    max_queue: int = 64
    shed_policy: str = "block"
    consume_rate: Optional[float] = None
    drain: float = 2.0

    def resolved_stack(self) -> str:
        if self.stack is not None:
            return self.stack
        return DEFAULT_LOAD_STACK.format(
            window=self.window,
            manager=self.manager,
            max_queue=self.max_queue,
            shed_policy=self.shed_policy,
        )

    def validate(self) -> None:
        if self.senders < 1:
            raise ConfigurationError("need at least one sender")
        if self.rate <= 0 or self.duration <= 0:
            raise ConfigurationError("rate and duration must be positive")
        if self.substrate not in ("sim", "realtime"):
            raise ConfigurationError(
                f"unknown substrate {self.substrate!r} (sim | realtime)"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "senders": self.senders,
            "rate": self.rate,
            "size": self.size,
            "duration": self.duration,
            "seed": self.seed,
            "substrate": self.substrate,
            "stack": self.resolved_stack(),
            "consume_rate": self.consume_rate,
        }


@dataclass
class LoadReport:
    """What one load run measured (see module docstring)."""

    config: LoadConfig
    offered: int = 0
    offered_bytes: int = 0
    accepted: int = 0
    queued: int = 0
    shed: int = 0
    blocked: int = 0
    delivered: int = 0
    delivered_bytes: int = 0
    goodput_bps: float = 0.0
    goodput_mps: float = 0.0
    #: Wire-level accounting over the measurement window (storm +
    #: drain): what the substrate actually put on the medium, next to
    #: the application-level goodput so coalescing's amortization (many
    #: app messages per datagram) is visible in the same report.
    wire_bytes: int = 0
    datagrams: int = 0
    wire_bytes_per_s: float = 0.0
    datagrams_per_s: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    max_ms: float = 0.0
    queue_highwater: int = 0
    nak_buffer_highwater: int = 0
    grants_sent: int = 0
    grants_received: int = 0
    sender_dumps: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def delivery_ratio(self) -> float:
        """Delivered / offered (goodput efficiency, 0..1)."""
        return self.delivered / self.offered if self.offered else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config.to_dict(),
            "offered": self.offered,
            "offered_bytes": self.offered_bytes,
            "accepted": self.accepted,
            "queued": self.queued,
            "shed": self.shed,
            "blocked": self.blocked,
            "delivered": self.delivered,
            "delivered_bytes": self.delivered_bytes,
            "delivery_ratio": round(self.delivery_ratio, 6),
            "goodput_bps": round(self.goodput_bps, 3),
            "goodput_mps": round(self.goodput_mps, 3),
            "wire_bytes": self.wire_bytes,
            "datagrams": self.datagrams,
            "wire_bytes_per_s": round(self.wire_bytes_per_s, 3),
            "datagrams_per_s": round(self.datagrams_per_s, 3),
            "latency_ms": {
                "p50": round(self.p50_ms, 3),
                "p99": round(self.p99_ms, 3),
                "max": round(self.max_ms, 3),
            },
            "queue_highwater": self.queue_highwater,
            "nak_buffer_highwater": self.nak_buffer_highwater,
            "grants_sent": self.grants_sent,
            "grants_received": self.grants_received,
        }

    def render(self) -> str:
        cfg = self.config
        lines = [
            "flow load report (open-loop)",
            f"  substrate={cfg.substrate} seed={cfg.seed}",
            f"  stack: {cfg.resolved_stack()}",
            (
                f"  workload: {cfg.senders} senders x {cfg.rate:g} msg/s "
                f"x {cfg.size} B for {cfg.duration:g} s"
            ),
            (
                "  receiver: consume_rate="
                + (
                    f"{cfg.consume_rate:g} B/s (slow)"
                    if cfg.consume_rate is not None
                    else "unlimited"
                )
            ),
            "",
            f"  offered    {self.offered:>8d} msgs  {self.offered_bytes} B",
            (
                f"  verdicts   accepted={self.accepted} queued={self.queued} "
                f"shed={self.shed} blocked={self.blocked}"
            ),
            (
                f"  delivered  {self.delivered:>8d} msgs  "
                f"{self.delivered_bytes} B  "
                f"(ratio {self.delivery_ratio:.3f})"
            ),
            (
                f"  goodput    {self.goodput_bps:.1f} B/s  "
                f"({self.goodput_mps:.1f} msg/s)"
            ),
            (
                f"  wire       {self.wire_bytes_per_s:.1f} B/s  "
                f"({self.datagrams_per_s:.1f} datagrams/s, "
                f"{self.wire_bytes} B / {self.datagrams} datagrams total)"
            ),
            (
                f"  latency    p50={self.p50_ms:.2f} ms  "
                f"p99={self.p99_ms:.2f} ms  max={self.max_ms:.2f} ms"
            ),
            (
                f"  high-water sender queue={self.queue_highwater}  "
                f"nak retransmit buffer={self.nak_buffer_highwater} msgs"
            ),
            (
                f"  grants     sent={self.grants_sent} "
                f"received={self.grants_received}"
            ),
        ]
        return "\n".join(lines)


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted data (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def _make_world(config: LoadConfig, instrument: bool = False):
    from repro.sim.rand import derive_seed

    seed = derive_seed(config.seed, "flow.load")
    obs = None
    if instrument:
        from repro.obs import ObsOptions

        obs = ObsOptions(layer_metrics=True)
    if config.substrate == "sim":
        from repro.core.process import World

        return World(seed=seed, network="lan", obs=obs)
    from repro.runtime.world import RealtimeWorld

    return RealtimeWorld(seed=seed, obs=obs)


def run_load(
    config: LoadConfig, metrics_out: Optional[str] = None
) -> LoadReport:
    """Execute one open-loop load run and return its report.

    ``metrics_out`` additionally writes the world's observability
    snapshot (including the ``flow_*`` series) as JSONL for
    ``python -m repro obs-report``.
    """
    config.validate()
    world = _make_world(config, instrument=metrics_out is not None)
    try:
        report = _run(world, config)
        if metrics_out is not None:
            world.write_metrics(metrics_out, meta={"tool": "load"})
        return report
    finally:
        if config.substrate == "realtime":
            world.close()


def _run(world, config: LoadConfig) -> LoadReport:
    report = LoadReport(config=config)
    stack = config.resolved_stack()
    group = "load"
    latencies: List[float] = []

    def on_delivery(delivered) -> None:
        report.delivered += 1
        report.delivered_bytes += len(delivered.data)
        if len(delivered.data) >= _STAMP.size:
            (sent_at,) = _STAMP.unpack_from(delivered.data)
            latencies.append(world.now - sent_at)

    receiver = world.process("recv").endpoint().join(group, stack=stack)
    receiver.on_message = on_delivery
    senders = []
    for index in range(config.senders):
        handle = world.process(f"s{index}").endpoint().join(group, stack=stack)
        # Senders fan *in*: their own delivery logs are not the
        # measurement, so drop copies on the floor cheaply.
        handle.on_message = lambda _delivered: None
        senders.append(handle)
        world.run(0.3)
    full = config.senders + 1
    world.run_while(
        lambda: all(
            h.view is not None and h.view.size == full
            for h in [receiver] + senders
        ),
        timeout=30.0 if config.substrate == "sim" else 10.0,
    )

    if config.consume_rate is not None:
        for layer in receiver.focus_all("CREDIT"):
            layer.set_consume_rate(config.consume_rate)

    # Schedule the whole open-loop arrival process up front: seeded
    # Poisson arrivals per sender, independent of completions.
    rng = world.rng.stream("flow.loadgen")
    start = world.now
    pad = b"." * max(0, config.size - _STAMP.size)

    def fire(handle) -> None:
        payload = _STAMP.pack(world.now) + pad
        report.offered += 1
        report.offered_bytes += len(payload)
        verdict = handle.cast(payload)
        name = verdict.value if verdict is not None else "accepted"
        if name == "accepted":
            report.accepted += 1
        elif name == "queued":
            report.queued += 1
        elif name == "shed":
            report.shed += 1
        elif name == "blocked":
            report.blocked += 1

    for handle in senders:
        at = 0.0
        while True:
            at += rng.expovariate(config.rate)
            if at >= config.duration:
                break
            world.scheduler.call_at(start + at, fire, handle)

    # Sample the overload plane's high-water marks during the storm.
    def sample() -> None:
        for handle in senders:
            for layer in handle.focus_all("CREDIT"):
                report.queue_highwater = max(
                    report.queue_highwater, layer.queue_depth
                )
            for info in handle.dump():
                if info.get("name") == "NAK":
                    report.nak_buffer_highwater = max(
                        report.nak_buffer_highwater, info.get("buffered", 0)
                    )

    ticks = int(config.duration / _SAMPLE_PERIOD)
    for tick in range(1, ticks + 1):
        world.scheduler.call_at(start + tick * _SAMPLE_PERIOD, sample)

    # Wire counters over the measurement window only (join/settle
    # traffic above is excluded).  Both substrates expose the same
    # NetworkStats surface; sim worlds reach it through the network
    # (which may be a Coalescer — it delegates ``stats``).
    wire = getattr(world, "stats", None)
    if wire is None:
        wire = world.network.stats
    wire_bytes_before = int(wire.bytes_sent)
    datagrams_before = int(wire.packets_sent)

    world.run(config.duration)
    sample()
    world.run(max(config.drain, 0.0))
    sample()

    # Fold in the final layer dumps (queue depths may have peaked
    # between samples; CREDIT tracks its own high-water mark).
    for handle in senders:
        for info in handle.dump():
            if info.get("name") == "CREDIT":
                report.sender_dumps.append(info)
                report.queue_highwater = max(
                    report.queue_highwater, info.get("max_queue_depth", 0)
                )
                report.grants_received += info.get("grants_received", 0)
    for info in receiver.dump():
        if info.get("name") == "CREDIT":
            report.grants_sent += info.get("grants_sent", 0)

    window = config.duration + max(config.drain, 0.0)
    report.goodput_bps = report.delivered_bytes / window
    report.goodput_mps = report.delivered / window
    report.wire_bytes = int(wire.bytes_sent) - wire_bytes_before
    report.datagrams = int(wire.packets_sent) - datagrams_before
    report.wire_bytes_per_s = report.wire_bytes / window
    report.datagrams_per_s = report.datagrams / window
    latencies.sort()
    report.p50_ms = _percentile(latencies, 0.50) * 1000.0
    report.p99_ms = _percentile(latencies, 0.99) * 1000.0
    report.max_ms = latencies[-1] * 1000.0 if latencies else 0.0
    return report
