"""Stability soundness checker.

Section 9 defines a message as stable once "it has been processed by
all its surviving destination processes".  The checker validates the
STABLE/PINWHEEL layers' reports against ground truth: any (origin, sid)
at or below a member's reported stability frontier must actually have
been delivered — and acknowledged — at every member of that view.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.core.group import GroupHandle
from repro.errors import VerificationError


def check_stability_soundness(
    handles: Iterable[GroupHandle],
    stability_layer: str = "STABLE",
) -> None:
    """Frontier claims never exceed what members actually delivered.

    Reads each member's live stability layer (via ``focus``) and checks
    its frontier per origin against every member's delivery log for the
    current view.
    """
    handles = list(handles)
    violations: List[str] = []
    # Ground truth: per member, per origin, how many casts were delivered
    # in the *current* view.
    delivered_counts: Dict[str, Dict[str, int]] = {}
    for handle in handles:
        if handle.view is None:
            continue
        counts: Dict[str, int] = {}
        for delivered in handle.delivery_log:
            if (
                delivered.was_cast
                and delivered.view is not None
                and delivered.view.view_id == handle.view.view_id
                and "stable_id" in delivered.info
            ):
                origin, sid = delivered.info["stable_id"]
                counts[str(origin)] = max(counts.get(str(origin), 0), sid)
        delivered_counts[str(handle.endpoint_address)] = counts
    for handle in handles:
        if handle.left or handle.view is None:
            continue
        try:
            layer = handle.focus(stability_layer)
        except Exception:
            continue
        frontier = layer.stability_frontier()
        for origin, stable_sid in frontier.items():
            if stable_sid == 0:
                continue
            for member in handle.view.members:
                counts = delivered_counts.get(str(member))
                if counts is None:
                    continue
                actually = counts.get(str(origin), 0)
                if actually < stable_sid:
                    violations.append(
                        f"{handle.endpoint_address} reports ({origin}, "
                        f"{stable_sid}) stable, but {member} only delivered "
                        f"{actually} from that origin"
                    )
    if violations:
        raise VerificationError("stability report unsound", violations)
