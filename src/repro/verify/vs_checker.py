"""Virtual synchrony checkers.

These validate, over completed runs, the guarantees Section 5 states:

* **View agreement** — "Each member in the current view is guaranteed
  either to accept that same view, or to be removed from that view":
  any two members that install a view with the same identifier must
  have installed identical membership lists, and each member's view
  epochs must be strictly increasing.
* **Virtual synchrony** — "Messages sent in the current view are
  delivered to the surviving members of the current view": any two
  members that both *complete* a view (install its successor) must have
  delivered exactly the same per-source message sequence inside it.
* **Relacs view synchrony** (Section 9) — concurrent views (same epoch,
  different identity) must be non-overlapping.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

from repro.core.group import GroupHandle
from repro.core.view import ViewId
from repro.errors import VerificationError


def _fail(violations: List[str], message: str) -> None:
    if violations:
        raise VerificationError(message, violations)


def check_view_agreement(handles: Iterable[GroupHandle]) -> None:
    """Same ViewId ⇒ same members; per-member epochs strictly increase."""
    handles = list(handles)
    violations: List[str] = []
    seen: Dict[ViewId, Tuple] = {}
    for handle in handles:
        epochs = [v.view_id.epoch for v in handle.view_history]
        if epochs != sorted(set(epochs)):
            violations.append(
                f"{handle.endpoint_address}: view epochs not strictly "
                f"increasing: {epochs}"
            )
        for view in handle.view_history:
            previous = seen.get(view.view_id)
            if previous is None:
                seen[view.view_id] = view.members
            elif previous != view.members:
                violations.append(
                    f"view {view.view_id} installed with different members: "
                    f"{previous} vs {view.members}"
                )
    _fail(violations, "view agreement violated")


def _deliveries_by_view(
    handle: GroupHandle,
) -> Dict[ViewId, List[Tuple[str, bytes]]]:
    """Per view: the (source, data) sequence delivered while it was current."""
    result: Dict[ViewId, List[Tuple[str, bytes]]] = defaultdict(list)
    for delivered in handle.delivery_log:
        if delivered.view is not None and delivered.was_cast:
            result[delivered.view.view_id].append(
                (str(delivered.source), delivered.data)
            )
    return result


def check_virtual_synchrony(handles: Iterable[GroupHandle]) -> None:
    """Members that complete a view *together* delivered identical
    per-source streams inside it.

    A member *completes* view V when it installs a successor view; a
    member that crashed while V was current is exempt for V.  Under the
    extended virtual synchrony of Section 9, members that move to
    *different* successor views (they were partitioned) are allowed
    different delivery sets, so the comparison groups members by the
    (view, successor-view) transition they took.
    """
    handles = list(handles)
    violations: List[str] = []
    # Who completed which view, toward which successor?
    completed: Dict[Tuple[ViewId, ViewId], List[GroupHandle]] = defaultdict(list)
    for handle in handles:
        history = handle.view_history
        for view, successor in zip(history, history[1:]):
            completed[(view.view_id, successor.view_id)].append(handle)
    for (view_id, _successor_id), members in completed.items():
        if len(members) < 2:
            continue
        streams = {}
        for handle in members:
            per_view = _deliveries_by_view(handle)
            per_source: Dict[str, List[bytes]] = defaultdict(list)
            for source, data in per_view.get(view_id, []):
                per_source[source].append(data)
            streams[str(handle.endpoint_address)] = dict(per_source)
        reference_member, reference = next(iter(streams.items()))
        for member, stream in streams.items():
            if stream != reference:
                violations.append(
                    f"view {view_id}: {member} delivered {_summ(stream)} but "
                    f"{reference_member} delivered {_summ(reference)}"
                )
    _fail(violations, "virtual synchrony violated")


def _summ(stream: Dict[str, List[bytes]]) -> str:
    return "{" + ", ".join(f"{s}:{len(msgs)}" for s, msgs in sorted(stream.items())) + "}"


def check_view_synchrony_relacs(handles: Iterable[GroupHandle]) -> None:
    """Concurrent views are identical or non-overlapping (Relacs)."""
    handles = list(handles)
    violations: List[str] = []
    by_epoch: Dict[int, Dict[ViewId, Tuple]] = defaultdict(dict)
    for handle in handles:
        for view in handle.view_history:
            by_epoch[view.view_id.epoch][view.view_id] = view.members
    for epoch, views in by_epoch.items():
        ids = list(views)
        for i, vid_a in enumerate(ids):
            for vid_b in ids[i + 1 :]:
                overlap = set(views[vid_a]) & set(views[vid_b])
                if overlap:
                    violations.append(
                        f"concurrent views {vid_a} and {vid_b} share members "
                        f"{sorted(str(m) for m in overlap)}"
                    )
    _fail(violations, "Relacs view synchrony violated")
