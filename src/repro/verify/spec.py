"""I/O-automaton-style specifications over traces.

Section 8: "Our initial work on this problem uses I/O automata ... to
model the protocol executed by a Horus layer.  Important properties
provided by the layer can then be verified by combining this I/O
automaton with other I/O automata."

A :class:`TraceSpec` is a small automaton: it holds state, consumes
trace records as actions, and raises on an invariant violation.
:func:`check_trace` composes several specs over one trace — the
composition of automata, executable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.errors import VerificationError
from repro.sim.trace import TraceRecord, TraceRecorder


class TraceSpec:
    """Base class: a stateful invariant over a stream of trace records."""

    name = "spec"

    def step(self, record: TraceRecord) -> None:
        """Consume one record; raise :class:`VerificationError` on violation."""
        raise NotImplementedError

    def finish(self) -> None:
        """Called after the last record, for end-of-trace invariants."""


class ViewEpochMonotoneSpec(TraceSpec):
    """Each endpoint installs strictly increasing view epochs."""

    name = "view-epoch-monotone"

    def __init__(self) -> None:
        self._last: Dict[str, int] = {}

    def step(self, record: TraceRecord) -> None:
        if record.category != "view":
            return
        epoch = record.detail.get("vid")
        if epoch is None:
            return
        previous = self._last.get(record.actor)
        if previous is not None and epoch <= previous:
            raise VerificationError(
                f"{self.name}: {record.actor} installed epoch {epoch} "
                f"after {previous}",
                [repr(record)],
            )
        self._last[record.actor] = epoch


class CrashSilenceSpec(TraceSpec):
    """A crashed node performs no further actions (fail-stop).

    World-level ``crash`` records name a node; afterwards no record may
    be emitted by any actor on that node until a world-level ``recover``
    record (the FaultPlane's recovery op) brings the node back — the
    silence window is exactly crash-to-recover.
    """

    name = "crash-silence"

    def __init__(self) -> None:
        self._dead: Set[str] = set()

    def step(self, record: TraceRecord) -> None:
        if record.category == "crash":
            self._dead.add(record.actor)
            return
        if record.category == "recover":
            self._dead.discard(record.actor)
            return
        node = record.actor.split(":", 1)[0]
        if node in self._dead:
            raise VerificationError(
                f"{self.name}: crashed node {node} acted after its crash",
                [repr(record)],
            )


class DeliveryGaplessSpec(TraceSpec):
    """MBRSHIP deliveries per (actor, origin, vid) are gapless from 1."""

    name = "delivery-gapless"

    def __init__(self) -> None:
        self._next: Dict[tuple, int] = {}

    def step(self, record: TraceRecord) -> None:
        if record.category != "deliver" or record.detail.get("layer") != "MBRSHIP":
            return
        key = (record.actor, record.detail.get("origin"), record.detail.get("vid"))
        seq = record.detail.get("seq")
        expected = self._next.get(key, 1)
        if seq != expected:
            raise VerificationError(
                f"{self.name}: {record.actor} delivered seq {seq} from "
                f"{key[1]} in view {key[2]}, expected {expected}",
                [repr(record)],
            )
        self._next[key] = expected + 1


class TotalOrderGaplessSpec(TraceSpec):
    """TOTAL deliveries per member are consecutive from gseq 1.

    Combined with identical content checks this is the trace-level form
    of property P6: everyone walks the same global sequence with no
    holes.  (The counter resets with each view; the spec tracks resets
    by accepting a return to gseq 1.)
    """

    name = "total-order-gapless"

    def __init__(self) -> None:
        self._next: Dict[str, int] = {}

    def step(self, record: TraceRecord) -> None:
        if record.category != "total_deliver":
            return
        gseq = record.detail.get("gseq")
        expected = self._next.get(record.actor, 1)
        if gseq != expected and gseq != 1:  # 1 = a view reset
            raise VerificationError(
                f"{self.name}: {record.actor} delivered gseq {gseq}, "
                f"expected {expected}",
                [repr(record)],
            )
        self._next[record.actor] = gseq + 1


class SingleTokenSpec(TraceSpec):
    """Token passes name one holder at a time (per passing member).

    Each member's trace shows the token leaving it only after it was
    the holder; globally, two members never pass the token in the same
    gseq window — the uniqueness Section 9 says MBRSHIP's consistent
    views guarantee.
    """

    name = "single-token"

    def __init__(self) -> None:
        self._last_pass_gseq: Dict[str, int] = {}

    def step(self, record: TraceRecord) -> None:
        if record.category != "token_pass":
            return
        gseq = record.detail.get("gseq", 0)
        actor = record.actor
        previous = self._last_pass_gseq.get(actor, 0)
        if gseq < previous:
            raise VerificationError(
                f"{self.name}: {actor} passed the token at gseq {gseq} "
                f"after already passing it at {previous}",
                [repr(record)],
            )
        self._last_pass_gseq[actor] = gseq


def check_trace(trace: TraceRecorder, specs: Iterable[TraceSpec]) -> List[str]:
    """Run every spec over the whole trace (the composed automaton).

    Returns the names of the specs that ran; raises on the first
    violation with the offending record attached.
    """
    spec_list = list(specs)
    for record in trace:
        for spec in spec_list:
            spec.step(record)
    for spec in spec_list:
        spec.finish()
    return [spec.name for spec in spec_list]
