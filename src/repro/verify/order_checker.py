"""Ordering checkers: FIFO, causal, and total delivery order.

Each checker consumes the delivery logs of a set of group handles and
verifies one of the paper's ordering properties (Table 4: P3/P4, P5,
P6).  They are the executable form of the specifications Section 8
wants for ordering layers.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

from repro.core.group import DeliveredMessage, GroupHandle
from repro.errors import VerificationError


def _fail(violations: List[str], message: str) -> None:
    if violations:
        raise VerificationError(message, violations)


def check_fifo_per_source(
    handles: Iterable[GroupHandle],
    sent_by: Dict[str, List[bytes]],
) -> None:
    """P3/P4: each receiver sees each source's casts in send order.

    ``sent_by`` maps source endpoint strings to the bodies they cast,
    in order (the test harness records this on the send side).
    """
    violations: List[str] = []
    for handle in handles:
        received: Dict[str, List[bytes]] = defaultdict(list)
        for delivered in handle.delivery_log:
            if delivered.was_cast:
                received[str(delivered.source)].append(delivered.data)
        for source, sent in sent_by.items():
            got = received.get(source, [])
            # The receiver may have a prefix (crash/partition) but never
            # a permutation or gap followed by later traffic.
            positions = {data: i for i, data in enumerate(sent)}
            indexes = [positions[d] for d in got if d in positions]
            if indexes != sorted(indexes):
                violations.append(
                    f"{handle.endpoint_address}: messages from {source} "
                    f"delivered out of send order"
                )
            if indexes and indexes != list(range(indexes[0], indexes[0] + len(indexes))):
                violations.append(
                    f"{handle.endpoint_address}: gap inside the delivered "
                    f"stream from {source}: indexes {indexes}"
                )
    _fail(violations, "FIFO order violated")


def check_total_order(handles: Iterable[GroupHandle]) -> None:
    """P6: all members deliver casts in one common order (per view).

    Verified pairwise as prefix-consistency of the delivered (source,
    data) sequences within each view: one member's sequence must be a
    prefix of the other's.
    """
    handles = list(handles)
    violations: List[str] = []
    per_member: Dict[str, Dict[object, List[Tuple[str, bytes]]]] = {}
    for handle in handles:
        by_view: Dict[object, List[Tuple[str, bytes]]] = defaultdict(list)
        for delivered in handle.delivery_log:
            if delivered.was_cast and delivered.view is not None:
                by_view[delivered.view.view_id].append(
                    (str(delivered.source), delivered.data)
                )
        per_member[str(handle.endpoint_address)] = by_view
    members = sorted(per_member)
    for i, ma in enumerate(members):
        for mb in members[i + 1 :]:
            shared_views = set(per_member[ma]) & set(per_member[mb])
            for view_id in shared_views:
                sa = per_member[ma][view_id]
                sb = per_member[mb][view_id]
                shorter, longer = (sa, sb) if len(sa) <= len(sb) else (sb, sa)
                if longer[: len(shorter)] != shorter:
                    violations.append(
                        f"view {view_id}: {ma} and {mb} disagree on delivery "
                        f"order (first divergence at position "
                        f"{_first_divergence(sa, sb)})"
                    )
    _fail(violations, "total order violated")


def _first_divergence(sa, sb) -> int:
    for i, (x, y) in enumerate(zip(sa, sb)):
        if x != y:
            return i
    return min(len(sa), len(sb))


def check_causal_order(handles: Iterable[GroupHandle]) -> None:
    """P5: no message is delivered before its causal predecessors.

    Uses the vector timestamps the CAUSAL_TS layer attached to each
    delivery (``DeliveredMessage.info["vc"]``).  For every delivery m at
    every member, each message m' with vc(m') < vc(m) (strictly smaller
    vector) must already have been delivered there.
    """
    handles = list(handles)
    violations: List[str] = []
    for handle in handles:
        delivered_vcs: List[Tuple[Dict, DeliveredMessage]] = []
        for delivered in handle.delivery_log:
            vc = delivered.info.get("vc")
            if vc is None:
                continue
            for earlier_vc, earlier in delivered_vcs:
                if _strictly_before(vc, earlier_vc):
                    violations.append(
                        f"{handle.endpoint_address}: delivered "
                        f"{earlier.data!r} before its causal predecessor "
                        f"{delivered.data!r}"
                    )
            delivered_vcs.append((vc, delivered))
    _fail(violations, "causal order violated")


def _strictly_before(vc_a: Dict, vc_b: Dict) -> bool:
    """Whether vector ``vc_a`` happens-before ``vc_b``."""
    keys = set(vc_a) | set(vc_b)
    le = all(vc_a.get(k, 0) <= vc_b.get(k, 0) for k in keys)
    lt = any(vc_a.get(k, 0) < vc_b.get(k, 0) for k in keys)
    return le and lt
