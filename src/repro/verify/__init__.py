"""Executable specifications (the Section 8 methodology, in Python).

The paper builds ML *reference implementations* of layers so that
properties can be checked against real executions.  Our analogue keeps
the production layers as the only implementation but makes the
*specifications* executable: checkers that consume the structured
traces and delivery logs a simulation produces and verify the claimed
properties — virtual synchrony, FIFO/causal/total order, stability
soundness — plus a small I/O-automaton-style framework for writing new
specs over traces (Section 8's "combining this I/O automaton with other
I/O automata").

All checkers raise :class:`repro.errors.VerificationError` with a list
of concrete violations, or return quietly.
"""

from repro.verify.order_checker import (
    check_causal_order,
    check_fifo_per_source,
    check_total_order,
)
from repro.verify.spec import (
    CrashSilenceSpec,
    DeliveryGaplessSpec,
    SingleTokenSpec,
    TotalOrderGaplessSpec,
    TraceSpec,
    ViewEpochMonotoneSpec,
    check_trace,
)
from repro.verify.stability_checker import check_stability_soundness
from repro.verify.vs_checker import (
    check_view_agreement,
    check_view_synchrony_relacs,
    check_virtual_synchrony,
)

__all__ = [
    "CrashSilenceSpec",
    "DeliveryGaplessSpec",
    "SingleTokenSpec",
    "TotalOrderGaplessSpec",
    "TraceSpec",
    "ViewEpochMonotoneSpec",
    "check_causal_order",
    "check_fifo_per_source",
    "check_stability_soundness",
    "check_total_order",
    "check_trace",
    "check_view_agreement",
    "check_view_synchrony_relacs",
    "check_virtual_synchrony",
]
