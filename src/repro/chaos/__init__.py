"""repro.chaos — declarative, replayable failure scenarios.

The chaos engine turns "does the stack survive realistic failure
storms?" into a seeded, shrinkable, CI-runnable question:

* :class:`~repro.chaos.faultplane.FaultPlane` — the one fault-injection
  vocabulary (crash / recover / partition / heal / set_faults) both
  substrates implement;
* :class:`~repro.chaos.scenario.Scenario` — a frozen, JSON-round-trip
  timeline of fault and load ops;
* :class:`~repro.chaos.runner.ScenarioRunner` — executes a scenario on
  the DES or the realtime substrate, then replays the run through the
  :mod:`repro.verify` checkers;
* :func:`~repro.chaos.generator.generate_scenario` — seeded random
  storms the stack is supposed to survive;
* :func:`~repro.chaos.shrink.shrink_scenario` — greedy timeline
  minimization of a failing scenario.

CLI: ``python -m repro chaos --seed 0 --scenarios 25 --substrate sim``.
"""

from repro.chaos.faultplane import FaultPlane
from repro.chaos.generator import generate_scenario
from repro.chaos.runner import DEFAULT_CHECKS, ScenarioResult, ScenarioRunner
from repro.chaos.scenario import (
    DEFAULT_CHAOS_STACK,
    OVERLOAD_CHAOS_STACK,
    STATEFUL_CHAOS_STACK,
    ChaosOp,
    Crash,
    FaninStorm,
    Heal,
    InjectLoad,
    Partition,
    Recover,
    Scenario,
    SetFaults,
    SlowReceiver,
    WanSqueeze,
    load_scenarios,
    op_from_dict,
    scenario_from_dict,
)
from repro.chaos.shrink import ShrinkReport, shrink_scenario

__all__ = [
    "DEFAULT_CHAOS_STACK",
    "DEFAULT_CHECKS",
    "ChaosOp",
    "Crash",
    "FaninStorm",
    "FaultPlane",
    "Heal",
    "InjectLoad",
    "OVERLOAD_CHAOS_STACK",
    "Partition",
    "Recover",
    "STATEFUL_CHAOS_STACK",
    "Scenario",
    "ScenarioResult",
    "ScenarioRunner",
    "SetFaults",
    "ShrinkReport",
    "SlowReceiver",
    "WanSqueeze",
    "generate_scenario",
    "load_scenarios",
    "op_from_dict",
    "scenario_from_dict",
    "shrink_scenario",
]
