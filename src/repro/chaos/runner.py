"""Execute chaos scenarios and verify the survivors' stories.

The :class:`ScenarioRunner` drives a :class:`~repro.chaos.scenario.Scenario`
against a fresh world on either substrate — the DES :class:`~repro.core
.process.World` or the :class:`~repro.runtime.world.RealtimeWorld` —
through the world-level :class:`~repro.chaos.faultplane.FaultPlane`
alone, so the op-application code is substrate-blind.

A run has four phases:

1. **form** — every node joins the group and the first full view
   installs;
2. **storm** — the timeline ops fire at their scheduled offsets
   (crashes, partitions, fault models, load);
3. **mend** — the runner heals partitions, restores a pristine fault
   model, recovers every crashed node (each recovery re-joins through
   MBRSHIP merge with a *fresh* endpoint — fail-stop nodes never resume
   in-memory state), and gives the group ``scenario.settle`` seconds to
   converge;
4. **verify** — the delivery logs and the world trace are replayed
   through the :mod:`repro.verify` checkers; every
   :class:`~repro.errors.VerificationError` becomes a violation string
   carrying the data needed to replay (seed + timeline).

On the DES the whole run is a pure function of ``(seed, scenario)``:
the :meth:`ScenarioResult.digest` — a hash over every member's view
history and delivery log — is byte-identical across same-seed runs,
which is what turns a soak failure into a replayable repro.

**Stateful mode** (``scenario.stateful``): every node hosts a durable
:class:`~repro.toolkit.replicated_data.ReplicatedDict` client instead
of a bare handle, load ops become replicated writes, crashed nodes are
recovered with ``stateful=True`` (store WAL replay + XFER catch-up),
and verification adds the ``state`` check — after the mend, every
member's dict digest must be identical.  The state digests also fold
into :meth:`ScenarioResult.digest`, so DES determinism now covers the
durable state too.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.chaos.scenario import (
    ChaosOp,
    Crash,
    FaninStorm,
    Heal,
    InjectLoad,
    Partition,
    Recover,
    Scenario,
    SetFaults,
    SlowReceiver,
    WanSqueeze,
)
from repro.core.events import FlowVerdict
from repro.errors import VerificationError
from repro.verify import (
    CrashSilenceSpec,
    DeliveryGaplessSpec,
    TotalOrderGaplessSpec,
    ViewEpochMonotoneSpec,
    check_fifo_per_source,
    check_total_order,
    check_trace,
    check_view_agreement,
    check_view_synchrony_relacs,
    check_virtual_synchrony,
)

#: Checks every run performs (names are stable CLI/report vocabulary).
DEFAULT_CHECKS: Tuple[str, ...] = ("views", "vs", "relacs", "fifo", "trace")


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    scenario: Scenario
    seed: int
    substrate: str
    checks: Tuple[str, ...]
    #: Violation strings from the verify phase; empty means the stack
    #: survived the storm with every checked guarantee intact.
    violations: List[str] = field(default_factory=list)
    #: Hash over all members' view histories and delivery logs.  On the
    #: DES this is a pure function of (seed, scenario).
    digest: str = ""
    #: Whether every live member agreed on one final view before the
    #: settle budget ran out.  Non-convergence is reported but is not by
    #: itself a violation (the checkers judge what *was* delivered).
    converged: bool = False
    casts_sent: int = 0
    casts_skipped: int = 0
    #: The ops as applied, with their actual world times.
    timeline: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the verify phase found nothing."""
        return not self.violations

    def summary(self) -> Dict[str, Any]:
        """JSON-safe report entry (what the soak report persists)."""
        return {
            "scenario": self.scenario.to_dict(),
            "signature": self.scenario.signature(),
            "seed": self.seed,
            "substrate": self.substrate,
            "checks": list(self.checks),
            "violations": list(self.violations),
            "digest": self.digest,
            "converged": self.converged,
            "casts_sent": self.casts_sent,
            "casts_skipped": self.casts_skipped,
            "timeline": list(self.timeline),
        }

    def repro_hint(self) -> str:
        """How to replay this exact run from a shell."""
        return (
            f"replay: seed={self.seed} substrate={self.substrate} "
            f"scenario={self.scenario.name} (signature "
            f"{self.scenario.signature()}); timeline:\n"
            + "\n".join(f"  {line}" for line in self.timeline)
        )


class ScenarioRunner:
    """Runs scenarios on one substrate with one verification profile.

    Args:
        substrate: ``"sim"`` (DES, deterministic) or ``"realtime"``
            (asyncio engine + OS-UDP loopback, wall-clock).
        seed: base seed; each scenario derives its world seed from this
            plus the scenario name, so runs are independent but
            replayable.
        checks: check names to perform (default
            :data:`DEFAULT_CHECKS`).  ``"total"`` adds the total-order
            checker — demanding it of a stack without a TOTAL layer is
            the canonical deliberately-failing scenario.  ``"state"``
            (added automatically for stateful scenarios) requires every
            member's replicated-dict digest to match after the mend.
        network: DES network kind for the sim substrate.
        store_dir: root directory for durable stores.  When given, each
            scenario's world gets a :class:`~repro.store.FileStoreDomain`
            rooted at ``<store_dir>/<scenario name>`` — on *either*
            substrate — so a failing run leaves its WALs on disk for
            ``python -m repro store-inspect``.  File I/O is outside the
            DES event loop, so sim digests stay pure in
            ``(seed, scenario)``.
        durability: the store durability mode stateful clients journal
            under — ``fsync_per_record`` (default), ``group``, or
            ``async`` (see :class:`~repro.store.DurabilityPolicy`).
            Relaxed modes exercise the group-commit pipeline: a crash
            drops volatile batch buffers (tickets never completed), and
            stateful recovery must still converge from the durable
            prefix plus XFER catch-up.
    """

    def __init__(
        self,
        substrate: str = "sim",
        seed: int = 0,
        checks: Optional[Iterable[str]] = None,
        network: str = "lan",
        store_dir: Optional[str] = None,
        durability: Optional[str] = None,
    ) -> None:
        if substrate not in ("sim", "realtime"):
            raise ValueError(f"unknown substrate {substrate!r}")
        self.substrate = substrate
        self.seed = seed
        self.checks = tuple(checks) if checks is not None else DEFAULT_CHECKS
        self.network = network
        self.store_dir = store_dir
        if durability is not None:
            from repro.store import parse_policy

            parse_policy(durability)  # fail fast on unknown modes
        self.durability = durability

    # ------------------------------------------------------------------
    # World plumbing
    # ------------------------------------------------------------------

    def _world_seed(self, scenario: Scenario) -> int:
        from repro.sim.rand import derive_seed

        return derive_seed(self.seed, f"chaos.run.{scenario.name}")

    def _make_world(self, scenario: Scenario):
        store = None
        metrics = None
        if self.store_dir is not None:
            import os

            from repro.obs import MetricsRegistry
            from repro.store import FileStoreDomain

            # Shared registry so the file store's counters land in the
            # same place as the world's.
            metrics = MetricsRegistry()
            store = FileStoreDomain(
                root=os.path.join(self.store_dir, scenario.name),
                metrics=metrics,
            )
        if self.substrate == "sim":
            from repro.core.process import World

            return World(
                seed=self._world_seed(scenario),
                network=self.network,
                metrics=metrics,
                store=store,
            )
        from repro.runtime.world import RealtimeWorld

        return RealtimeWorld(
            seed=self._world_seed(scenario), metrics=metrics, store=store
        )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, scenario: Scenario) -> ScenarioResult:
        """Execute one scenario; always returns a result (never raises
        for protocol-level violations — those land in ``violations``)."""
        checks = self.checks
        if scenario.stateful and "state" not in checks:
            checks = checks + ("state",)
        result = ScenarioResult(
            scenario=scenario,
            seed=self.seed,
            substrate=self.substrate,
            checks=checks,
        )
        world = self._make_world(scenario)
        try:
            self._execute(world, scenario, result)
        finally:
            # Quiesce relaxed-durability writers so the WALs a failing
            # run leaves behind are complete for store-inspect.
            flush_all = getattr(world.store, "flush_all", None)
            if flush_all is not None:
                flush_all()
            if self.substrate == "realtime":
                world.close()
        return result

    def _execute(self, world, scenario: Scenario, result: ScenarioResult) -> None:
        group = f"chaos-{scenario.name}"
        #: node -> list of handles, oldest first (recoveries append).
        handles: Dict[str, List[Any]] = {node: [] for node in scenario.nodes}
        #: node -> list of durable dict clients (stateful mode only).
        clients: Dict[str, List[Any]] = {node: [] for node in scenario.nodes}
        #: source endpoint string -> payloads cast, in order (FIFO oracle).
        sent_by: Dict[str, List[bytes]] = {}
        crashed: set = set()
        self._cast_seq = 0
        stateful = scenario.stateful

        def join(node: str) -> None:
            if stateful:
                from repro.toolkit.replicated_data import ReplicatedDict

                client = ReplicatedDict(
                    world.process(node).endpoint(),
                    group,
                    stack=scenario.stack,
                    durable=True,
                    policy=self.durability,
                )
                clients[node].append(client)
                handle = client.handle
            else:
                handle = world.process(node).endpoint().join(
                    group, stack=scenario.stack
                )
            handles[node].append(handle)
            sent_by.setdefault(str(handle.endpoint_address), [])

        # Phase 1: form.  Stagger the joins (the bootstrap order every
        # existing test uses), then wait for the first full view.
        for node in scenario.nodes:
            join(node)
            world.run(0.3)
        full = len(scenario.nodes)
        world.run_while(
            lambda: all(
                h[-1].view is not None and h[-1].view.size == full
                for h in handles.values()
            ),
            timeout=30.0 if self.substrate == "sim" else 10.0,
        )

        # Phase 2: storm.
        storm_start = world.now
        note = result.timeline.append
        for op in scenario.ops:
            target = storm_start + op.at
            if target > world.now:
                world.run(target - world.now)
            self._apply(world, op, scenario, handles, clients, sent_by,
                        crashed, result, join)
            note(f"t={world.now - storm_start:.2f} {op.label()}")
        tail = storm_start + scenario.duration - world.now
        if tail > 0:
            world.run(tail)

        # Phase 3: mend.  Restore a pristine world and let the group
        # converge: heal partitions, clear injected faults, recover and
        # re-join every crashed node.
        world.heal()
        world.set_faults(None)
        for node, per_node in handles.items():
            if per_node and not per_node[-1].left and world.node_alive(node):
                for layer in per_node[-1].focus_all("CREDIT"):
                    layer.set_consume_rate(None)
        for node in sorted(crashed):
            world.recover(node, stateful=stateful)
            join(node)
        crashed.clear()

        def converged() -> bool:
            live = [h[-1] for h in handles.values()]
            views = {
                (h.view.view_id.epoch, str(h.view.view_id.coordinator))
                for h in live
                if h.view is not None
            }
            if len(views) != 1 or not all(
                h.view is not None and h.view.size == full for h in live
            ):
                return False
            if stateful:
                final = [c[-1] for c in clients.values() if c]
                if not all(c.synced for c in final):
                    return False
                if len({c.digest() for c in final}) != 1:
                    return False
            return True

        result.converged = world.run_while(converged, timeout=scenario.settle)
        # Give in-flight retransmissions a final drain so delivery logs
        # are cut at a quiet point.
        world.run(2.0 if self.substrate == "sim" else 0.5)

        # Phase 4: verify.
        all_handles = [h for per_node in handles.values() for h in per_node]
        final_clients = [c[-1] for c in clients.values() if c]
        self._verify(world, all_handles, sent_by, final_clients, result)
        result.digest = self._digest(all_handles, final_clients)
        self._note_metrics(world, result)

    # ------------------------------------------------------------------
    # Op application
    # ------------------------------------------------------------------

    def _apply(
        self,
        world,
        op: ChaosOp,
        scenario: Scenario,
        handles: Dict[str, List[Any]],
        clients: Dict[str, List[Any]],
        sent_by: Dict[str, List[bytes]],
        crashed: set,
        result: ScenarioResult,
        join,
    ) -> None:
        if isinstance(op, Crash):
            if world.node_alive(op.node):
                world.crash(op.node)
                crashed.add(op.node)
        elif isinstance(op, Recover):
            if op.node in crashed:
                world.recover(op.node, stateful=scenario.stateful)
                crashed.discard(op.node)
                join(op.node)
        elif isinstance(op, Partition):
            world.partition(*[list(c) for c in op.components])
        elif isinstance(op, Heal):
            world.heal()
        elif isinstance(op, SetFaults):
            world.set_faults(op.model())
        elif isinstance(op, WanSqueeze):
            world.set_faults(op.model())
        elif isinstance(op, InjectLoad):
            self._inject_load(world, op, scenario, handles, clients,
                              sent_by, result)
        elif isinstance(op, SlowReceiver):
            self._slow_receiver(world, op, handles)
        elif isinstance(op, FaninStorm):
            self._fanin_storm(world, op, scenario, handles, sent_by, result)
        else:  # pragma: no cover - scenario.py and this dispatch co-evolve
            raise ValueError(f"runner cannot apply op kind {op.kind!r}")

    @staticmethod
    def _slow_receiver(
        world, op: SlowReceiver, handles: Dict[str, List[Any]]
    ) -> None:
        """Throttle the node's CREDIT consumption (no-op without CREDIT —
        which is the point of the legacy-FLOW comparison scenarios)."""
        if not handles[op.node] or not world.node_alive(op.node):
            return
        handle = handles[op.node][-1]
        for layer in handle.focus_all("CREDIT"):
            layer.set_consume_rate(op.rate if op.rate > 0 else None)

    def _fanin_storm(
        self,
        world,
        op: FaninStorm,
        scenario: Scenario,
        handles: Dict[str, List[Any]],
        sent_by: Dict[str, List[bytes]],
        result: ScenarioResult,
    ) -> None:
        """Converge ``count`` casts from every live node onto the group
        (the target itself stays quiet — it is the one being stormed)."""
        for node in scenario.nodes:
            if node == op.target or not handles[node]:
                continue
            handle = handles[node][-1]
            if handle.left or not world.node_alive(node):
                result.casts_skipped += op.count
                continue
            for _ in range(op.count):
                stamp = f"{scenario.name}|{node}|{self._cast_seq}|".encode()
                self._cast_seq += 1
                payload = (stamp + b"." * op.size)[: max(op.size, len(stamp))]
                self._cast_recorded(handle, payload, sent_by, result)

    def _inject_load(
        self,
        world,
        op: InjectLoad,
        scenario: Scenario,
        handles: Dict[str, List[Any]],
        clients: Dict[str, List[Any]],
        sent_by: Dict[str, List[bytes]],
        result: ScenarioResult,
    ) -> None:
        handle = handles[op.node][-1] if handles[op.node] else None
        client = clients[op.node][-1] if clients[op.node] else None
        if handle is None or handle.left or not world.node_alive(op.node):
            result.casts_skipped += op.count
            return
        load_hist = world.metrics.histogram(
            "chaos_load_bytes",
            "Payload sizes of chaos-injected casts",
            buckets=_SIZE_BUCKETS,
        )
        for _ in range(op.count):
            stamp = f"{scenario.name}|{op.node}|{self._cast_seq}|".encode()
            self._cast_seq += 1
            if client is not None:
                # Stateful load: a replicated write under a unique
                # key.  Keys never collide, so set ops commute and
                # the converged digests are storm-order-independent.
                try:
                    payload = client.set(
                        stamp.decode("utf-8"), "." * op.size
                    )
                except Exception:
                    # A node in a blocked minority or mid-leave may
                    # refuse; chaos shrugs — the skip count keeps the
                    # books honest.
                    result.casts_skipped += 1
                    continue
                sent_by[str(handle.endpoint_address)].append(payload)
                result.casts_sent += 1
                load_hist.observe(float(len(payload)))
                continue
            payload = (stamp + b"." * op.size)[: max(op.size, len(stamp))]
            if self._cast_recorded(handle, payload, sent_by, result):
                load_hist.observe(float(len(payload)))

    def _cast_recorded(
        self,
        handle,
        payload: bytes,
        sent_by: Dict[str, List[bytes]],
        result: ScenarioResult,
    ) -> bool:
        """Cast ``payload`` and record it in the FIFO oracle only if the
        flow verdict says it will actually be sent.  A SHED/BLOCKED cast
        is a *refusal*, not a loss — recording it would make the gapless
        FIFO checker demand delivery of a message that never left."""
        try:
            verdict = handle.cast(payload)
        except Exception:
            result.casts_skipped += 1
            return False
        if verdict in (FlowVerdict.SHED, FlowVerdict.BLOCKED):
            result.casts_skipped += 1
            return False
        sent_by[str(handle.endpoint_address)].append(payload)
        result.casts_sent += 1
        return True

    # ------------------------------------------------------------------
    # Verification and accounting
    # ------------------------------------------------------------------

    def _verify(
        self,
        world,
        all_handles: List[Any],
        sent_by: Dict[str, List[bytes]],
        final_clients: List[Any],
        result: ScenarioResult,
    ) -> None:
        checkers = {
            "state": lambda: self._check_state(final_clients),
            "views": lambda: check_view_agreement(all_handles),
            "vs": lambda: check_virtual_synchrony(all_handles),
            "relacs": lambda: check_view_synchrony_relacs(all_handles),
            "fifo": lambda: check_fifo_per_source(all_handles, sent_by),
            "total": lambda: check_total_order(all_handles),
            "trace": lambda: check_trace(
                world.trace,
                [
                    ViewEpochMonotoneSpec(),
                    CrashSilenceSpec(),
                    DeliveryGaplessSpec(),
                    TotalOrderGaplessSpec(),
                ],
            ),
        }
        for name in result.checks:
            checker = checkers.get(name)
            if checker is None:
                raise ValueError(f"unknown check {name!r}")
            try:
                checker()
            except VerificationError as exc:
                details = getattr(exc, "violations", None) or []
                result.violations.append(
                    f"{name}: {exc}"
                    + ("".join(f"\n    {d}" for d in details[:5]))
                )

    @staticmethod
    def _check_state(final_clients: List[Any]) -> None:
        """The state-convergence check: after the mend, every member's
        replicated-dict state must be authoritative and identical."""
        if not final_clients:
            raise VerificationError(
                "state check requires a stateful scenario (no clients)"
            )
        violations = []
        for client in final_clients:
            if not client.synced:
                violations.append(f"{client._address}: never synced")
        digests = sorted(
            {(c.digest(), str(c._address)) for c in final_clients if c.synced}
        )
        if len({d for d, _ in digests}) > 1:
            for digest_value, address in digests:
                violations.append(
                    f"{address}: state digest {digest_value[:16]}"
                )
        if violations:
            raise VerificationError(
                f"replicated state diverged across "
                f"{len(final_clients)} members",
                violations=violations,
            )

    @staticmethod
    def _digest(all_handles: List[Any], final_clients: List[Any] = ()) -> str:
        """Hash every member's view history and delivery log (and, for
        stateful runs, every member's final state digest)."""
        digest = hashlib.sha256()
        for handle in sorted(all_handles, key=lambda h: str(h.endpoint_address)):
            digest.update(str(handle.endpoint_address).encode())
            for view in handle.view_history:
                members = ",".join(sorted(str(m) for m in view.members))
                digest.update(
                    f"|V{view.view_id.epoch}@{view.view_id.coordinator}"
                    f"[{members}]".encode()
                )
            for delivered in handle.delivery_log:
                digest.update(b"|M" + str(delivered.source).encode() + b":")
                digest.update(delivered.data)
        for client in sorted(final_clients, key=lambda c: str(c._address)):
            digest.update(b"|S" + str(client._address).encode() + b":")
            digest.update(client.digest().encode())
        return digest.hexdigest()

    def _note_metrics(self, world, result: ScenarioResult) -> None:
        verdict = "ok" if result.ok else "violated"
        world.metrics.counter(
            "chaos_scenarios_total",
            "Chaos scenarios executed, by verdict",
            labels=("verdict",),
        ).labels(verdict=verdict).inc()
        world.metrics.counter(
            "chaos_casts_injected_total",
            "Application casts injected by chaos load ops",
        ).inc(result.casts_sent)


#: Byte-size buckets for the injected-load histogram (16 B – 64 KiB).
_SIZE_BUCKETS: Tuple[float, ...] = tuple(float(1 << n) for n in range(4, 17))
