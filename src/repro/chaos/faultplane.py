"""The unified fault-plane API.

Before this module existed, fault injection was scattered: the DES
network had ``crash_node``/``revive_node``, processes had ``crash``,
the world had ``partition``/``heal`` but no recovery, and the realtime
transport had the node ops but no partition or fault-model control at
all.  :class:`FaultPlane` names the one vocabulary every substrate now
speaks, with uniform node naming (plain strings, the same names the
worlds use for processes and the networks use for addresses):

* ``crash(node)`` — fail-stop the node: it stops sending, receiving,
  and (at the world level) executing timers, immediately.
* ``recover(node, stateful=False)`` — bring a crashed node back.
  Recovery never resumes in-memory state: the node's endpoints are gone
  and it must re-join its groups through the MBRSHIP join/merge path,
  exactly as a rebooted machine would.  ``stateful=False`` models a
  *replaced* machine (the node's durable stores are wiped too);
  ``stateful=True`` models a *rebooted* one — the stores survive, so
  clients replay their WALs and catch the delta over XFER.
* ``partition(*components)`` — split connectivity into node-name
  components (unlisted nodes form an implicit extra component).
* ``heal()`` — remove all partitions.
* ``set_faults(model)`` — install a :class:`~repro.net.faults.FaultModel`
  (loss/duplication/garbling/delay); ``None`` restores a pristine path.
* ``node_alive(node)`` — observe a node's crash state.

Four objects implement it, at two altitudes:

* substrate level — :class:`repro.net.network.Network` (simulated
  links) and :class:`repro.runtime.transport.UdpTransport` (real UDP
  with emulated partitions and software fault injection);
* process level — :class:`repro.core.process.World` and
  :class:`repro.runtime.world.RealtimeWorld`, which add fail-stop
  process semantics (timers die with the process) on top of their
  network's plane and record every op in the world trace and the
  ``chaos_ops_total`` metric.

Chaos scenarios (:mod:`repro.chaos.scenario`) target the world-level
plane; tests that want surgical link control can reach the substrate
plane directly.
"""

from __future__ import annotations

from typing import Iterable, Optional, Protocol, runtime_checkable

from repro.net.faults import FaultModel


@runtime_checkable
class FaultPlane(Protocol):
    """The uniform fault-injection surface (see module docstring).

    This is a :class:`typing.Protocol`: implementations do not inherit
    from it, they simply provide the methods.  ``isinstance(obj,
    FaultPlane)`` checks structurally.
    """

    def crash(self, node: str) -> None:
        """Fail-stop ``node`` immediately."""
        ...

    def recover(self, node: str, stateful: bool = False) -> object:
        """Bring a crashed ``node`` back: blank slate by default,
        durable stores intact when ``stateful``."""
        ...

    def node_alive(self, node: str) -> bool:
        """Whether ``node`` is currently up."""
        ...

    def partition(self, *components: Iterable[str]) -> None:
        """Split connectivity into node-name components."""
        ...

    def heal(self) -> None:
        """Remove all partitions."""
        ...

    def set_faults(self, model: Optional[FaultModel]) -> None:
        """Install a fault model; ``None`` restores a pristine path."""
        ...
