"""Greedy timeline shrinking: soak failure → minimal repro.

``shrink_scenario`` takes a failing scenario and a ``still_fails``
predicate (usually "run it and check the same violation class shows
up") and repeatedly deletes ops that are not needed for the failure.
The loop is the classic greedy ddmin core: try dropping each op, keep
any deletion that still fails, restart until a full pass removes
nothing.  The result is *1-minimal* — removing any single remaining op
makes the failure disappear — which is almost always small enough to
read as a bug report.

Because scenarios are values and the DES is a pure function of
``(seed, scenario)``, the predicate is deterministic and shrinking
needs no retry logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from repro.chaos.scenario import Scenario


@dataclass
class ShrinkReport:
    """What the shrinker did, for logs and violation reports."""

    original: Scenario
    minimal: Scenario
    runs: int = 0
    #: describe() lines of the ops that were removed.
    removed: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"shrunk {len(self.original.ops)} ops -> "
            f"{len(self.minimal.ops)} in {self.runs} runs"
        )


def shrink_scenario(
    scenario: Scenario,
    still_fails: Callable[[Scenario], bool],
    max_runs: int = 200,
) -> ShrinkReport:
    """Greedily minimize ``scenario`` while ``still_fails`` holds.

    Raises :class:`ValueError` if the input scenario does not fail —
    shrinking a passing scenario would "converge" to an empty timeline
    and report nonsense.
    """
    report = ShrinkReport(original=scenario, minimal=scenario)
    report.runs += 1
    if not still_fails(scenario):
        raise ValueError(
            f"scenario {scenario.name} does not fail; nothing to shrink"
        )

    current = scenario
    progress = True
    while progress and report.runs < max_runs:
        progress = False
        # Later ops first: load and cleanup ops tend to be removable,
        # and dropping from the tail keeps earlier indices stable.
        for index in reversed(range(len(current.ops))):
            candidate_ops = current.ops[:index] + current.ops[index + 1:]
            candidate = current.with_ops(candidate_ops)
            report.runs += 1
            if still_fails(candidate):
                report.removed.append(current.ops[index].describe())
                current = candidate
                progress = True
            if report.runs >= max_runs:
                break

    report.minimal = current
    return report
