"""The declarative chaos-scenario DSL.

A :class:`Scenario` is a *timeline*: a tuple of timestamped operations
(crash, recover, partition, heal, set_faults, inject_load) applied to a
stack under test on either execution substrate.  Scenarios are frozen,
hashable, JSON-round-trippable values — the properties the rest of the
chaos engine leans on:

* the generator builds them from a seeded rng, so the same seed always
  produces the same timeline;
* the runner serializes them into violation reports, so a soak failure
  ships with everything needed to replay it;
* the shrinker edits them structurally (dropping ops) without ever
  touching a live world.

Times are seconds from the start of the fault phase (after the group
has formed); on the DES they are virtual seconds, on the realtime
substrate wall-clock seconds — the timeline is substrate-neutral.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.net.faults import FaultModel

#: The default stack chaos scenarios exercise: virtual synchrony over
#: reliable FIFO multicast (the Section 7 example minus TOTAL), with
#: CHKSUM below NAK so garble faults become clean, retransmittable
#: losses instead of undetected corruption.
DEFAULT_CHAOS_STACK = "MBRSHIP:FRAG:NAK:CHKSUM:COM"

#: The stack stateful scenarios exercise: the default chaos stack plus
#: TOTAL (so replicated-dict updates apply in one order everywhere) and
#: XFER on top (so recovered nodes catch the delta their WAL missed).
STATEFUL_CHAOS_STACK = "XFER:TOTAL:MBRSHIP:FRAG:NAK:CHKSUM:COM"

#: The stack overload scenarios exercise: the default chaos stack with
#: CREDIT on top, so fan-in storms and slow receivers meet bounded
#: queues and receiver-granted windows instead of unbounded FIFOs.
#: ``shed_policy=block`` keeps the FIFO oracle intact (a blocked cast is
#: never sent, so it is simply not recorded as offered).
OVERLOAD_CHAOS_STACK = (
    "CREDIT(window=8192,max_queue=64):MBRSHIP:FRAG:NAK:CHKSUM:COM"
)


@dataclass(frozen=True)
class ChaosOp:
    """One timestamped operation of a scenario timeline."""

    at: float

    #: Operation tag used by serialization; subclasses override.
    kind = "noop"

    def label(self) -> str:
        """The op without its time: ``crash(n2)``."""
        args = ", ".join(
            str(getattr(self, f.name)) for f in fields(self) if f.name != "at"
        )
        return f"{self.kind}({args})"

    def describe(self) -> str:
        """Human-readable ``t=1.50 crash(n2)`` form."""
        return f"t={self.at:.2f} {self.label()}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict; inverse of :func:`op_from_dict`."""
        data: Dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            data[f.name] = getattr(self, f.name)
        return data


@dataclass(frozen=True)
class Crash(ChaosOp):
    """Fail-stop a node."""

    node: str = ""
    kind = "crash"


@dataclass(frozen=True)
class Recover(ChaosOp):
    """Recover a crashed node; the runner re-joins it via MBRSHIP merge."""

    node: str = ""
    kind = "recover"


@dataclass(frozen=True)
class Partition(ChaosOp):
    """Split the nodes into components (tuples keep the op hashable)."""

    components: Tuple[Tuple[str, ...], ...] = ()
    kind = "partition"

    def label(self) -> str:
        groups = " | ".join(",".join(c) for c in self.components)
        return f"partition({groups})"


@dataclass(frozen=True)
class Heal(ChaosOp):
    """Remove all partitions."""

    kind = "heal"


@dataclass(frozen=True)
class SetFaults(ChaosOp):
    """Swap the fault model (stored as sorted items to stay hashable)."""

    faults: Tuple[Tuple[str, float], ...] = ()
    kind = "set_faults"

    @classmethod
    def of(cls, at: float, **params: float) -> "SetFaults":
        """Build from keyword fault-model parameters."""
        return cls(at=at, faults=tuple(sorted(params.items())))

    def model(self) -> FaultModel:
        """The :class:`FaultModel` this op installs."""
        return FaultModel(**dict(self.faults))

    def label(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.faults)
        return f"set_faults({params})"


@dataclass(frozen=True)
class InjectLoad(ChaosOp):
    """Cast ``count`` messages of ``size`` bytes from ``node``."""

    node: str = ""
    count: int = 1
    size: int = 32
    kind = "inject_load"


@dataclass(frozen=True)
class SlowReceiver(ChaosOp):
    """Throttle ``node``'s application consumption to ``rate`` bytes/s.

    Turns the node into the slow receiver of a fan-in storm via the
    CREDIT layer's ``set_consume_rate``; ``rate=0`` restores instant
    consumption.  A no-op on stacks without a CREDIT layer (the legacy
    failure mode the regression tests pin).
    """

    node: str = ""
    rate: float = 4096.0
    kind = "slow_receiver"


@dataclass(frozen=True)
class FaninStorm(ChaosOp):
    """Every live node except ``target`` casts ``count`` messages.

    The complement of :class:`InjectLoad`: load converges *on* a node
    instead of radiating from one, which is what exercises per-group
    windows (the slowest receiver gates every sender).
    """

    target: str = ""
    count: int = 20
    size: int = 256
    kind = "fanin_storm"


@dataclass(frozen=True)
class WanSqueeze(ChaosOp):
    """Swap in a narrow, jittery WAN-like fault model.

    A convenience over :class:`SetFaults` with a palette tuned to
    squeeze flow control rather than break reliability: high latency
    and reordering, mild loss.
    """

    base_delay: float = 0.08
    jitter: float = 0.04
    loss_rate: float = 0.02
    reorder_rate: float = 0.2
    reorder_delay: float = 0.05
    kind = "wan_squeeze"

    def model(self) -> FaultModel:
        """The :class:`FaultModel` this op installs."""
        return FaultModel(
            base_delay=self.base_delay,
            jitter=self.jitter,
            loss_rate=self.loss_rate,
            reorder_rate=self.reorder_rate,
            reorder_delay=self.reorder_delay,
        )


_OP_KINDS: Dict[str, Type[ChaosOp]] = {
    cls.kind: cls
    for cls in (Crash, Recover, Partition, Heal, SetFaults, InjectLoad,
                SlowReceiver, FaninStorm, WanSqueeze)
}


def op_from_dict(data: Dict[str, Any]) -> ChaosOp:
    """Rebuild an op from its :meth:`ChaosOp.to_dict` form."""
    payload = dict(data)
    kind = payload.pop("kind")
    cls = _OP_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown chaos op kind {kind!r}")
    if cls is Partition:
        payload["components"] = tuple(
            tuple(component) for component in payload["components"]
        )
    elif cls is SetFaults:
        payload["faults"] = tuple(
            (str(k), float(v)) for k, v in payload["faults"]
        )
    return cls(**payload)


@dataclass(frozen=True)
class Scenario:
    """A named, replayable failure storm against one stack."""

    name: str
    nodes: Tuple[str, ...]
    ops: Tuple[ChaosOp, ...]
    stack: str = DEFAULT_CHAOS_STACK
    #: Length of the fault phase; ops all fire inside it.
    duration: float = 6.0
    #: Post-storm grace: how long the runner lets the healed, fully
    #: recovered group converge before verification.
    settle: float = 20.0
    #: Stateful runs replace raw group handles with durable
    #: :class:`~repro.toolkit.replicated_data.ReplicatedDict` clients,
    #: recover crashed nodes with ``stateful=True`` (WAL replay + XFER
    #: catch-up), and add the state-convergence check.
    stateful: bool = False

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.ops, key=lambda op: op.at))
        object.__setattr__(self, "ops", ordered)

    def with_ops(self, ops: Tuple[ChaosOp, ...]) -> "Scenario":
        """A copy of this scenario with a different timeline (shrinking)."""
        return Scenario(
            name=self.name,
            nodes=self.nodes,
            ops=tuple(ops),
            stack=self.stack,
            duration=self.duration,
            settle=self.settle,
            stateful=self.stateful,
        )

    def describe(self) -> str:
        """The full timeline, one op per line."""
        header = (
            f"scenario {self.name}: nodes={','.join(self.nodes)} "
            f"stack={self.stack} duration={self.duration:.1f}s"
            + (" stateful" if self.stateful else "")
        )
        lines = [header] + [f"  {op.describe()}" for op in self.ops]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict; inverse of :func:`scenario_from_dict`."""
        return {
            "name": self.name,
            "nodes": list(self.nodes),
            "stack": self.stack,
            "duration": self.duration,
            "settle": self.settle,
            "stateful": self.stateful,
            "ops": [op.to_dict() for op in self.ops],
        }

    def signature(self) -> str:
        """Digest of the timeline itself (not of any execution)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def scenario_from_dict(data: Dict[str, Any]) -> Scenario:
    """Rebuild a scenario from its :meth:`Scenario.to_dict` form."""
    return Scenario(
        name=str(data["name"]),
        nodes=tuple(data["nodes"]),
        ops=tuple(op_from_dict(op) for op in data["ops"]),
        stack=str(data.get("stack", DEFAULT_CHAOS_STACK)),
        duration=float(data.get("duration", 6.0)),
        settle=float(data.get("settle", 20.0)),
        stateful=bool(data.get("stateful", False)),
    )


def load_scenarios(path: str) -> List[Scenario]:
    """Read a JSON file holding one scenario or a list of them."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if isinstance(data, dict) and "scenarios" in data:
        data = [entry["scenario"] for entry in data["scenarios"]]
    if isinstance(data, dict):
        data = [data]
    return [scenario_from_dict(entry) for entry in data]
