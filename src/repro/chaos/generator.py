"""Seeded random scenario generation.

``generate_scenario(seed, index)`` is a pure function: the op timeline
comes entirely from ``random.Random(derive_seed(seed, f"chaos.gen.{index}"))``,
so a soak is fully described by its base seed and scenario count, and
any scenario from it can be regenerated in isolation.

The generator is constrained, not uniform — it only emits storms the
stack is *supposed* to survive, so every violation a soak finds is a
real bug rather than an impossible demand:

* at most a minority of nodes is ever dead at once (primary-partition
  membership cannot make progress without a majority, and a storm that
  kills one is a liveness test, not a safety test);
* ``recover`` only targets currently-crashed nodes, ``heal`` only fires
  when partitioned, and one partition is never stacked on another;
* fault models stay mild (loss/duplication/garbling well under the
  retransmission layers' give-up thresholds);
* every scenario carries at least one load injection, so the order and
  virtual-synchrony checkers always have messages to judge.
"""

from __future__ import annotations

import random
from typing import List

from repro.chaos.scenario import (
    DEFAULT_CHAOS_STACK,
    OVERLOAD_CHAOS_STACK,
    STATEFUL_CHAOS_STACK,
    ChaosOp,
    Crash,
    FaninStorm,
    Heal,
    InjectLoad,
    Partition,
    Recover,
    Scenario,
    SetFaults,
    SlowReceiver,
    WanSqueeze,
)

#: Per-profile pacing: (min duration, max duration, settle, max ops).
#: The realtime profile is shorter — its seconds are wall-clock.
_PROFILES = {
    "sim": (4.0, 8.0, 25.0, 10),
    "realtime": (2.0, 4.0, 8.0, 6),
}

#: Mild fault-model palettes (kwargs for FaultModel), chosen to stay
#: under the NAK/stability layers' recovery capacity.
_FAULT_PALETTES = (
    {"loss_rate": 0.05},
    {"loss_rate": 0.10, "duplicate_rate": 0.05},
    {"garble_rate": 0.05},
    {"loss_rate": 0.05, "reorder_rate": 0.2, "reorder_delay": 0.05},
    {"duplicate_rate": 0.10},
)


#: Extra op kinds the rng may draw in overload mode.  Kept out of the
#: base palette so existing ``(seed, index)`` timelines — and the soak
#: digests checked in against them — stay byte-identical unless the
#: caller opts in with ``overload=True``.
_OVERLOAD_KINDS = ("slow_receiver", "fanin_storm", "wan_squeeze")


#: Large-n pacing: (min duration, max duration, settle, max ops).  The
#: timeline is consumed by the gossip scale harness (lightweight SWIM
#: agents, no stacks), whose convergence clock runs in tens of seconds.
_LARGE_N_PROFILE = (20.0, 40.0, 120.0, 8)

#: Ceilings for the large-n op family, as fractions of the fleet: a
#: crash storm may fell at most ``_LARGE_N_MAX_DEAD`` of the fleet in
#: total, and a partition may cut off at most ``_LARGE_N_MAX_CUT`` —
#: storms the membership plane is supposed to absorb, scaled so they
#: never trivially destroy a majority at any node count.
_LARGE_N_MAX_DEAD = 0.05
_LARGE_N_MAX_CUT = 0.10


def generate_scenario(
    seed: int,
    index: int,
    nodes: int = 4,
    stack: str = DEFAULT_CHAOS_STACK,
    profile: str = "sim",
    stateful: bool = False,
    overload: bool = False,
    large_n: bool = False,
) -> Scenario:
    """Deterministically generate scenario ``index`` of a soak.

    ``stateful=True`` marks the scenario for the runner's durable-client
    mode and (when ``stack`` was left at the default) swaps in
    :data:`~repro.chaos.scenario.STATEFUL_CHAOS_STACK` so the stack
    carries TOTAL + XFER.  The op timeline is unchanged — the same
    ``(seed, index)`` yields the same storm either way.

    ``overload=True`` widens the op palette with the overload plane
    (``slow_receiver``, ``fanin_storm``, ``wan_squeeze``) so storms
    compose with crashes and partitions, guarantees at least one
    slow-receiver + fan-in pair, and (when ``stack`` was left at the
    default) swaps in :data:`~repro.chaos.scenario.OVERLOAD_CHAOS_STACK`
    so CREDIT is there to absorb it.  Overload timelines are their own
    deterministic family — same ``(seed, index, overload)``, same storm.

    ``large_n=True`` generates for fleets of thousands (``nodes`` is
    lifted to at least 1000): crash *storms* instead of single crashes,
    minority partitions bounded by fleet fraction, recovery waves —
    sized so no storm kills more than a twentieth of the fleet.  The
    family draws from its own rng stream (``chaos.gen.large.{index}``),
    so the base and overload ``(seed, index)`` timelines stay
    byte-identical whether or not large-n mode exists.
    """
    if profile not in _PROFILES:
        raise ValueError(f"unknown chaos profile {profile!r}")
    if large_n:
        return _generate_large_n(seed, index, max(nodes, 1000), stack)
    if stateful and stack == DEFAULT_CHAOS_STACK:
        stack = STATEFUL_CHAOS_STACK
    if overload and stack == DEFAULT_CHAOS_STACK:
        stack = OVERLOAD_CHAOS_STACK
    from repro.sim.rand import derive_seed

    rng = random.Random(derive_seed(seed, f"chaos.gen.{index}"))
    lo, hi, settle, max_ops = _PROFILES[profile]
    duration = rng.uniform(lo, hi)
    names = tuple(f"n{i}" for i in range(nodes))

    ops: List[ChaosOp] = []
    dead: set = set()
    partitioned = False
    max_dead = (nodes - 1) // 2  # keep a primary component possible

    palette = ("crash", "recover", "partition", "heal", "set_faults",
               "load", "load")
    if overload:
        palette = palette + _OVERLOAD_KINDS

    n_ops = rng.randint(3, max_ops)
    for _ in range(n_ops):
        at = round(rng.uniform(0.2, duration * 0.8), 2)
        kind = rng.choice(palette)
        if kind == "crash" and len(dead) < max_dead:
            victim = rng.choice([n for n in names if n not in dead])
            dead.add(victim)
            ops.append(Crash(at=at, node=victim))
        elif kind == "recover" and dead:
            back = rng.choice(sorted(dead))
            dead.discard(back)
            ops.append(Recover(at=at, node=back))
        elif kind == "partition" and not partitioned and nodes >= 3:
            shuffled = list(names)
            rng.shuffle(shuffled)
            # Majority side first so the primary partition keeps going.
            cut = rng.randint(1, (nodes - 1) // 2)
            ops.append(Partition(
                at=at,
                components=(tuple(sorted(shuffled[cut:])),
                            tuple(sorted(shuffled[:cut]))),
            ))
            partitioned = True
        elif kind == "heal" and partitioned:
            ops.append(Heal(at=at))
            partitioned = False
        elif kind == "set_faults":
            faults = rng.choice(_FAULT_PALETTES)
            ops.append(SetFaults.of(at, **faults))
        elif kind == "slow_receiver":
            live = [n for n in names if n not in dead] or list(names)
            ops.append(SlowReceiver(
                at=at,
                node=rng.choice(live),
                rate=float(rng.choice((2048, 4096, 8192))),
            ))
        elif kind == "fanin_storm":
            live = [n for n in names if n not in dead] or list(names)
            ops.append(FaninStorm(
                at=at,
                target=rng.choice(live),
                count=rng.randint(10, 30),
                size=rng.choice((64, 256, 1024)),
            ))
        elif kind == "wan_squeeze":
            ops.append(WanSqueeze(at=at))
        else:
            # Load from a node that is up at generation time, so every
            # scenario actually gives the checkers messages to judge.
            live = [n for n in names if n not in dead] or list(names)
            ops.append(InjectLoad(
                at=at,
                node=rng.choice(live),
                count=rng.randint(2, 6),
                size=rng.choice((16, 64, 256)),
            ))

    if not any(isinstance(op, InjectLoad) for op in ops):
        ops.append(InjectLoad(
            at=round(duration * 0.5, 2), node=names[0], count=4, size=64
        ))
    if overload:
        # Every overload storm carries at least one slow-receiver +
        # fan-in pair aimed at the same node — the canonical squeeze.
        target = rng.choice(list(names))
        if not any(isinstance(op, SlowReceiver) for op in ops):
            ops.append(SlowReceiver(
                at=round(duration * 0.25, 2), node=target, rate=4096.0
            ))
        if not any(isinstance(op, FaninStorm) for op in ops):
            ops.append(FaninStorm(
                at=round(duration * 0.4, 2), target=target,
                count=rng.randint(10, 30), size=256,
            ))

    return Scenario(
        name=f"s{seed}-{index}",
        nodes=names,
        ops=tuple(ops),
        stack=stack,
        duration=duration,
        settle=settle,
        stateful=stateful,
    )


def _generate_large_n(
    seed: int, index: int, nodes: int, stack: str
) -> Scenario:
    """The large-n op family: storms scaled to fleets of thousands.

    Ops come in waves — a crash storm fells a batch of nodes in one
    instant, a recovery wave brings a batch back, a partition cuts off
    a bounded minority — because at fleet scale single-node events are
    noise.  The dead fraction never exceeds
    :data:`_LARGE_N_MAX_DEAD` and a partition never isolates more than
    :data:`_LARGE_N_MAX_CUT` of the fleet, so every generated storm is
    one the gossip plane is supposed to converge through.
    """
    from repro.sim.rand import derive_seed

    rng = random.Random(derive_seed(seed, f"chaos.gen.large.{index}"))
    lo, hi, settle, max_ops = _LARGE_N_PROFILE
    duration = rng.uniform(lo, hi)
    names = tuple(f"n{i}" for i in range(nodes))

    ops: List[ChaosOp] = []
    dead: set = set()
    partitioned = False
    max_dead = max(1, int(nodes * _LARGE_N_MAX_DEAD))

    palette = ("crash_storm", "crash_storm", "recover_wave",
               "partition", "heal", "set_faults")
    n_ops = rng.randint(3, max_ops)
    for _ in range(n_ops):
        at = round(rng.uniform(0.2, duration * 0.8), 2)
        kind = rng.choice(palette)
        if kind == "crash_storm" and len(dead) < max_dead:
            # Fell 0.2%-1% of the fleet at one instant, honoring the cap.
            count = min(
                rng.randint(max(1, nodes // 500), max(2, nodes // 100)),
                max_dead - len(dead),
            )
            victims = rng.sample([n for n in names if n not in dead], count)
            for victim in victims:
                dead.add(victim)
                ops.append(Crash(at=at, node=victim))
        elif kind == "recover_wave" and dead:
            count = rng.randint(1, max(1, len(dead) // 2))
            for back in rng.sample(sorted(dead), count):
                dead.discard(back)
                ops.append(Recover(at=at, node=back))
        elif kind == "partition" and not partitioned:
            cut = rng.randint(2, max(2, int(nodes * _LARGE_N_MAX_CUT)))
            shuffled = list(names)
            rng.shuffle(shuffled)
            ops.append(Partition(
                at=at,
                components=(tuple(sorted(shuffled[cut:])),
                            tuple(sorted(shuffled[:cut]))),
            ))
            partitioned = True
        elif kind == "heal" and partitioned:
            ops.append(Heal(at=at))
            partitioned = False
        elif kind == "set_faults":
            faults = rng.choice(_FAULT_PALETTES)
            ops.append(SetFaults.of(at, **faults))
    if not any(isinstance(op, Crash) for op in ops):
        # Every large-n scenario carries at least one storm: that is
        # what the convergence checker is for.
        count = max(1, nodes // 200)
        victims = rng.sample([n for n in names if n not in dead], count)
        ops.extend(
            Crash(at=round(duration * 0.5, 2), node=v) for v in victims
        )

    return Scenario(
        name=f"s{seed}-{index}-large",
        nodes=names,
        ops=tuple(ops),
        stack=stack,
        duration=duration,
        settle=settle,
        stateful=False,
    )
