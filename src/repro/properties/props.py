"""Table 4: the sixteen protocol properties.

Each property "can either be a requirement on the communication
guarantees provided underneath the protocol, or a guarantee that is
provided by the protocol itself."
"""

from __future__ import annotations

import enum
from typing import FrozenSet


class P(enum.IntEnum):
    """The properties of Table 4, named P1 through P16."""

    BEST_EFFORT = 1  # best effort delivery
    PRIORITIZED = 2  # prioritized effort delivery
    FIFO_UNICAST = 3  # FIFO unicast delivery
    FIFO_MULTICAST = 4  # FIFO multicast delivery
    CAUSAL = 5  # causal delivery
    TOTAL_ORDER = 6  # totally ordered delivery
    SAFE = 7  # safe delivery
    VIRTUALLY_SEMI_SYNC = 8  # virtually semi-synchronous delivery
    VIRTUALLY_SYNC = 9  # virtually synchronous delivery
    BYTE_REORDER_DETECT = 10  # byte re-ordering detection
    SOURCE_ADDRESS = 11  # source address
    LARGE_MESSAGES = 12  # large messages
    CAUSAL_TIMESTAMPS = 13  # causal timestamps
    STABILITY_INFO = 14  # stability information
    CONSISTENT_VIEWS = 15  # consistent views
    AUTO_VIEW_MERGE = 16  # automatic view merging

    def __str__(self) -> str:
        return f"P{int(self)}"


_DESCRIPTIONS = {
    P.BEST_EFFORT: "best effort delivery",
    P.PRIORITIZED: "prioritized effort delivery",
    P.FIFO_UNICAST: "FIFO unicast delivery",
    P.FIFO_MULTICAST: "FIFO multicast delivery",
    P.CAUSAL: "causal delivery",
    P.TOTAL_ORDER: "totally ordered delivery",
    P.SAFE: "safe delivery",
    P.VIRTUALLY_SEMI_SYNC: "virtually semi-synchronous delivery",
    P.VIRTUALLY_SYNC: "virtually synchronous delivery",
    P.BYTE_REORDER_DETECT: "byte re-ordering detection",
    P.SOURCE_ADDRESS: "source address",
    P.LARGE_MESSAGES: "large messages",
    P.CAUSAL_TIMESTAMPS: "causal timestamps",
    P.STABILITY_INFO: "stability information",
    P.CONSISTENT_VIEWS: "consistent views",
    P.AUTO_VIEW_MERGE: "automatic view merging",
}

#: Every property, in Table 4 order.
ALL_PROPERTIES: FrozenSet[P] = frozenset(P)


def property_description(prop: P) -> str:
    """The Table 4 wording for ``prop``."""
    return _DESCRIPTIONS[prop]


def parse_property(text: str) -> P:
    """Parse ``"P9"`` / ``"9"`` / a Table 4 description into a property."""
    cleaned = text.strip().lower()
    if cleaned.startswith("p") and cleaned[1:].isdigit():
        return P(int(cleaned[1:]))
    if cleaned.isdigit():
        return P(int(cleaned))
    for prop, description in _DESCRIPTIONS.items():
        if description == cleaned:
            return prop
    raise ValueError(f"unknown property {text!r}")
