"""Well-formedness checking and property derivation for stacks.

"A stack is well-formed if, for each layer, all its required properties
are guaranteed by the stack underneath it.  The properties are either
provided by the layer immediately below, or inherited from an even
lower layer." (Section 6)

The checker walks a stack bottom-up, starting from the network's
property set, applying each layer's Table 3 row, and records both the
running property set and any violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.core.stack import parse_stack_spec
from repro.errors import IllFormedStackError
from repro.properties.props import P
from repro.properties.registry import profile_for

#: Property sets each bundled network substrate provides natively.
NETWORK_PROPERTIES: Dict[str, FrozenSet[P]] = {
    "atm": frozenset({P.BEST_EFFORT}),
    "udp": frozenset({P.BEST_EFFORT}),
    "lan": frozenset({P.BEST_EFFORT, P.SOURCE_ADDRESS}),
    "plain": frozenset({P.BEST_EFFORT}),
}


@dataclass
class StackAnalysis:
    """The result of analysing one stack over one network."""

    #: Layer names, top first (the paper's spec order).
    layers: List[str]
    #: Properties the network supplies beneath the stack.
    network: FrozenSet[P]
    #: Property set available above each layer, bottom layer first.
    above: List[FrozenSet[P]] = field(default_factory=list)
    #: Per-layer missing requirements (empty when well-formed).
    missing: Dict[str, FrozenSet[P]] = field(default_factory=dict)

    @property
    def well_formed(self) -> bool:
        """Whether every layer's requirements were met."""
        return not self.missing

    @property
    def provides(self) -> FrozenSet[P]:
        """Properties the whole stack offers to the application."""
        return self.above[-1] if self.above else self.network

    def explain(self) -> str:
        """Human-readable derivation, bottom-up."""
        lines = [
            "network provides: " + _fmt(self.network),
        ]
        for name, props in zip(reversed(self.layers), self.above):
            marker = ""
            if name in self.missing:
                marker = f"   MISSING {_fmt(self.missing[name])}"
            lines.append(f"above {name:<9}: {_fmt(props)}{marker}")
        return "\n".join(lines)


def _fmt(props: Iterable[P]) -> str:
    return "{" + ", ".join(str(p) for p in sorted(props)) + "}"


def _spec_names(spec) -> List[str]:
    if isinstance(spec, str):
        return [name for name, _ in parse_stack_spec(spec)]
    return list(spec)


def _network_props(network) -> FrozenSet[P]:
    if isinstance(network, str):
        try:
            return NETWORK_PROPERTIES[network]
        except KeyError:
            known = ", ".join(sorted(NETWORK_PROPERTIES))
            raise IllFormedStackError(
                f"unknown network {network!r}; known: {known}"
            ) from None
    return frozenset(network)


def analyze_stack(spec, network="atm") -> StackAnalysis:
    """Walk ``spec`` (string or list of names, top first) bottom-up.

    ``network`` is a bundled substrate name or an explicit property set.
    Never raises for an ill-formed stack — inspect ``missing``.
    """
    layers = _spec_names(spec)
    below = _network_props(network)
    analysis = StackAnalysis(layers=layers, network=below)
    for name in reversed(layers):  # bottom layer first
        profile = profile_for(name)
        lacking = profile.missing(below)
        if lacking:
            analysis.missing[name] = lacking
        below = profile.apply(below)
        analysis.above.append(below)
    return analysis


def check_well_formed(spec, network="atm") -> StackAnalysis:
    """Like :func:`analyze_stack`, but raises on an ill-formed stack."""
    analysis = analyze_stack(spec, network)
    if not analysis.well_formed:
        detail = "; ".join(
            f"{name} missing {_fmt(props)}"
            for name, props in analysis.missing.items()
        )
        raise IllFormedStackError(
            f"stack {':'.join(analysis.layers)} is ill-formed: {detail}",
            missing=analysis.missing,
        )
    return analysis


def derive_properties(spec, network="atm") -> FrozenSet[P]:
    """Properties a well-formed stack provides (raises if ill-formed)."""
    return check_well_formed(spec, network).provides


def ordering_matters(layer_a: str, layer_b: str, below: Iterable[P]) -> Tuple[bool, str]:
    """Does stacking order of two adjacent layers matter over ``below``?

    Section 8 mentions deciding "when the stacking order of two layers
    matters"; this utility answers it within the property algebra:
    the order matters when exactly one of the two orders is well-formed,
    or when the two orders yield different property sets.
    """
    base = frozenset(below)
    pa, pb = profile_for(layer_a), profile_for(layer_b)

    def result(first, second):
        after_first = first.apply(base)
        ok = first.satisfied_by(base) and second.satisfied_by(after_first)
        return ok, second.apply(after_first)

    ok_ab, props_ab = result(pb, pa)  # b below a
    ok_ba, props_ba = result(pa, pb)  # a below b
    if ok_ab != ok_ba:
        good = f"{layer_a}:{layer_b}" if ok_ab else f"{layer_b}:{layer_a}"
        return True, f"only {good} is well-formed"
    if ok_ab and props_ab != props_ba:
        return True, "both orders are well-formed but yield different properties"
    return False, "order does not matter over these properties"
