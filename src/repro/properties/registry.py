"""Table 3: the per-layer Requires / Inherits / Provides matrix.

Each registered layer has a :class:`LayerProfile` stating which
properties it requires from the communication beneath it, which it
provides itself, and which it refuses to pass through (``destroys`` —
the complement of the paper's *inherits*; almost every layer inherits
everything it does not provide, so listing the exceptions is clearer).

The profiles below transcribe Table 3 of the paper for the layers it
covers, and extend the same discipline to the auxiliary protocol types
of Figure 1 (checksumming, signing, encryption, compression, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List

from repro.errors import PropertyError
from repro.properties.props import ALL_PROPERTIES, P, property_description


@dataclass(frozen=True)
class LayerProfile:
    """One row of Table 3."""

    name: str
    requires: FrozenSet[P]
    provides: FrozenSet[P]
    #: Properties this layer does NOT pass through (inherits = all - destroys).
    destroys: FrozenSet[P] = field(default_factory=frozenset)
    #: Short note on what the layer is for (Figure 1's "used for" column).
    purpose: str = ""

    @property
    def inherits(self) -> FrozenSet[P]:
        """Properties passed through unchanged from below."""
        return ALL_PROPERTIES - self.destroys - self.provides

    def apply(self, below: FrozenSet[P]) -> FrozenSet[P]:
        """Properties available above this layer, given those below."""
        return (below & self.inherits) | self.provides

    def satisfied_by(self, below: FrozenSet[P]) -> bool:
        """Whether the stack beneath meets this layer's requirements."""
        return self.requires <= below

    def missing(self, below: FrozenSet[P]) -> FrozenSet[P]:
        """Required properties the stack beneath fails to supply."""
        return self.requires - below


def _ps(*nums: int) -> FrozenSet[P]:
    return frozenset(P(n) for n in nums)


PROFILES: Dict[str, LayerProfile] = {}


def register_profile(profile: LayerProfile) -> LayerProfile:
    """Add a profile to the registry (duplicate names are an error)."""
    if profile.name in PROFILES:
        raise PropertyError(f"profile for {profile.name!r} already registered")
    PROFILES[profile.name] = profile
    return profile


def profile_for(layer_name: str) -> LayerProfile:
    """The Table 3 row for ``layer_name``."""
    try:
        return PROFILES[layer_name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise PropertyError(
            f"no property profile for layer {layer_name!r}; known: {known}"
        ) from None


# ----------------------------------------------------------------------
# Table 3 proper
# ----------------------------------------------------------------------

register_profile(
    LayerProfile(
        "COM",
        requires=_ps(1),
        provides=_ps(10, 11),
        purpose="network interface to HCPI; source addresses",
    )
)
register_profile(
    LayerProfile(
        "NFRAG",
        requires=_ps(1, 10, 11),
        provides=_ps(12),
        purpose="network-level fragmentation (below the FIFO layer)",
    )
)
register_profile(
    LayerProfile(
        "NAK",
        requires=_ps(1, 10, 11),
        provides=_ps(3, 4),
        # Reliable FIFO *replaces* raw best-effort delivery: Section 7
        # derives the example stack's properties without P1.
        destroys=_ps(1),
        purpose="reliable FIFO via negative acknowledgements",
    )
)
register_profile(
    LayerProfile(
        "NNAK",
        requires=_ps(1, 10, 11),
        provides=_ps(3),
        destroys=_ps(1),
        purpose="reliable FIFO unicast only",
    )
)
register_profile(
    LayerProfile(
        "FRAG",
        requires=_ps(3, 4, 10, 11),
        provides=_ps(12),
        purpose="fragmentation/reassembly over FIFO",
    )
)
register_profile(
    LayerProfile(
        "MBRSHIP",
        requires=_ps(3, 4, 10, 11, 12),
        provides=_ps(8, 9, 15),
        purpose="virtually synchronous membership (Section 5)",
    )
)
register_profile(
    LayerProfile(
        "BMS",
        requires=_ps(3, 4, 10, 11, 12),
        provides=_ps(15),
        purpose="basic membership service: consistent views only",
    )
)
register_profile(
    LayerProfile(
        "VSS",
        requires=_ps(3, 10, 11, 12, 15),
        provides=_ps(8),
        purpose="virtually semi-synchronous delivery over consistent views",
    )
)
register_profile(
    LayerProfile(
        "FLUSH",
        requires=_ps(3, 4, 8, 10, 11, 12, 15),
        provides=_ps(9),
        purpose="flush protocol: upgrades semi-synchrony to virtual synchrony",
    )
)
register_profile(
    LayerProfile(
        "STABLE",
        requires=_ps(3, 4, 8, 9, 10, 11, 12, 15),
        provides=_ps(14),
        purpose="application-defined stability matrix (Section 9)",
    )
)
register_profile(
    LayerProfile(
        "PINWHEEL",
        requires=_ps(3, 8, 9, 10, 15),
        provides=_ps(14),
        purpose="rotating-token stability aggregation",
    )
)
register_profile(
    LayerProfile(
        "TOTAL",
        requires=_ps(3, 8, 9, 15),
        provides=_ps(6),
        purpose="token-based total order (Section 7)",
    )
)
register_profile(
    LayerProfile(
        "CAUSAL_TS",
        requires=_ps(3, 4),
        provides=_ps(13),
        purpose="vector timestamps on each message",
    )
)
register_profile(
    LayerProfile(
        "CAUSAL",
        requires=_ps(3, 8, 9, 10, 13, 15),
        provides=_ps(5),
        purpose="ORDER(causal): causal delivery from causal timestamps",
    )
)
register_profile(
    LayerProfile(
        "SAFE",
        requires=_ps(3, 8, 9, 14, 15),
        provides=_ps(5, 7),
        purpose="ORDER(safe): deliver only stable (safe) messages",
    )
)
register_profile(
    LayerProfile(
        "MERGE",
        requires=_ps(3, 4, 8, 9, 10, 11, 12, 15),
        provides=_ps(16),
        purpose="automatic view merging after partitions heal",
    )
)

# ----------------------------------------------------------------------
# Figure 1's auxiliary protocol types, same discipline
# ----------------------------------------------------------------------

register_profile(
    LayerProfile(
        "CHKSUM",
        requires=_ps(1),
        provides=frozenset(),
        purpose="checksumming: garbling detection",
    )
)
register_profile(
    LayerProfile(
        "SIGN",
        requires=_ps(1, 11),
        provides=frozenset(),
        purpose="signing: keyed MAC against impersonation",
    )
)
register_profile(
    LayerProfile(
        "CRYPT",
        requires=_ps(1),
        provides=frozenset(),
        purpose="encryption: private communication",
    )
)
register_profile(
    LayerProfile(
        "COMPRESS",
        requires=_ps(1),
        provides=frozenset(),
        purpose="compression: better bandwidth use",
    )
)
register_profile(
    LayerProfile(
        "FLOW",
        requires=frozenset(),
        provides=frozenset(),
        purpose="token-bucket pacing (deprecated; prefer CREDIT)",
    )
)
register_profile(
    LayerProfile(
        "CREDIT",
        requires=frozenset(),
        provides=frozenset(),
        purpose="credit-based flow control: receiver-granted windows, "
        "bounded queues, backpressure verdicts",
    )
)
register_profile(
    LayerProfile(
        "GOSSIP",
        requires=frozenset(),
        provides=frozenset(),
        purpose="SWIM failure detection: constant-load probing, "
        "incarnation-refutable suspicion, infection-style dissemination",
    )
)
register_profile(
    LayerProfile(
        "PRIO",
        requires=frozenset(),
        provides=_ps(2),
        # Reordering by priority forfeits every ordering guarantee.
        destroys=_ps(3, 4, 5, 6, 7),
        purpose="prioritized effort delivery",
    )
)
register_profile(
    LayerProfile(
        "LOGGER",
        requires=frozenset(),
        provides=frozenset(),
        purpose="logging: tolerance of total crash failures",
    )
)
register_profile(
    LayerProfile(
        "TRACER",
        requires=frozenset(),
        provides=frozenset(),
        purpose="tracing: debugging and statistics",
    )
)
register_profile(
    LayerProfile(
        "ACCOUNT",
        requires=frozenset(),
        provides=frozenset(),
        purpose="accounting: usage tracking",
    )
)
register_profile(
    LayerProfile(
        "SOCKETS",
        requires=frozenset(),
        provides=frozenset(),
        purpose="UNIX-socket-style facade (Section 11)",
    )
)


register_profile(
    LayerProfile(
        "RPC",
        requires=_ps(3, 11),
        provides=frozenset(),
        purpose="rpc: client/server request-reply interactions",
    )
)
register_profile(
    LayerProfile(
        "SYNC",
        requires=_ps(3, 11, 15),
        provides=frozenset(),
        purpose="synchronization of clocks against the coordinator",
    )
)
register_profile(
    LayerProfile(
        "REALTIME",
        requires=frozenset(),
        provides=frozenset(),
        purpose="real-time: guaranteed time bounds on delivery",
    )
)
register_profile(
    LayerProfile(
        "KEYDIST",
        requires=_ps(3, 9, 11, 15),
        provides=frozenset(),
        purpose="key distribution: per-view group keys from the coordinator",
    )
)
register_profile(
    LayerProfile(
        "LOCATE",
        requires=_ps(4, 11, 15),
        provides=frozenset(),
        purpose="resource location: membership-aware service discovery",
    )
)
register_profile(
    LayerProfile(
        "XFER",
        # Snapshot streams are subset sends that must arrive reliably,
        # in order, within the view that triggered them — i.e. the full
        # virtual-synchrony bundle MBRSHIP provides.
        requires=_ps(3, 4, 8, 9, 10, 11, 12, 15),
        provides=frozenset(),
        purpose="state transfer to joiners (Section 9 snapshot streaming)",
    )
)

# ----------------------------------------------------------------------
# Rendering (regenerates the paper's tables from the live registry)
# ----------------------------------------------------------------------

#: Rows of the published Table 3, in the paper's order.
TABLE3_ORDER: List[str] = [
    "COM",
    "NFRAG",
    "NAK",
    "NNAK",
    "FRAG",
    "MBRSHIP",
    "BMS",
    "VSS",
    "FLUSH",
    "STABLE",
    "PINWHEEL",
    "TOTAL",
    "CAUSAL",
    "SAFE",
    "MERGE",
]


def render_table3(layers: Iterable[str] = TABLE3_ORDER) -> str:
    """Render the Requires/Inherits/Provides matrix as text."""
    props = sorted(ALL_PROPERTIES)
    header = "Layer     | " + " ".join(f"{int(p):>2d}" for p in props)
    rule = "-" * len(header)
    lines = [header, rule]
    for name in layers:
        profile = profile_for(name)
        cells = []
        for prop in props:
            if prop in profile.requires and prop in profile.provides:
                cells.append("RP")
            elif prop in profile.requires:
                cells.append(" R")
            elif prop in profile.provides:
                cells.append(" P")
            elif prop in profile.inherits:
                cells.append(" I")
            else:
                cells.append(" .")
        lines.append(f"{name:<9} | " + " ".join(cells))
    return "\n".join(lines)


def render_table4() -> str:
    """Render the property list of Table 4 as text."""
    lines = [f"{str(p):<4} {property_description(p)}" for p in sorted(ALL_PROPERTIES)]
    return "\n".join(lines)
