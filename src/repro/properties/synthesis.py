"""Stack synthesis: from required properties to a concrete stack.

"Vice versa, given a set of network properties and required properties
for an application, it is possible to figure out if a stack exists that
can implement the requirements. ... we can even create a minimal stack.
Rather than looking at this as stacking protocols on top of each other,
a different interpretation is that Horus actually builds a single
protocol for the particular application on the fly." (Section 6)

The search is uniform-cost (Dijkstra) over property sets: a state is
the frozenset of properties available at some stack height; an edge
adds one layer whose requirements are met, at that layer's cost.  With
16 properties the state space is at most 2^16, so the search is exact
and fast.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import SynthesisError
from repro.properties.checker import _network_props
from repro.properties.cost import layer_cost
from repro.properties.props import P
from repro.properties.registry import PROFILES, LayerProfile


def synthesize_stack(
    required: Iterable[P],
    network="atm",
    candidates: Optional[Iterable[str]] = None,
    costs: Optional[Dict[str, float]] = None,
    max_depth: int = 12,
) -> List[str]:
    """Find the minimal-cost well-formed stack providing ``required``.

    Args:
        required: properties the application demands.
        network: substrate name or explicit property set beneath the stack.
        candidates: layer names the synthesizer may use (default: every
            registered layer with a property profile).
        costs: per-layer cost overrides.
        max_depth: bound on stack height.

    Returns:
        Layer names, **top first** (ready for ``":".join(...)`` and
        :func:`repro.core.stack.build_stack`).

    Raises:
        SynthesisError: when no stack within ``max_depth`` provides the
            required properties.
    """
    goal = frozenset(required)
    start = _network_props(network)
    pool: List[Tuple[str, LayerProfile]] = [
        (name, PROFILES[name])
        for name in (candidates if candidates is not None else sorted(PROFILES))
        if name in PROFILES
    ]
    if goal <= start:
        return []

    counter = itertools.count()
    # Priority queue of (cost, tiebreak, properties, layers-bottom-first).
    frontier: List[Tuple[float, int, FrozenSet[P], Tuple[str, ...]]] = [
        (0.0, next(counter), start, ())
    ]
    best_cost: Dict[FrozenSet[P], float] = {start: 0.0}
    while frontier:
        cost, _, props, layers = heapq.heappop(frontier)
        if cost > best_cost.get(props, float("inf")):
            continue  # stale entry
        if goal <= props:
            return list(reversed(layers))  # top first
        if len(layers) >= max_depth:
            continue
        for name, profile in pool:
            if not profile.satisfied_by(props):
                continue
            new_props = profile.apply(props)
            if new_props == props:
                continue  # layer adds nothing here
            new_cost = cost + layer_cost(name, costs)
            if new_cost < best_cost.get(new_props, float("inf")):
                best_cost[new_props] = new_cost
                heapq.heappush(
                    frontier,
                    (new_cost, next(counter), new_props, layers + (name,)),
                )
    raise SynthesisError(
        "no stack provides {"
        + ", ".join(str(p) for p in sorted(goal))
        + "} over the given network (within depth "
        + str(max_depth)
        + ")"
    )


def synthesize_spec(required: Iterable[P], network="atm", **kwargs) -> str:
    """Like :func:`synthesize_stack` but returns the colon spec string."""
    layers = synthesize_stack(required, network, **kwargs)
    return ":".join(layers)
