"""The protocol property algebra (Section 6, Tables 3 and 4).

"We need a formal way to describe what a layer requires from the layers
above and below it, and what it guarantees in return. ... Given this
table, it is possible to figure out if a stack is well-formed, and what
properties a well-formed stack provides. ... If we can associate a cost
with each of the properties, possibly on a per-layer basis, we can even
create a minimal stack."

* :mod:`~repro.properties.props` — the 16 properties of Table 4.
* :mod:`~repro.properties.registry` — each layer's Requires / Inherits /
  Provides triple (Table 3).
* :mod:`~repro.properties.checker` — well-formedness and property
  derivation for a stack over given network properties.
* :mod:`~repro.properties.synthesis` — search for a (minimal-cost)
  stack delivering requested properties.
"""

from repro.properties.checker import (
    StackAnalysis,
    analyze_stack,
    check_well_formed,
    derive_properties,
)
from repro.properties.cost import DEFAULT_COSTS, stack_cost
from repro.properties.props import ALL_PROPERTIES, P, property_description
from repro.properties.registry import (
    LayerProfile,
    PROFILES,
    profile_for,
    register_profile,
    render_table3,
    render_table4,
)
from repro.properties.synthesis import synthesize_stack

__all__ = [
    "ALL_PROPERTIES",
    "DEFAULT_COSTS",
    "LayerProfile",
    "P",
    "PROFILES",
    "StackAnalysis",
    "analyze_stack",
    "check_well_formed",
    "derive_properties",
    "profile_for",
    "property_description",
    "register_profile",
    "render_table3",
    "render_table4",
    "stack_cost",
    "synthesize_stack",
]
