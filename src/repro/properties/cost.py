"""Per-layer cost model for minimal-stack synthesis.

"If we can associate a cost with each of the properties, possibly on a
per-layer basis, we can even create a minimal stack." (Section 6)

Costs are abstract units roughly proportional to per-message overhead:
header bytes pushed plus processing. They only need to *rank* stacks
sensibly — e.g. NNAK cheaper than NAK, BMS cheaper than MBRSHIP — so
the synthesizer prefers the smallest machinery that meets requirements.
"""

from __future__ import annotations

from typing import Dict, Iterable

#: Default per-layer costs (abstract units).
DEFAULT_COSTS: Dict[str, float] = {
    "COM": 1.0,
    "NFRAG": 1.5,
    "NNAK": 2.0,
    "NAK": 3.0,
    "FRAG": 1.5,
    "BMS": 4.0,
    "VSS": 3.0,
    "FLUSH": 3.0,
    "MBRSHIP": 8.0,
    "STABLE": 3.0,
    "PINWHEEL": 2.0,
    "TOTAL": 4.0,
    "CAUSAL_TS": 2.0,
    "CAUSAL": 3.0,
    "SAFE": 3.0,
    "MERGE": 2.0,
    "CHKSUM": 1.0,
    "SIGN": 2.0,
    "CRYPT": 3.0,
    "COMPRESS": 2.0,
    "FLOW": 1.5,
    "CREDIT": 2.0,
    "PRIO": 1.5,
    "LOGGER": 2.0,
    "TRACER": 0.5,
    "ACCOUNT": 0.5,
    "SOCKETS": 0.5,
}


def layer_cost(name: str, costs: Dict[str, float] = None) -> float:
    """Cost of one layer (unknown layers default to 1.0)."""
    table = DEFAULT_COSTS if costs is None else costs
    return table.get(name, 1.0)


def stack_cost(layers: Iterable[str], costs: Dict[str, float] = None) -> float:
    """Total cost of a stack (sum of its layers)."""
    return sum(layer_cost(name, costs) for name in layers)
