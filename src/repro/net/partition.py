"""Network partitions.

Section 9 of the paper discusses at length how Horus copes with
partitioning failures (primary partition, extended virtual synchrony,
Relacs view synchrony).  The :class:`PartitionController` is the
substrate side of that story: it decides, per pair of *nodes*, whether
packets can flow.  Membership layers above observe partitions only as
silence and react with their configured partition policy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set


class PartitionController:
    """Reachability oracle for a simulated network.

    By default every node can reach every other node.  Installing a
    partition assigns each named node to a component; nodes in different
    components cannot exchange packets.  Nodes never mentioned in the
    partition remain mutually reachable (they form an implicit extra
    component together).
    """

    def __init__(self) -> None:
        self._component_of: Dict[str, int] = {}
        #: Monotone counter of partition-change events, for tracing.
        self.generation = 0

    @property
    def partitioned(self) -> bool:
        """Whether any partition is currently installed."""
        return bool(self._component_of)

    def partition(self, components: Iterable[Iterable[str]]) -> None:
        """Split the network into the given components.

        ``components`` is an iterable of node-name groups, e.g.
        ``[{"a", "b"}, {"c"}]``.  A node may appear in at most one
        component.
        """
        mapping: Dict[str, int] = {}
        for index, component in enumerate(components):
            for node in component:
                if node in mapping:
                    raise ValueError(f"node {node!r} appears in two components")
                mapping[node] = index
        self._component_of = mapping
        self.generation += 1

    def isolate(self, node: str, others: Iterable[str]) -> None:
        """Convenience: cut ``node`` off from all ``others``."""
        self.partition([{node}, set(others) - {node}])

    def heal(self) -> None:
        """Remove all partitions; full connectivity is restored."""
        if self._component_of:
            self._component_of = {}
            self.generation += 1

    def reachable(self, node_a: str, node_b: str) -> bool:
        """Whether a packet from ``node_a`` can reach ``node_b`` now."""
        if node_a == node_b:
            return True
        comp_a = self._component_of.get(node_a)
        comp_b = self._component_of.get(node_b)
        if comp_a is None and comp_b is None:
            return True
        return comp_a == comp_b

    def component_members(self, node: str, universe: Iterable[str]) -> List[str]:
        """All nodes from ``universe`` currently reachable from ``node``."""
        return sorted(n for n in universe if self.reachable(node, n))

    def components(self, universe: Iterable[str]) -> List[Set[str]]:
        """Partition ``universe`` into its current reachability classes."""
        remaining = set(universe)
        result: List[Set[str]] = []
        while remaining:
            seed = min(remaining)
            component = {n for n in remaining if self.reachable(seed, n)}
            result.append(component)
            remaining -= component
        return result

    def component_index(self, node: str) -> Optional[int]:
        """The component id of ``node``, or ``None`` if unpartitioned."""
        return self._component_of.get(node)
