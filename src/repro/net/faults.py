"""Fault models: how the network misbehaves.

The Horus base class of protocols assumes only "best-effort byte
delivery ... messages may be delayed, lost, or garbled" (Section 2).
A :class:`FaultModel` quantifies each misbehaviour so tests and
benchmarks can dial the environment from pristine ATM to a hostile
internet path, and so hypothesis can drive the layers through random
fault schedules.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple


@dataclass
class FaultModel:
    """Stochastic description of a network path.

    Attributes:
        base_delay: fixed one-way latency in seconds.
        jitter: maximum extra uniformly-random latency in seconds.
            Jitter alone causes reordering between packets.
        loss_rate: probability a packet is silently dropped.
        duplicate_rate: probability a packet is delivered twice.
        garble_rate: probability a delivered packet's payload is
            corrupted (one byte flipped).
        reorder_rate: probability a packet is held back an extra
            ``reorder_delay`` seconds, forcing it behind later traffic.
        reorder_delay: the hold-back applied to reordered packets.
    """

    base_delay: float = 0.001
    jitter: float = 0.0
    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    garble_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_delay: float = 0.005

    def __post_init__(self) -> None:
        for name in ("loss_rate", "duplicate_rate", "garble_rate", "reorder_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value!r}")
        if self.base_delay < 0 or self.jitter < 0 or self.reorder_delay < 0:
            raise ValueError("delays must be non-negative")

    def plan_deliveries(
        self, rng: random.Random, payload: bytes
    ) -> List[Tuple[float, bytes, bool]]:
        """Decide the fate of one packet.

        Returns a list of ``(delay, payload, garbled)`` tuples — empty if
        the packet is lost, length two if duplicated.  The payload in a
        garbled delivery has exactly one byte flipped; garbling never
        changes the payload length, so a fixed-size frame stays a
        fixed-size frame.  An empty payload carries no bytes to corrupt
        and is delivered intact (``garbled=False``) — it used to come
        back as a fabricated ``b"\\xff"``, which no checksum layer could
        have vouched for because the original content was never sent.
        """
        if rng.random() < self.loss_rate:
            return []
        copies = 2 if rng.random() < self.duplicate_rate else 1
        deliveries: List[Tuple[float, bytes, bool]] = []
        for _ in range(copies):
            delay = self.base_delay
            if self.jitter > 0:
                delay += rng.random() * self.jitter
            if self.reorder_rate > 0 and rng.random() < self.reorder_rate:
                delay += self.reorder_delay
            data = payload
            garbled = False
            if self.garble_rate > 0 and rng.random() < self.garble_rate:
                if payload:
                    data = _flip_byte(rng, payload)
                    garbled = True
            deliveries.append((delay, data, garbled))
        return deliveries

    @classmethod
    def perfect(cls, base_delay: float = 0.001) -> "FaultModel":
        """A loss-free, in-order, uncorrupted path (useful in unit tests)."""
        return cls(base_delay=base_delay)

    @classmethod
    def lossy(
        cls,
        loss_rate: float = 0.05,
        base_delay: float = 0.005,
        jitter: float = 0.002,
    ) -> "FaultModel":
        """A typical mildly hostile datagram path."""
        return cls(base_delay=base_delay, jitter=jitter, loss_rate=loss_rate)


def _flip_byte(rng: random.Random, payload: bytes) -> bytes:
    """Return ``payload`` with exactly one byte XOR-flipped (same length).

    Empty payloads come back unchanged — there is nothing to corrupt,
    and fabricating bytes would change the packet length, which line
    garbling (as opposed to truncation) never does.
    """
    if not payload:
        return payload
    index = rng.randrange(len(payload))
    flipped = payload[index] ^ 0xFF
    return payload[:index] + bytes([flipped]) + payload[index + 1 :]
