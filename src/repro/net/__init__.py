"""Simulated network substrates.

The paper runs Horus over ATM and the Internet; here the same layers run
over deterministic simulated networks.  Every network provides exactly
the paper's property ``P1`` (best-effort delivery): packets may be
delayed, lost, duplicated, reordered, or garbled, according to a
configurable :class:`~repro.net.faults.FaultModel`, and the network may
be partitioned via a :class:`~repro.net.partition.PartitionController`.

Three concrete substrates are provided, mirroring the environments the
paper mentions:

* :class:`~repro.net.atm.AtmNetwork` — low-latency, near-lossless,
  small-MTU cell network (the paper's ATM testbed).
* :class:`~repro.net.udp.UdpNetwork` — lossy datagram network (the
  paper's "Internet" case).
* :class:`~repro.net.lan.LanNetwork` — broadcast LAN with hardware
  multicast.
"""

from repro.net.address import EndpointAddress, GroupAddress
from repro.net.atm import AtmNetwork
from repro.net.coalesce import Coalescer, decode_batch
from repro.net.faults import FaultModel
from repro.net.lan import LanNetwork
from repro.net.network import Network, NetworkStats
from repro.net.packet import Packet
from repro.net.partition import PartitionController
from repro.net.udp import UdpNetwork
from repro.net.wan import Link, WanNetwork

__all__ = [
    "AtmNetwork",
    "Coalescer",
    "decode_batch",
    "Link",
    "WanNetwork",
    "EndpointAddress",
    "FaultModel",
    "GroupAddress",
    "LanNetwork",
    "Network",
    "NetworkStats",
    "Packet",
    "PartitionController",
    "UdpNetwork",
]
