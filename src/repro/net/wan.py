"""A routed wide-area network (Figure 1's "routing" protocol type).

The LAN/ATM/UDP substrates model one segment; the WAN models the
"fragments through internet" case: endpoints attach to *sites*, sites
connect by point-to-point links with individual delay/loss/bandwidth
characteristics, and packets are forwarded hop by hop along shortest
(lowest-latency) paths.  Link failures change the topology: routes are
recomputed, and when no route remains the network is partitioned — so
membership-layer partition handling emerges from topology rather than
being injected by fiat.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import AddressError, ConfigurationError, NetworkError
from repro.net.address import EndpointAddress
from repro.net.faults import FaultModel
from repro.net.network import Network
from repro.net.packet import Packet
from repro.sim.scheduler import Scheduler


class Link:
    """One bidirectional site-to-site link."""

    __slots__ = ("site_a", "site_b", "fault_model", "up")

    def __init__(self, site_a: str, site_b: str, fault_model: FaultModel) -> None:
        self.site_a = site_a
        self.site_b = site_b
        self.fault_model = fault_model
        self.up = True

    def other(self, site: str) -> str:
        return self.site_b if site == self.site_a else self.site_a

    @property
    def key(self) -> Tuple[str, str]:
        return tuple(sorted((self.site_a, self.site_b)))  # type: ignore[return-value]

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"<Link {self.site_a}--{self.site_b} ({state})>"


class WanNetwork(Network):
    """Multi-site topology with hop-by-hop forwarding.

    Build the topology first, then place nodes on sites::

        wan = WanNetwork(scheduler)
        wan.add_site("nyc"); wan.add_site("sfo"); wan.add_site("chi")
        wan.add_link("nyc", "chi", delay=0.01)
        wan.add_link("chi", "sfo", delay=0.02)
        wan.place_node("a", site="nyc")
        wan.place_node("b", site="sfo")   # a->b routes via chi

    Cutting a link (:meth:`fail_link`) reroutes traffic if an alternate
    path exists and partitions the network if none does.
    """

    default_mtu = 1472

    def __init__(
        self,
        scheduler: Scheduler,
        rng: Optional[random.Random] = None,
        mtu: Optional[int] = None,
        name: str = "wan",
        metrics=None,
        **_ignored,
    ) -> None:
        super().__init__(
            scheduler,
            fault_model=FaultModel(base_delay=0.0),
            rng=rng,
            mtu=mtu,
            name=name,
            metrics=metrics,
        )
        self._sites: List[str] = []
        self._links: Dict[Tuple[str, str], Link] = {}
        self._site_of: Dict[str, str] = {}  # node -> site
        self._routes: Dict[Tuple[str, str], Optional[str]] = {}
        self._routes_dirty = True
        self.hops_forwarded = 0
        self.no_route_drops = 0

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------

    def add_site(self, site: str) -> None:
        """Add a routing site (router)."""
        if site in self._sites:
            raise ConfigurationError(f"site {site!r} already exists")
        self._sites.append(site)
        self._routes_dirty = True

    def add_link(
        self,
        site_a: str,
        site_b: str,
        delay: float = 0.01,
        loss_rate: float = 0.0,
        jitter: float = 0.0,
    ) -> Link:
        """Connect two sites with a point-to-point link."""
        for site in (site_a, site_b):
            if site not in self._sites:
                raise ConfigurationError(f"unknown site {site!r}")
        link = Link(
            site_a,
            site_b,
            FaultModel(base_delay=delay, jitter=jitter, loss_rate=loss_rate),
        )
        if link.key in self._links:
            raise ConfigurationError(f"link {site_a}--{site_b} already exists")
        self._links[link.key] = link
        self._routes_dirty = True
        return link

    def place_node(self, node: str, site: str) -> None:
        """Attach a (future) node's traffic to a site."""
        if site not in self._sites:
            raise ConfigurationError(f"unknown site {site!r}")
        self._site_of[node] = site

    def site_of(self, node: str) -> str:
        """The site ``node`` was placed on."""
        try:
            return self._site_of[node]
        except KeyError:
            raise AddressError(
                f"node {node!r} was never placed on a site "
                "(call place_node before creating its endpoints)"
            ) from None

    # ------------------------------------------------------------------
    # Link failures
    # ------------------------------------------------------------------

    def fail_link(self, site_a: str, site_b: str) -> None:
        """Take a link down; routing adapts or partitions."""
        self._link(site_a, site_b).up = False
        self._routes_dirty = True

    def restore_link(self, site_a: str, site_b: str) -> None:
        """Bring a failed link back."""
        self._link(site_a, site_b).up = True
        self._routes_dirty = True

    def _link(self, site_a: str, site_b: str) -> Link:
        key = tuple(sorted((site_a, site_b)))
        try:
            return self._links[key]  # type: ignore[index]
        except KeyError:
            raise ConfigurationError(f"no link {site_a}--{site_b}") from None

    # ------------------------------------------------------------------
    # Routing (Dijkstra over live links, next-hop table)
    # ------------------------------------------------------------------

    def _recompute_routes(self) -> None:
        self._routes = {}
        adjacency: Dict[str, List[Tuple[str, float]]] = {s: [] for s in self._sites}
        for link in self._links.values():
            if not link.up:
                continue
            weight = link.fault_model.base_delay
            adjacency[link.site_a].append((link.site_b, weight))
            adjacency[link.site_b].append((link.site_a, weight))
        for source in self._sites:
            dist: Dict[str, float] = {source: 0.0}
            first_hop: Dict[str, Optional[str]] = {source: None}
            heap: List[Tuple[float, str, Optional[str]]] = [(0.0, source, None)]
            seen = set()
            while heap:
                cost, site, via = heapq.heappop(heap)
                if site in seen:
                    continue
                seen.add(site)
                first_hop[site] = via
                for neighbour, weight in adjacency[site]:
                    if neighbour not in seen:
                        next_via = neighbour if via is None else via
                        heapq.heappush(heap, (cost + weight, neighbour, next_via))
            for target, via in first_hop.items():
                self._routes[(source, target)] = via
        self._routes_dirty = False

    def next_hop(self, from_site: str, to_site: str) -> Optional[str]:
        """First hop on the current best path, or ``None`` if unreachable
        (``from_site == to_site`` routes locally)."""
        if self._routes_dirty:
            self._recompute_routes()
        if from_site == to_site:
            return to_site
        return self._routes.get((from_site, to_site))

    def route(self, from_site: str, to_site: str) -> Optional[List[str]]:
        """The full site path, for diagnostics (None if unreachable)."""
        if from_site == to_site:
            return [from_site]
        path = [from_site]
        site = from_site
        for _ in range(len(self._sites) + 1):
            hop = self.next_hop(site, to_site)
            if hop is None:
                return None
            path.append(hop)
            if hop == to_site:
                return path
            site = hop
        return None

    # ------------------------------------------------------------------
    # Transmission: hop-by-hop forwarding
    # ------------------------------------------------------------------

    def unicast(
        self,
        source: EndpointAddress,
        dest: EndpointAddress,
        payload: bytes,
    ) -> None:
        if len(payload) > self.mtu:
            from repro.errors import PacketTooLargeError

            raise PacketTooLargeError(len(payload), self.mtu)
        if source not in self._endpoints:
            raise AddressError(f"source {source} not attached to {self.name}")
        if not self.node_alive(source.node):
            raise NetworkError(f"node {source.node} has crashed and cannot send")
        self.stats.note_send(source.node, len(payload))
        if not self.partitions.reachable(source.node, dest.node):
            self.stats.packets_partitioned += 1
            return
        packet = Packet(
            source=source, dest=dest, payload=payload, sent_at=self.scheduler.now
        )
        self._forward(packet, self.site_of(source.node))

    def _forward(self, packet: Packet, at_site: str) -> None:
        """One routing step: local delivery or next-hop transmission."""
        dest_site = self.site_of(packet.dest.node)
        if at_site == dest_site:
            # Small intra-site delivery latency.
            self.scheduler.call_after(50e-6, self._deliver, packet)
            return
        hop = self.next_hop(at_site, dest_site)
        if hop is None:
            self.no_route_drops += 1
            return
        link = self._link(at_site, hop)
        if not link.up:
            self._routes_dirty = True
            self.no_route_drops += 1
            return
        deliveries = link.fault_model.plan_deliveries(self.rng, packet.payload)
        if not deliveries:
            self.stats.packets_lost += 1
            return
        for delay, data, garbled in deliveries:
            hopped = Packet(
                source=packet.source,
                dest=packet.dest,
                payload=data,
                sent_at=packet.sent_at,
                garbled=packet.garbled or garbled,
            )
            self.hops_forwarded += 1
            self.scheduler.call_after(delay, self._forward, hopped, hop)

    def __repr__(self) -> str:
        up = sum(1 for l in self._links.values() if l.up)
        return (
            f"<WanNetwork sites={len(self._sites)} links={up}/{len(self._links)} "
            f"endpoints={len(self._endpoints)}>"
        )
