"""The base simulated network.

A :class:`Network` connects endpoint addresses to delivery callbacks and
moves byte payloads between them under a :class:`~repro.net.faults.FaultModel`
and a :class:`~repro.net.partition.PartitionController`.  It provides the
paper's property P1 (best-effort delivery) and nothing more — every
stronger guarantee is the job of a protocol layer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Set

from repro.errors import AddressError, NetworkError, PacketTooLargeError
from repro.net.address import EndpointAddress
from repro.net.faults import FaultModel
from repro.net.packet import Packet
from repro.net.partition import PartitionController
from repro.sim.rand import derive_seed
from repro.sim.scheduler import Scheduler

DeliveryCallback = Callable[[Packet], None]


@dataclass
class NetworkStats:
    """Counters a network maintains; read by benchmarks and tests."""

    packets_sent: int = 0
    packets_delivered: int = 0
    packets_lost: int = 0
    packets_garbled: int = 0
    packets_duplicated: int = 0
    packets_partitioned: int = 0
    packets_to_dead: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    per_node_sent: Dict[str, int] = field(default_factory=dict)

    def note_send(self, node: str, size: int) -> None:
        """Account for one transmitted packet."""
        self.packets_sent += 1
        self.bytes_sent += size
        self.per_node_sent[node] = self.per_node_sent.get(node, 0) + 1


class Network:
    """Best-effort datagram network (property P1).

    Endpoints :meth:`attach` with a callback; senders call
    :meth:`unicast` or :meth:`multicast` with flat byte payloads.  The
    fault model decides loss/duplication/garbling/delay per packet; the
    partition controller decides reachability per node pair; crashed
    nodes neither send nor receive.
    """

    #: Maximum payload size; subclasses override.
    default_mtu = 65536

    def __init__(
        self,
        scheduler: Scheduler,
        fault_model: Optional[FaultModel] = None,
        rng: Optional[random.Random] = None,
        mtu: Optional[int] = None,
        name: str = "net",
    ) -> None:
        self.scheduler = scheduler
        self.fault_model = fault_model or FaultModel.perfect()
        # Fault decisions draw from a per-component seeded stream (the
        # sim.rand derivation), never the global random module, so a
        # network built without an explicit rng is still reproducible
        # and independent of every other consumer of randomness.
        self.rng = rng or random.Random(derive_seed(0, f"net.{name}"))
        self.mtu = mtu if mtu is not None else self.default_mtu
        self.name = name
        self.partitions = PartitionController()
        self.stats = NetworkStats()
        self._endpoints: Dict[EndpointAddress, DeliveryCallback] = {}
        self._dead_nodes: Set[str] = set()

    # ------------------------------------------------------------------
    # Attachment and node lifecycle
    # ------------------------------------------------------------------

    def attach(self, address: EndpointAddress, deliver: DeliveryCallback) -> None:
        """Register ``address``; incoming packets invoke ``deliver``."""
        if address in self._endpoints:
            raise AddressError(f"address {address} already attached to {self.name}")
        self._endpoints[address] = deliver

    def detach(self, address: EndpointAddress) -> None:
        """Unregister ``address``.  Unknown addresses raise."""
        if address not in self._endpoints:
            raise AddressError(f"address {address} not attached to {self.name}")
        del self._endpoints[address]

    def attached(self, address: EndpointAddress) -> bool:
        """Whether ``address`` is currently registered."""
        return address in self._endpoints

    def addresses(self) -> Iterable[EndpointAddress]:
        """Snapshot of currently attached addresses."""
        return list(self._endpoints)

    def crash_node(self, node: str) -> None:
        """Fail-stop ``node``: it stops sending and receiving immediately.

        In-flight packets addressed to it are dropped on arrival, which
        models a machine power-off rather than a graceful close.
        """
        self._dead_nodes.add(node)

    def revive_node(self, node: str) -> None:
        """Bring a crashed node back (it must re-join groups itself)."""
        self._dead_nodes.discard(node)

    def node_alive(self, node: str) -> bool:
        """Whether ``node`` is currently up."""
        return node not in self._dead_nodes

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------

    def unicast(
        self,
        source: EndpointAddress,
        dest: EndpointAddress,
        payload: bytes,
    ) -> None:
        """Send ``payload`` from ``source`` to ``dest``, best effort."""
        if len(payload) > self.mtu:
            raise PacketTooLargeError(len(payload), self.mtu)
        if source not in self._endpoints:
            raise AddressError(f"source {source} not attached to {self.name}")
        if not self.node_alive(source.node):
            raise NetworkError(f"node {source.node} has crashed and cannot send")
        self.stats.note_send(source.node, len(payload))
        if not self.partitions.reachable(source.node, dest.node):
            self.stats.packets_partitioned += 1
            return
        deliveries = self.fault_model.plan_deliveries(self.rng, payload)
        if not deliveries:
            self.stats.packets_lost += 1
            return
        if len(deliveries) > 1:
            self.stats.packets_duplicated += 1
        for delay, data, garbled in deliveries:
            packet = Packet(
                source=source,
                dest=dest,
                payload=data,
                sent_at=self.scheduler.now,
                garbled=garbled,
            )
            self.scheduler.call_after(delay, self._deliver, packet)

    def multicast(
        self,
        source: EndpointAddress,
        dests: Iterable[EndpointAddress],
        payload: bytes,
    ) -> None:
        """Send ``payload`` to each destination (software multicast).

        The base network has no broadcast medium, so this is a loop of
        independent unicasts — each destination sees independent loss
        and delay, exactly the failure mode the flush protocol of
        Section 5 exists to handle.
        """
        for dest in dests:
            if dest == source:
                continue
            self.unicast(source, dest, payload)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def _deliver(self, packet: Packet) -> None:
        """Hand a packet to its destination endpoint, if possible."""
        if not self.node_alive(packet.dest.node):
            self.stats.packets_to_dead += 1
            return
        callback = self._endpoints.get(packet.dest)
        if callback is None:
            self.stats.packets_lost += 1
            return
        self.stats.packets_delivered += 1
        self.stats.bytes_delivered += packet.size
        if packet.garbled:
            self.stats.packets_garbled += 1
        callback(packet)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} endpoints={len(self._endpoints)} "
            f"mtu={self.mtu}>"
        )
