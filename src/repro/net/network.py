"""The base simulated network.

A :class:`Network` connects endpoint addresses to delivery callbacks and
moves byte payloads between them under a :class:`~repro.net.faults.FaultModel`
and a :class:`~repro.net.partition.PartitionController`.  It provides the
paper's property P1 (best-effort delivery) and nothing more — every
stronger guarantee is the job of a protocol layer.
"""

from __future__ import annotations

import random
import warnings
from typing import Any, Callable, Dict, Iterable, Optional, Set

from repro.errors import AddressError, NetworkError, PacketTooLargeError
from repro.net.address import EndpointAddress
from repro.net.faults import FaultModel
from repro.net.packet import Packet
from repro.net.partition import PartitionController
from repro.obs import MetricsRegistry
from repro.sim.rand import derive_seed
from repro.sim.scheduler import Scheduler

DeliveryCallback = Callable[[Packet], None]


class NetworkStats:
    """Counters a network maintains; read by benchmarks and tests.

    The counters live in a :class:`~repro.obs.MetricsRegistry` as
    ``net_*_total{component=...}`` series; this class is a *view* over
    them.  The historical attribute names (``stats.packets_sent`` etc.)
    are read/write properties over the registry series, so every
    existing consumer keeps working while exporters and ``obs-report``
    see the same numbers under their metric names.
    """

    #: attribute name -> (metric family name, help text)
    _counter_specs: Dict[str, Any] = {
        "packets_sent": ("net_packets_sent_total",
                         "Packets handed to the medium"),
        "packets_delivered": ("net_packets_delivered_total",
                              "Packets handed to an attached endpoint"),
        "packets_lost": ("net_packets_lost_total",
                         "Packets dropped by the fault model or unclaimed"),
        "packets_garbled": ("net_packets_garbled_total",
                            "Packets delivered with corrupted payloads"),
        "packets_duplicated": ("net_packets_duplicated_total",
                               "Packets the fault model duplicated"),
        "packets_partitioned": ("net_packets_partitioned_total",
                                "Packets dropped at a partition boundary"),
        "packets_to_dead": ("net_packets_to_dead_total",
                            "Packets addressed to a crashed node"),
        "bytes_sent": ("net_bytes_sent_total",
                       "Payload bytes handed to the medium"),
        "bytes_delivered": ("net_bytes_delivered_total",
                            "Payload bytes handed to attached endpoints"),
    }

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        component: str = "net",
    ) -> None:
        self._registry: Optional[MetricsRegistry] = None
        self._component = component
        self._counters: Dict[str, Any] = {}
        self._node_counter: Any = None
        self.rebind(registry if registry is not None else MetricsRegistry())

    @property
    def registry(self) -> MetricsRegistry:
        """The registry currently backing these counters."""
        assert self._registry is not None
        return self._registry

    @property
    def component(self) -> str:
        """The ``component`` label value of every series of this view."""
        return self._component

    def rebind(
        self,
        registry: MetricsRegistry,
        component: Optional[str] = None,
    ) -> None:
        """Re-home the counters onto ``registry``, carrying their values.

        Used by worlds handed a pre-built network instance: the network
        starts on a private registry and is rebound onto the world's
        shared one, so a single snapshot covers everything.
        """
        saved = self.as_dict() if self._registry is not None else None
        if component is not None:
            self._component = component
        self._registry = registry
        self._bind(registry)
        if saved is not None:
            self._restore(saved)

    def _bind(self, registry: MetricsRegistry) -> None:
        """(Re)create the per-series handles; subclasses extend."""
        self._counters = {
            attr: registry.counter(metric, help_text, labels=("component",))
            .labels(component=self._component)
            for attr, (metric, help_text) in self._counter_specs.items()
        }
        self._node_counter = registry.counter(
            "net_node_packets_sent_total",
            "Packets sent, per originating node",
            labels=("component", "node"),
        )
        # note_send runs once per packet; resolving the per-node child
        # through labels() each time costs microseconds, so memoize.
        self._node_children: Dict[str, Any] = {}

    def _restore(self, saved: Dict[str, Any]) -> None:
        for attr in self._counter_specs:
            if saved.get(attr):
                self._counters[attr].value = saved[attr]
        for node, count in saved.get("per_node_sent", {}).items():
            self._node_counter.labels(
                component=self._component, node=node
            ).value = count

    @property
    def per_node_sent(self) -> Dict[str, int]:
        """Snapshot of per-node packet counts (historical dict shape)."""
        out: Dict[str, int] = {}
        for series in self._node_counter.series():
            if series.labels.get("component") != self._component:
                continue
            if series.value:
                out[series.labels["node"]] = int(series.value)
        return out

    def note_send(self, node: str, size: int) -> None:
        """Account for one transmitted packet."""
        self._counters["packets_sent"].inc()
        self._counters["bytes_sent"].inc(size)
        child = self._node_children.get(node)
        if child is None:
            child = self._node_counter.labels(
                component=self._component, node=str(node)
            )
            self._node_children[node] = child
        child.value += 1

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict snapshot (what ``dataclasses.asdict`` used to give)."""
        data: Dict[str, Any] = {
            attr: getattr(self, attr) for attr in self._counter_specs
        }
        data["per_node_sent"] = self.per_node_sent
        return data

    def __repr__(self) -> str:
        pairs = " ".join(
            f"{attr}={getattr(self, attr)}"
            for attr in ("packets_sent", "packets_delivered", "packets_lost")
        )
        return f"<{type(self).__name__} {self._component} {pairs}>"


def _counter_view(attr: str, doc: str) -> property:
    def _get(self: NetworkStats) -> int:
        return int(self._counters[attr].value)

    def _set(self: NetworkStats, value: int) -> None:
        self._counters[attr].value = int(value)

    return property(_get, _set, doc=doc)


for _attr, (_metric, _help) in NetworkStats._counter_specs.items():
    setattr(NetworkStats, _attr, _counter_view(_attr, _help))
del _attr, _metric, _help


class Network:
    """Best-effort datagram network (property P1).

    Endpoints :meth:`attach` with a callback; senders call
    :meth:`unicast` or :meth:`multicast` with flat byte payloads.  The
    fault model decides loss/duplication/garbling/delay per packet; the
    partition controller decides reachability per node pair; crashed
    nodes neither send nor receive.
    """

    #: Maximum payload size; subclasses override.
    default_mtu = 65536

    def __init__(
        self,
        scheduler: Scheduler,
        fault_model: Optional[FaultModel] = None,
        rng: Optional[random.Random] = None,
        mtu: Optional[int] = None,
        name: str = "net",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.scheduler = scheduler
        self.fault_model = fault_model or FaultModel.perfect()
        # Fault decisions draw from a per-component seeded stream (the
        # sim.rand derivation), never the global random module, so a
        # network built without an explicit rng is still reproducible
        # and independent of every other consumer of randomness.
        self.rng = rng or random.Random(derive_seed(0, f"net.{name}"))
        self.mtu = mtu if mtu is not None else self.default_mtu
        self.name = name
        self.partitions = PartitionController()
        # Without an explicit registry the stats get a private one; a
        # world rebinds them onto its shared registry on adoption.
        self.stats = NetworkStats(metrics, component=name)
        self._endpoints: Dict[EndpointAddress, DeliveryCallback] = {}
        self._dead_nodes: Set[str] = set()

    # ------------------------------------------------------------------
    # Attachment and node lifecycle
    # ------------------------------------------------------------------

    def attach(self, address: EndpointAddress, deliver: DeliveryCallback) -> None:
        """Register ``address``; incoming packets invoke ``deliver``."""
        if address in self._endpoints:
            raise AddressError(f"address {address} already attached to {self.name}")
        self._endpoints[address] = deliver

    def detach(self, address: EndpointAddress) -> None:
        """Unregister ``address``.  Unknown addresses raise."""
        if address not in self._endpoints:
            raise AddressError(f"address {address} not attached to {self.name}")
        del self._endpoints[address]

    def attached(self, address: EndpointAddress) -> bool:
        """Whether ``address`` is currently registered."""
        return address in self._endpoints

    def addresses(self) -> Iterable[EndpointAddress]:
        """Snapshot of currently attached addresses."""
        return list(self._endpoints)

    # The network implements the :class:`repro.chaos.FaultPlane`
    # protocol at the substrate level: nodes are plain string names,
    # identical to the names the worlds and the realtime transport use.

    def crash(self, node: str) -> None:
        """Fail-stop ``node``: it stops sending and receiving immediately.

        In-flight packets addressed to it are dropped on arrival, which
        models a machine power-off rather than a graceful close.
        """
        self._dead_nodes.add(node)

    def recover(self, node: str) -> None:
        """Bring a crashed node back.

        Recovery at this level only re-opens the pipes; any group state
        the node held is gone, so its endpoints must re-join (the
        MBRSHIP join/merge path) — they never resume silently.
        """
        self._dead_nodes.discard(node)

    def node_alive(self, node: str) -> bool:
        """Whether ``node`` is currently up."""
        return node not in self._dead_nodes

    def partition(self, *components: Iterable[str]) -> None:
        """Split the network into node-name components (FaultPlane op)."""
        self.partitions.partition(components)

    def heal(self) -> None:
        """Remove all partitions; full connectivity returns (FaultPlane op)."""
        self.partitions.heal()

    def set_faults(self, model: Optional[FaultModel]) -> None:
        """Install ``model`` as the path behaviour; ``None`` = pristine."""
        self.fault_model = model if model is not None else FaultModel.perfect()

    def crash_node(self, node: str) -> None:
        """Deprecated alias of :meth:`crash` (pre-FaultPlane name)."""
        warnings.warn(
            "Network.crash_node is deprecated; use Network.crash "
            "(the repro.chaos.FaultPlane API)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.crash(node)

    def revive_node(self, node: str) -> None:
        """Deprecated alias of :meth:`recover` (pre-FaultPlane name)."""
        warnings.warn(
            "Network.revive_node is deprecated; use Network.recover "
            "(the repro.chaos.FaultPlane API)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.recover(node)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------

    def unicast(
        self,
        source: EndpointAddress,
        dest: EndpointAddress,
        payload: bytes,
    ) -> None:
        """Send ``payload`` from ``source`` to ``dest``, best effort."""
        if len(payload) > self.mtu:
            raise PacketTooLargeError(len(payload), self.mtu)
        if source not in self._endpoints:
            raise AddressError(f"source {source} not attached to {self.name}")
        if not self.node_alive(source.node):
            raise NetworkError(f"node {source.node} has crashed and cannot send")
        self.stats.note_send(source.node, len(payload))
        if not self.partitions.reachable(source.node, dest.node):
            self.stats.packets_partitioned += 1
            return
        deliveries = self.fault_model.plan_deliveries(self.rng, payload)
        if not deliveries:
            self.stats.packets_lost += 1
            return
        if len(deliveries) > 1:
            self.stats.packets_duplicated += 1
        for delay, data, garbled in deliveries:
            packet = Packet(
                source=source,
                dest=dest,
                payload=data,
                sent_at=self.scheduler.now,
                garbled=garbled,
            )
            self.scheduler.call_after(delay, self._deliver, packet)

    def multicast(
        self,
        source: EndpointAddress,
        dests: Iterable[EndpointAddress],
        payload: bytes,
    ) -> None:
        """Send ``payload`` to each destination (software multicast).

        The base network has no broadcast medium, so this is a loop of
        independent unicasts — each destination sees independent loss
        and delay, exactly the failure mode the flush protocol of
        Section 5 exists to handle.
        """
        for dest in dests:
            if dest == source:
                continue
            self.unicast(source, dest, payload)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def _deliver(self, packet: Packet) -> None:
        """Hand a packet to its destination endpoint, if possible."""
        if not self.node_alive(packet.dest.node):
            self.stats.packets_to_dead += 1
            return
        callback = self._endpoints.get(packet.dest)
        if callback is None:
            self.stats.packets_lost += 1
            return
        self.stats.packets_delivered += 1
        self.stats.bytes_delivered += packet.size
        if packet.garbled:
            self.stats.packets_garbled += 1
        callback(packet)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} endpoints={len(self._endpoints)} "
            f"mtu={self.mtu}>"
        )
