"""Addresses.

Horus has a *single* address format shared by every layer — the paper
(Section 12) calls this out as the thing that makes layers mixable,
in contrast to STREAMS and the x-kernel where each module invents its
own addressing.  Two address kinds exist:

* :class:`EndpointAddress` — names one communication endpoint.  Used for
  membership: views are lists of endpoint addresses.
* :class:`GroupAddress` — names a group.  Messages are addressed to
  groups, never directly to endpoints (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass

_WIRE_ENCODING = "utf-8"


@dataclass(frozen=True, order=True)
class EndpointAddress:
    """Globally unique name of a communication endpoint.

    ``node`` identifies the simulated process/machine; ``port``
    distinguishes multiple endpoints within one process (a process may
    stack several endpoints, Section 4).
    """

    node: str
    port: int = 0

    def marshal(self) -> bytes:
        """Encode for inclusion in a wire header."""
        return f"{self.node}:{self.port}".encode(_WIRE_ENCODING)

    @classmethod
    def unmarshal(cls, data: bytes) -> "EndpointAddress":
        """Decode an address previously produced by :meth:`marshal`."""
        text = data.decode(_WIRE_ENCODING)
        node, _, port = text.rpartition(":")
        return cls(node=node, port=int(port))

    def __str__(self) -> str:
        return f"{self.node}:{self.port}"


@dataclass(frozen=True, order=True)
class GroupAddress:
    """Name of a process group.

    The group address is what applications send to; the set of endpoints
    behind it is tracked by the membership layers.
    """

    name: str

    def marshal(self) -> bytes:
        """Encode for inclusion in a wire header."""
        return self.name.encode(_WIRE_ENCODING)

    @classmethod
    def unmarshal(cls, data: bytes) -> "GroupAddress":
        """Decode an address previously produced by :meth:`marshal`."""
        return cls(name=data.decode(_WIRE_ENCODING))

    def __str__(self) -> str:
        return self.name
