"""UDP-like lossy datagram network.

The "Internet" environment from Section 2 of the paper: datagrams may be
delayed, lost, duplicated, reordered, or garbled.  This substrate is the
one the reliability layers (NAK, NNAK, checksum) are benchmarked over.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.net.faults import FaultModel
from repro.net.network import Network
from repro.sim.scheduler import Scheduler


class UdpNetwork(Network):
    """Best-effort datagram network with internet-path fault rates."""

    default_mtu = 1472  # ethernet MTU minus IP+UDP headers

    def __init__(
        self,
        scheduler: Scheduler,
        fault_model: Optional[FaultModel] = None,
        rng: Optional[random.Random] = None,
        mtu: Optional[int] = None,
        name: str = "udp",
        metrics=None,
    ) -> None:
        if fault_model is None:
            fault_model = FaultModel(
                base_delay=0.005,
                jitter=0.002,
                loss_rate=0.01,
                duplicate_rate=0.001,
                reorder_rate=0.01,
                reorder_delay=0.004,
            )
        super().__init__(
            scheduler, fault_model=fault_model, rng=rng, mtu=mtu, name=name,
            metrics=metrics,
        )
