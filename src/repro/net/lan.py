"""Broadcast LAN with hardware multicast.

Models an Ethernet segment: one transmission can reach every attached
endpoint (hardware multicast), so a group cast costs one send rather
than N unicasts.  Because the COM layer pushes the source address on
every packet (the paper's P11), this network also exposes that property
natively — the sender of a frame is known to all receivers.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from repro.net.address import EndpointAddress
from repro.net.faults import FaultModel
from repro.net.network import Network
from repro.sim.scheduler import Scheduler


class LanNetwork(Network):
    """Ethernet-like broadcast segment (properties P1 and P11)."""

    default_mtu = 1500

    def __init__(
        self,
        scheduler: Scheduler,
        fault_model: Optional[FaultModel] = None,
        rng: Optional[random.Random] = None,
        mtu: Optional[int] = None,
        name: str = "lan",
        metrics=None,
    ) -> None:
        if fault_model is None:
            fault_model = FaultModel(base_delay=0.0002, jitter=0.0001, loss_rate=0.001)
        super().__init__(
            scheduler, fault_model=fault_model, rng=rng, mtu=mtu, name=name,
            metrics=metrics,
        )
        #: Number of hardware-multicast transmissions performed.
        self.multicasts_sent = 0

    def multicast(
        self,
        source: EndpointAddress,
        dests: Iterable[EndpointAddress],
        payload: bytes,
    ) -> None:
        """One transmission fans out to all destinations.

        Loss and delay are still decided independently per receiver
        (receiver NICs drop frames independently), but the send-side
        cost is a single transmission — ``multicasts_sent`` counts
        physical sends, so a group cast of size N shows up as 1 here
        versus N unicasts on a point-to-point network.
        """
        dest_list = [d for d in dests if d != source]
        if not dest_list:
            return
        self.multicasts_sent += 1
        for dest in dest_list:
            self.unicast(source, dest, payload)
