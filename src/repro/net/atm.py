"""ATM-like network.

The paper's performance testbed was an ATM network ("Very lightweight
protocol stacks permit Horus users to obtain the performance of an ATM
network with almost no overhead", Section 11).  We model AAL5 semantics:
very low latency, negligible loss, and a bounded service data unit.  The
default MTU is deliberately modest so that the FRAG layer has real work
to do, as in the paper's Section 7 stack.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.net.faults import FaultModel
from repro.net.network import Network
from repro.sim.scheduler import Scheduler


class AtmNetwork(Network):
    """Low-latency, near-lossless, small-MTU network (property P1).

    ATM carries 48-byte cell payloads; AAL5 reassembles cells into
    service data units.  We charge a per-cell serialization cost on top
    of the base propagation delay so that larger packets take
    proportionally longer, which is what makes fragmentation threshold
    choices measurable in the Section 10 benchmarks.
    """

    default_mtu = 9180  # classical IP-over-ATM default MTU

    #: Seconds of serialization time per 53-byte cell (155 Mbit/s link).
    cell_time = 53 * 8 / 155_000_000

    def __init__(
        self,
        scheduler: Scheduler,
        fault_model: Optional[FaultModel] = None,
        rng: Optional[random.Random] = None,
        mtu: Optional[int] = None,
        name: str = "atm",
        metrics=None,
    ) -> None:
        if fault_model is None:
            # ATM links are effectively loss-free at protocol timescales.
            fault_model = FaultModel(base_delay=50e-6, jitter=5e-6)
        super().__init__(
            scheduler, fault_model=fault_model, rng=rng, mtu=mtu, name=name,
            metrics=metrics,
        )

    def unicast(self, source, dest, payload: bytes) -> None:
        """Unicast with per-cell serialization latency added."""
        cells = max(1, (len(payload) + 47) // 48)
        extra = cells * self.cell_time
        saved = self.fault_model.base_delay
        # Temporarily extend base delay by serialization time; the fault
        # model is shared, so restore it afterwards.
        self.fault_model.base_delay = saved + extra
        try:
            super().unicast(source, dest, payload)
        finally:
            self.fault_model.base_delay = saved
