"""COM-seam datagram coalescing.

Small application messages dominate the Section 7 and Section 10
workloads, and each one normally pays the full per-datagram cost:
scheduler events and fault-model draws on the DES, a syscall on the
realtime substrate.  :class:`Coalescer` sits between the COM layer and
either substrate and amortises that cost by batching several marshalled
messages travelling between the same (source, destination set) pair into
one datagram.

Batch frame
-----------

A batch reuses the wire magic of the header registry so a receiver can
tell the two apart from the first three bytes::

    0x4852 (">H", the "HR" magic)
    0xB0   batch mode byte (disjoint from header wire modes 0..3)
    count  (">B", number of sub-payloads, >= 2)
    count * [ ">H" length | payload bytes ]

Singleton flushes skip the frame entirely — the lone payload is sent
raw, so un-batched traffic is byte-identical to an uncoalesced world.

Flush policy
------------

A buffered batch is flushed when any of these holds:

* appending the next payload would exceed the substrate MTU;
* the batch reached ``max_batch`` sub-payloads (or 255, the count
  field's ceiling);
* ``max_delay`` seconds of Clock time passed since the first append
  (the flush-latency budget; timers run on whichever Clock seam the
  world uses, so the DES stays deterministic).

Payloads that cannot gain from batching (``payload + overhead > mtu``)
bypass the buffer after flushing it, preserving per-destination FIFO
order; the inner substrate still enforces its own MTU check so oversize
sends fail exactly as they would uncoalesced.

Fault interplay
---------------

Loss, duplication and partition happen *below* the coalescer, to whole
datagrams — losing a batch loses all its sub-messages, exactly like a
larger packet.  A garbled or structurally truncated batch is rejected
whole (counted in ``batches_rejected``), never partially delivered, so
the NAK layer sees a clean gap and recovers every sub-message.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import AddressError, NetworkError, PacketTooLargeError
from repro.net.address import EndpointAddress
from repro.net.packet import Packet

DeliveryCallback = Callable[[Packet], None]

#: Same magic the header registry writes, so the first two bytes of any
#: repro datagram are "HR" whether or not it is a batch.
_MAGIC = 0x4852
#: Batch discriminator — disjoint from header wire-mode bytes (0..3), so
#: a batch frame handed to a non-coalescing endpoint fails unmarshal
#: cleanly instead of mis-decoding.
_MODE_BATCH = 0xB0

_PREAMBLE = struct.Struct(">HBB")   # magic, mode byte, sub-payload count
_SUBLEN = struct.Struct(">H")       # per-sub-payload length prefix

#: Hard ceiling from the one-byte count field.
_MAX_COUNT = 255


def decode_batch(payload: bytes) -> Optional[List[bytes]]:
    """Split a batch frame into its sub-payloads.

    Returns ``None`` when ``payload`` is not a batch frame at all (wrong
    magic or mode byte) — the caller should deliver it unchanged.
    Raises :class:`ValueError` when the frame *is* a batch but is
    structurally corrupt (truncated length, trailing garbage, bad
    count): corrupt batches are rejected whole.
    """
    if len(payload) < _PREAMBLE.size:
        return None
    magic, mode, count = _PREAMBLE.unpack_from(payload, 0)
    if magic != _MAGIC or mode != _MODE_BATCH:
        return None
    if count < 2:
        raise ValueError(f"batch frame with count={count}")
    subs: List[bytes] = []
    offset = _PREAMBLE.size
    for _ in range(count):
        if offset + _SUBLEN.size > len(payload):
            raise ValueError("truncated batch frame (length prefix)")
        (length,) = _SUBLEN.unpack_from(payload, offset)
        offset += _SUBLEN.size
        if offset + length > len(payload):
            raise ValueError("truncated batch frame (sub-payload)")
        subs.append(payload[offset:offset + length])
        offset += length
    if offset != len(payload):
        raise ValueError("trailing bytes after batch frame")
    return subs


class _Buffer:
    """One pending batch: reused bytearray plus flush-timer generation."""

    __slots__ = ("buf", "count", "generation")

    def __init__(self) -> None:
        self.buf = bytearray()
        self.count = 0
        #: Bumped on every flush so a stale timer callback (scheduled
        #: for an earlier fill) becomes a no-op without needing a
        #: cancellable timer API on the Clock seam.
        self.generation = 0


#: Buffer key: cast kind, sender, ordered destination tuple.
_Key = Tuple[str, EndpointAddress, Tuple[EndpointAddress, ...]]


class Coalescer:
    """Batch outgoing payloads per (source, destinations) over a substrate.

    Wraps any object with the network contract (``attach`` / ``detach``
    / ``unicast`` / ``multicast`` / ``mtu``).  Send-side methods buffer;
    the receive side unwraps batch frames back into individual
    :class:`~repro.net.packet.Packet` deliveries.  Every other
    attribute (fault plane, stats, peers, ...) is delegated to the
    wrapped substrate, so a world can expose the coalescer as its
    ``network`` without the layers noticing.
    """

    def __init__(
        self,
        inner,
        clock,
        max_delay: float = 0.0005,
        max_batch: int = 16,
    ) -> None:
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        self.inner = inner
        self.clock = clock
        self.max_delay = max_delay
        self.max_batch = min(int(max_batch), _MAX_COUNT)
        self._buffers: Dict[_Key, _Buffer] = {}
        #: Counters, mirrored nowhere else: the inner substrate's stats
        #: keep counting *datagrams*, these count the seam's work.
        self.batches_sent = 0
        self.messages_batched = 0
        self.batches_rejected = 0

    # -- send path ----------------------------------------------------------

    def unicast(
        self,
        source: EndpointAddress,
        dest: EndpointAddress,
        payload: bytes,
    ) -> None:
        self._enqueue(("u", source, (dest,)), source, payload)

    def multicast(
        self,
        source: EndpointAddress,
        dests: Iterable[EndpointAddress],
        payload: bytes,
    ) -> None:
        self._enqueue(("m", source, tuple(dests)), source, payload)

    def _enqueue(self, key: _Key, source: EndpointAddress, payload: bytes) -> None:
        overhead = _PREAMBLE.size + _SUBLEN.size
        if len(payload) + overhead > self.inner.mtu or len(payload) > 0xFFFF:
            # Cannot share a datagram: flush what is pending (FIFO per
            # destination set) and hand the payload straight down, where
            # the substrate's own MTU check applies unchanged.
            self.flush(key)
            self._send_raw(key, payload)
            return
        entry = self._buffers.get(key)
        if entry is None:
            entry = self._buffers[key] = _Buffer()
        if entry.count and len(entry.buf) + _SUBLEN.size + len(payload) > self.inner.mtu:
            self.flush(key)
        if entry.count == 0:
            entry.buf += _PREAMBLE.pack(_MAGIC, _MODE_BATCH, 0)
            if self.max_delay > 0:
                self.clock.call_after(
                    self.max_delay, self._timer_flush, key, entry.generation
                )
        entry.buf += _SUBLEN.pack(len(payload))
        entry.buf += payload
        entry.count += 1
        if entry.count >= self.max_batch or self.max_delay == 0:
            self.flush(key)

    def _timer_flush(self, key: _Key, generation: int) -> None:
        entry = self._buffers.get(key)
        if entry is None or entry.generation != generation or entry.count == 0:
            return
        try:
            self.flush(key)
        except (NetworkError, AddressError, PacketTooLargeError):
            # The sender crashed or detached while the batch sat in the
            # buffer; a real NIC would drop the queue the same way.
            entry.buf.clear()
            entry.count = 0
            entry.generation += 1

    def flush(self, key: _Key) -> None:
        """Send ``key``'s pending batch now (no-op when empty)."""
        entry = self._buffers.get(key)
        if entry is None or entry.count == 0:
            return
        if entry.count == 1:
            # Unwrap the singleton: skip preamble and length prefix so a
            # lone message costs exactly what it would uncoalesced.
            start = _PREAMBLE.size + _SUBLEN.size
            payload = bytes(entry.buf[start:])
        else:
            entry.buf[3] = entry.count
            payload = bytes(entry.buf)
            self.batches_sent += 1
            self.messages_batched += entry.count
        entry.buf.clear()
        entry.count = 0
        entry.generation += 1
        self._send_raw(key, payload)

    def flush_all(self) -> None:
        """Flush every pending batch (teardown / end-of-run hook)."""
        for key in list(self._buffers):
            self.flush(key)

    def _send_raw(self, key: _Key, payload: bytes) -> None:
        kind, source, dests = key
        if kind == "u":
            self.inner.unicast(source, dests[0], payload)
        else:
            self.inner.multicast(source, dests, payload)

    # -- receive path -------------------------------------------------------

    def attach(self, address: EndpointAddress, deliver: DeliveryCallback) -> None:
        """Register ``address``, unwrapping batch frames on delivery."""

        def unwrap(packet: Packet) -> None:
            try:
                subs = decode_batch(packet.payload)
            except ValueError:
                # Structurally corrupt batch: reject whole — the NAK
                # layer sees one clean gap per lost sub-message.
                self.batches_rejected += 1
                return
            if subs is None:
                deliver(packet)
                return
            if packet.garbled:
                # A bit flip anywhere in a batch could have landed in a
                # length prefix, silently shifting every later boundary.
                # Rejecting the whole datagram keeps corruption handling
                # identical to the single-message path: drop, gap, NAK.
                self.batches_rejected += 1
                return
            for sub in subs:
                deliver(
                    Packet(
                        source=packet.source,
                        dest=packet.dest,
                        payload=sub,
                        sent_at=packet.sent_at,
                        garbled=packet.garbled,
                    )
                )

        self.inner.attach(address, unwrap)

    # -- everything else is the substrate's ---------------------------------

    def __getattr__(self, name: str):
        # detach/attached/addresses, the fault plane, stats, mtu, peers,
        # bind_sync, close, ... — all delegated unchanged.
        return getattr(self.inner, name)

    def __repr__(self) -> str:
        pending = sum(b.count for b in self._buffers.values())
        return (
            f"<Coalescer over {self.inner!r} pending={pending} "
            f"max_batch={self.max_batch} max_delay={self.max_delay}>"
        )
