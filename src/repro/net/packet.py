"""Wire packets.

A :class:`Packet` is what actually crosses the simulated network: a flat
byte payload plus source and destination endpoint addresses.  Everything
richer (group addresses, sequence numbers, view identifiers) lives in
the payload as layer headers — the network is deliberately dumb, so that
all protocol intelligence sits in the composable layers above it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.address import EndpointAddress


@dataclass
class Packet:
    """One datagram in flight.

    Attributes:
        source: transmitting endpoint.
        dest: receiving endpoint.
        payload: opaque bytes (marshalled message with all headers).
        sent_at: virtual time at which the packet entered the network;
            filled in by the network for latency accounting.
        garbled: set by the fault model when the payload was corrupted
            in flight (the checksum layer is what should catch this).
    """

    source: EndpointAddress
    dest: EndpointAddress
    payload: bytes
    sent_at: Optional[float] = field(default=None, compare=False)
    garbled: bool = field(default=False, compare=False)

    @property
    def size(self) -> int:
        """Payload size in bytes (what MTU limits apply to)."""
        return len(self.payload)

    def __repr__(self) -> str:
        flags = " garbled" if self.garbled else ""
        return f"<Packet {self.source}->{self.dest} {self.size}B{flags}>"
