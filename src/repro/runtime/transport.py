"""Real OS-UDP transport for Horus stacks.

Satisfies the same contract as the simulated
:class:`~repro.net.network.Network` — ``attach``/``detach`` endpoint
callbacks, ``unicast``/``multicast`` of flat byte payloads, a ``stats``
object, an ``mtu`` — but moves packets over actual UDP sockets via
asyncio's ``DatagramProtocol``.  Because the contract is identical, the
COM layer (and therefore every layer above it) runs unchanged; only the
wiring in :class:`~repro.runtime.world.RealtimeWorld` differs.

Topology model: one transport per OS process, one UDP socket per *node*
bound on it (usually exactly one; tests bind two in one process to get
real loopback traffic without forking).  Remote nodes are named peers
with ``(host, port)`` addresses — the realtime analogue of the DES
world knowing every node by name.  Multicast is unicast fan-out, the
same software multicast the base simulated network implements, so the
flush/NAK machinery sees the identical failure mode: each destination
experiences independent loss and delay.

Wire format (network byte order)::

    magic   4s   b"HRS2"
    sent    d    sender's CLOCK_MONOTONIC timestamp (latency accounting;
                 comparable across processes on one machine)
    srclen  H    length of marshalled source EndpointAddress
    dstlen  H    length of marshalled destination EndpointAddress
    flags   B    bit 0: payload was garbled by injected faults
    src     srclen bytes
    dst     dstlen bytes
    payload rest (the marshalled message with all layer headers)

The flags byte carries fault-injection metadata the simulated network
keeps on its :class:`~repro.net.packet.Packet`: a *deliberately*
garbled payload is marked so the receiver can route it through the
eager (validating) unmarshal path, mirroring the DES exactly.  Real
wire corruption is caught by the UDP checksum and surfaces as loss,
which is consistent with the model.

The ``mtu`` bounds the *payload*, exactly as in the simulation, so a
FRAG/NFRAG layer tuned for the simulated substrate fragments identically
over the real one.
"""

from __future__ import annotations

import asyncio
import random
import struct
import time
import warnings
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import AddressError, NetworkError, PacketTooLargeError
from repro.net.address import EndpointAddress
from repro.net.faults import FaultModel
from repro.net.packet import Packet
from repro.net.partition import PartitionController
from repro.runtime.engine import RealtimeEngine
from repro.runtime.metrics import TransportStats
from repro.sim.rand import derive_seed

DeliveryCallback = Callable[[Packet], None]

_MAGIC = b"HRS2"
_HEADER = struct.Struct("!4sdHHB")

#: Frame flag bits.
FLAG_GARBLED = 0x01

#: Payload bound leaving room for frame + IP/UDP headers inside a
#: standard 1500-byte ethernet MTU.
DEFAULT_MTU = 1400


def encode_frame(
    source: EndpointAddress,
    dest: EndpointAddress,
    payload: bytes,
    sent_at: float,
    flags: int = 0,
) -> bytes:
    """Serialize one datagram frame."""
    src = source.marshal()
    dst = dest.marshal()
    return (
        _HEADER.pack(_MAGIC, sent_at, len(src), len(dst), flags)
        + src + dst + payload
    )


def decode_frame(
    data: bytes,
) -> Tuple[EndpointAddress, EndpointAddress, float, bytes, int]:
    """Parse one datagram frame; raises :class:`NetworkError` if malformed."""
    if len(data) < _HEADER.size:
        raise NetworkError("datagram shorter than frame header")
    magic, sent_at, src_len, dst_len, flags = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise NetworkError(f"bad frame magic {magic!r}")
    offset = _HEADER.size
    if len(data) < offset + src_len + dst_len:
        raise NetworkError("truncated frame addresses")
    source = EndpointAddress.unmarshal(data[offset : offset + src_len])
    offset += src_len
    dest = EndpointAddress.unmarshal(data[offset : offset + dst_len])
    offset += dst_len
    return source, dest, sent_at, data[offset:], flags


class _NodeProtocol(asyncio.DatagramProtocol):
    """Receives datagrams for one bound node socket."""

    def __init__(self, owner: "UdpTransport") -> None:
        self._owner = owner

    def datagram_received(self, data: bytes, addr) -> None:
        self._owner._on_datagram(data)

    def error_received(self, exc: Exception) -> None:
        # ICMP port-unreachable etc.: best-effort substrate, ignore —
        # reliability layers above recover exactly as they do from loss.
        pass


class UdpTransport:
    """Best-effort datagram transport over real OS UDP sockets.

    Drop-in for the ``network`` slot of a world: endpoints
    :meth:`attach` with a callback, the COM layer calls :meth:`unicast`
    / :meth:`multicast`, counters land in :attr:`stats`.
    """

    def __init__(
        self,
        engine: RealtimeEngine,
        mtu: int = DEFAULT_MTU,
        name: str = "udp-os",
        metrics=None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.engine = engine
        self.mtu = mtu
        self.name = name
        self.stats = TransportStats(metrics, component=name)
        #: node name -> (host, port) for every known node, local or remote.
        self.peers: Dict[str, Tuple[str, int]] = {}
        #: Emulated reachability oracle (the FaultPlane partition op).
        #: Checked on both the send and the receive path, so in a
        #: multi-process deployment installing the same partition on
        #: every transport cuts the link in both directions.
        self.partitions = PartitionController()
        #: Optional software fault injection applied before the socket
        #: write.  ``None`` (the default) keeps the hot path untouched:
        #: no rng draw, no extra allocation, straight to ``sendto``.
        self.fault_model: Optional[FaultModel] = None
        self.rng = rng or random.Random(derive_seed(0, f"transport.{name}"))
        self._socks: Dict[str, asyncio.DatagramTransport] = {}
        self._endpoints: Dict[EndpointAddress, DeliveryCallback] = {}
        self._dead_nodes: Set[str] = set()
        self._closed = False

    # ------------------------------------------------------------------
    # Socket lifecycle
    # ------------------------------------------------------------------

    async def bind(
        self, node: str, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Open the UDP socket for local ``node``; returns the bound address.

        ``port=0`` lets the OS pick a free port (tests); fixed ports are
        what real deployments advertise to their peers.
        """
        if node in self._socks:
            raise AddressError(f"node {node!r} already bound on {self.name}")
        transport, _ = await self.engine.loop.create_datagram_endpoint(
            lambda: _NodeProtocol(self), local_addr=(host, port)
        )
        sockaddr = transport.get_extra_info("sockname")
        bound = (sockaddr[0], sockaddr[1])
        self._socks[node] = transport
        self.peers[node] = bound
        return bound

    def bind_sync(
        self, node: str, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Blocking :meth:`bind` for synchronous setup code."""
        return self.engine.sync(self.bind(node, host, port))

    def add_peer(self, node: str, host: str, port: int) -> None:
        """Teach the transport where remote ``node`` listens."""
        self.peers[node] = (host, port)

    def close(self) -> None:
        """Close every bound socket.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for transport in self._socks.values():
            transport.close()
        self._socks.clear()

    # ------------------------------------------------------------------
    # Attachment and node lifecycle (Network contract)
    # ------------------------------------------------------------------

    def attach(self, address: EndpointAddress, deliver: DeliveryCallback) -> None:
        """Register ``address``; incoming packets invoke ``deliver``."""
        if address in self._endpoints:
            raise AddressError(f"address {address} already attached to {self.name}")
        self._endpoints[address] = deliver

    def detach(self, address: EndpointAddress) -> None:
        """Unregister ``address``.  Unknown addresses raise."""
        if address not in self._endpoints:
            raise AddressError(f"address {address} not attached to {self.name}")
        del self._endpoints[address]

    def attached(self, address: EndpointAddress) -> bool:
        """Whether ``address`` is currently registered."""
        return address in self._endpoints

    def addresses(self) -> Iterable[EndpointAddress]:
        """Snapshot of currently attached addresses."""
        return list(self._endpoints)

    # The transport implements the :class:`repro.chaos.FaultPlane`
    # protocol with the same node naming as the simulated network, so a
    # chaos scenario drives either substrate through identical calls.

    def crash(self, node: str) -> None:
        """Fail-stop ``node`` locally: it stops sending and receiving."""
        self._dead_nodes.add(node)

    def recover(self, node: str) -> None:
        """Bring a crashed node back.

        The socket was never closed, so packets flow again immediately —
        but any group state died with the crash, and the node's
        endpoints must re-join (MBRSHIP join/merge), never resume.
        """
        self._dead_nodes.discard(node)

    def node_alive(self, node: str) -> bool:
        """Whether ``node`` is currently up (locally, as far as we know)."""
        return node not in self._dead_nodes

    def partition(self, *components: Iterable[str]) -> None:
        """Emulate a partition: cut packet flow between components.

        Real UDP keeps flowing underneath; the transport drops frames
        that would cross a component boundary, on send and on receive.
        """
        self.partitions.partition(components)

    def heal(self) -> None:
        """Remove the emulated partition."""
        self.partitions.heal()

    def set_faults(self, model: Optional[FaultModel]) -> None:
        """Install software fault injection; ``None`` restores passthrough.

        With a model installed every send runs through
        :meth:`FaultModel.plan_deliveries` — loss, duplication,
        garbling, and extra delay are applied *before* the socket write,
        on top of whatever the real path already does.
        """
        self.fault_model = model

    def crash_node(self, node: str) -> None:
        """Deprecated alias of :meth:`crash` (pre-FaultPlane name)."""
        warnings.warn(
            "UdpTransport.crash_node is deprecated; use UdpTransport.crash "
            "(the repro.chaos.FaultPlane API)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.crash(node)

    def revive_node(self, node: str) -> None:
        """Deprecated alias of :meth:`recover` (pre-FaultPlane name)."""
        warnings.warn(
            "UdpTransport.revive_node is deprecated; use UdpTransport.recover "
            "(the repro.chaos.FaultPlane API)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.recover(node)

    # ------------------------------------------------------------------
    # Transmission (Network contract)
    # ------------------------------------------------------------------

    def unicast(
        self,
        source: EndpointAddress,
        dest: EndpointAddress,
        payload: bytes,
    ) -> None:
        """Send ``payload`` from ``source`` to ``dest``, best effort."""
        if len(payload) > self.mtu:
            raise PacketTooLargeError(len(payload), self.mtu)
        sock = self._socks.get(source.node)
        if sock is None:
            raise AddressError(f"node {source.node!r} has no socket on {self.name}")
        if not self.node_alive(source.node):
            raise NetworkError(f"node {source.node} has crashed and cannot send")
        self.stats.note_send(source.node, len(payload))
        if not self.partitions.reachable(source.node, dest.node):
            self.stats.packets_partitioned += 1
            return
        target = self.peers.get(dest.node)
        if target is None:
            self.stats.packets_unroutable += 1
            return
        if self.fault_model is None:
            frame = encode_frame(source, dest, payload, time.monotonic())
            sock.sendto(frame, target)
            return
        deliveries = self.fault_model.plan_deliveries(self.rng, payload)
        if not deliveries:
            self.stats.packets_lost += 1
            return
        if len(deliveries) > 1:
            self.stats.packets_duplicated += 1
        for delay, data, garbled in deliveries:
            flags = FLAG_GARBLED if garbled else 0
            if garbled:
                # Counted at the injection point; the frame also carries
                # the flag so the receiver can validate eagerly, exactly
                # like the DES network's Packet.garbled.
                self.stats.packets_garbled += 1
            if delay > 0:
                self.engine.call_after(
                    delay, self._emit_frame, source, dest, data, target, flags
                )
            else:
                self._emit_frame(source, dest, data, target, flags)

    def _emit_frame(
        self,
        source: EndpointAddress,
        dest: EndpointAddress,
        payload: bytes,
        target: Tuple[str, int],
        flags: int = 0,
    ) -> None:
        """Late socket write for fault-injected (possibly delayed) frames."""
        if self._closed:
            return
        sock = self._socks.get(source.node)
        if sock is None or sock.is_closing() or not self.node_alive(source.node):
            return
        sock.sendto(
            encode_frame(source, dest, payload, time.monotonic(), flags), target
        )

    def multicast(
        self,
        source: EndpointAddress,
        dests: Iterable[EndpointAddress],
        payload: bytes,
    ) -> None:
        """Unicast fan-out, the same software multicast the DES network
        performs: each destination sees independent loss and delay."""
        for dest in dests:
            if dest == source:
                continue
            self.unicast(source, dest, payload)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def _on_datagram(self, data: bytes) -> None:
        """Socket receive path: decode the frame, demux to the endpoint."""
        try:
            source, dest, sent_at, payload, flags = decode_frame(data)
        except NetworkError:
            self.stats.packets_undecodable += 1
            return
        if not self.node_alive(dest.node):
            self.stats.packets_to_dead += 1
            return
        if not self.partitions.reachable(source.node, dest.node):
            self.stats.packets_partitioned += 1
            return
        callback = self._endpoints.get(dest)
        if callback is None:
            self.stats.packets_lost += 1
            return
        latency = time.monotonic() - sent_at
        self.stats.note_delivery(len(payload), latency)
        callback(
            Packet(
                source=source,
                dest=dest,
                payload=payload,
                sent_at=sent_at,
                garbled=bool(flags & FLAG_GARBLED),
            )
        )

    def __repr__(self) -> str:
        return (
            f"<UdpTransport {self.name!r} nodes={sorted(self._socks)} "
            f"endpoints={len(self._endpoints)} mtu={self.mtu}>"
        )
