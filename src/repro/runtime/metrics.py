"""Transport metrics for the realtime substrate.

The simulated :class:`~repro.net.network.NetworkStats` counters are what
benchmarks and tests read; the realtime transport keeps the same counter
names so the two substrates are directly comparable, and adds what only
a real network has: a wall-clock one-way latency distribution.

The histogram stores raw samples in a bounded reservoir, so quantile
queries are exact until the bound and statistically faithful after it —
good enough for p50/p99 over loopback benchmarks without pulling in any
dependency.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.net.network import NetworkStats, _counter_view
from repro.obs import MetricsRegistry, TIME_BUCKETS


class LatencyHistogram:
    """Reservoir-sampled latency distribution with exact min/max/mean.

    ``observe`` is O(1); quantiles sort the reservoir on demand.
    Sampling uses its own seeded generator so recording latencies never
    perturbs any protocol randomness stream.
    """

    def __init__(self, reservoir_size: int = 4096, seed: int = 0) -> None:
        self.reservoir_size = reservoir_size
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self._samples: List[float] = []
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        """Record one latency sample (seconds)."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < self.reservoir_size:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.reservoir_size:
                self._samples[slot] = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of every observed sample."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0–100) of the sampled distribution."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if p <= 0:
            return ordered[0]
        if p >= 100:
            return ordered[-1]
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, float]:
        """min/mean/p50/p99/max snapshot (zeros when empty)."""
        if not self.count:
            return {"count": 0, "min": 0.0, "mean": 0.0, "p50": 0.0,
                    "p99": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "min": self.min,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.max,
        }

    def __repr__(self) -> str:
        s = self.summary()
        return (
            f"<LatencyHistogram n={s['count']} p50={s['p50'] * 1e3:.3f}ms "
            f"p99={s['p99'] * 1e3:.3f}ms>"
        )


class TransportStats(NetworkStats):
    """:class:`NetworkStats` plus realtime-only accounting.

    ``packets_lost`` keeps its simulated meaning's closest analogue:
    datagrams that arrived but had no attached endpoint to claim them.
    Real in-flight OS losses are invisible to the transport (reliability
    layers above recover them); the counters here are what the machine
    actually observed.

    Like the base class this is a registry view; the two transport-only
    counters appear as ``transport_*_total{component}``, and delivered
    latencies additionally feed a fixed-bucket
    ``transport_latency_seconds{component}`` histogram (the exportable
    complement of the exact-quantile reservoir kept in :attr:`latency`).
    """

    _counter_specs = dict(NetworkStats._counter_specs)
    _counter_specs.update({
        "packets_unroutable": (
            "transport_packets_unroutable_total",
            "Datagrams whose destination node had no configured peer",
        ),
        "packets_undecodable": (
            "transport_packets_undecodable_total",
            "Datagrams that failed frame decoding (wrong magic, truncated)",
        ),
    })

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        component: str = "udp-os",
    ) -> None:
        #: One-way wire latency of delivered datagrams (sender stamp →
        #: receipt), reservoir-sampled for exact loopback quantiles.
        self.latency = LatencyHistogram()
        self._latency_hist = None
        super().__init__(registry, component=component)

    def _bind(self, registry: MetricsRegistry) -> None:
        super()._bind(registry)
        self._latency_hist = registry.histogram(
            "transport_latency_seconds",
            "One-way wire latency of delivered datagrams",
            labels=("component",),
            buckets=TIME_BUCKETS,
        ).labels(component=self.component)

    def note_delivery(self, size: int, latency: float) -> None:
        """Account for one datagram handed to an attached endpoint."""
        self.packets_delivered += 1
        self.bytes_delivered += size
        if latency >= 0.0:
            self.latency.observe(latency)
            self._latency_hist.observe(latency)

    def as_dict(self) -> Dict[str, object]:
        data = super().as_dict()
        data["latency"] = self.latency.summary()
        return data


for _attr in ("packets_unroutable", "packets_undecodable"):
    setattr(
        TransportStats, _attr,
        _counter_view(_attr, TransportStats._counter_specs[_attr][1]),
    )
del _attr
