"""Real-time execution substrate.

Everything protocol layers assume about their environment is captured by
two seams: the :class:`~repro.runtime.clock.Clock` scheduling interface
and the network attach/unicast/multicast contract.  This package
provides the wall-clock side of both:

* :mod:`repro.runtime.clock` — the :class:`Clock` interface plus the
  substrate-neutral :class:`Timer` / :class:`PeriodicTimer` every layer
  uses (the DES :class:`~repro.sim.scheduler.Scheduler` implements the
  same interface).
* :mod:`repro.runtime.engine` — :class:`RealtimeEngine`, asyncio-backed
  wall-clock clock with the DES's deterministic same-deadline ordering.
* :mod:`repro.runtime.transport` — :class:`UdpTransport`, real OS UDP
  sockets behind the simulated network's contract.
* :mod:`repro.runtime.metrics` — transport counters mirroring
  :class:`~repro.net.network.NetworkStats` plus a latency histogram.
* :mod:`repro.runtime.world` — :class:`RealtimeWorld`, the drop-in
  sibling of the simulation :class:`~repro.core.process.World`.

Submodules are loaded lazily: the clock seam is imported by the
simulation kernel itself, so this package must be importable without
dragging in the network stack (which would be circular).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

_EXPORTS = {
    "Clock": "repro.runtime.clock",
    "EventHandle": "repro.runtime.clock",
    "PeriodicTimer": "repro.runtime.clock",
    "Timer": "repro.runtime.clock",
    "RealtimeEngine": "repro.runtime.engine",
    "LatencyHistogram": "repro.runtime.metrics",
    "TransportStats": "repro.runtime.metrics",
    "UdpTransport": "repro.runtime.transport",
    "DEFAULT_MTU": "repro.runtime.transport",
    "RealtimeWorld": "repro.runtime.world",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - import-time types for checkers only
    from repro.runtime.clock import Clock, EventHandle, PeriodicTimer, Timer
    from repro.runtime.engine import RealtimeEngine
    from repro.runtime.metrics import LatencyHistogram, TransportStats
    from repro.runtime.transport import DEFAULT_MTU, UdpTransport
    from repro.runtime.world import RealtimeWorld


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
