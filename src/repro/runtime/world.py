"""The realtime world: same object model, real substrate.

:class:`RealtimeWorld` presents the exact attribute surface of the
simulation :class:`~repro.core.process.World` — ``scheduler``,
``network``, ``rng``, ``trace``, ``directory``, ``registry``,
``wire_mode`` — so the unmodified :class:`~repro.core.process.Process`,
:class:`~repro.core.endpoint.Endpoint`, and every protocol layer run on
it as-is.  The differences are entirely underneath the seam:

* the ``scheduler`` slot holds a wall-clock
  :class:`~repro.runtime.engine.RealtimeEngine` instead of the DES;
* the ``network`` slot holds a :class:`~repro.runtime.transport.UdpTransport`
  moving packets over real OS UDP sockets.

Determinism contract: the DES is a pure function of its seed; the
realtime world is **not** (the OS schedules packets and timers).  What
survives is everything the protocol layers guarantee — total order,
virtual synchrony, gapless FIFO — because those are enforced by the
layers, not the substrate.  ``docs/architecture.md`` ("Execution
substrates") spells out the exact split.

One ``RealtimeWorld`` lives in each OS process.  Single-machine tests
may host several nodes (one UDP socket each) in one world; a real
deployment hosts one node per process and names the others with
:meth:`add_peer`::

    world = RealtimeWorld(seed=1)
    world.process("alice", listen=("127.0.0.1", 9701))
    world.add_peer("bob", "127.0.0.1", 9702)
    world.seed_group("chat", [EndpointAddress("alice", 0)])
    handle = world.process("alice").endpoint().join("chat", stack=...)
    world.run(1.0)        # drives timers and socket I/O for 1 s
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from repro.core.headers import DEFAULT_REGISTRY, HeaderRegistry, WIRE_MODES
from repro.core.process import Process
from repro.errors import ConfigurationError
from repro.membership.directory import GroupDirectory
from repro.net.address import EndpointAddress, GroupAddress
from repro.net.coalesce import Coalescer
from repro.obs import MetricsRegistry, ObsOptions, SpanRecorder, write_jsonl
from repro.runtime.engine import RealtimeEngine
from repro.runtime.metrics import TransportStats
from repro.runtime.transport import DEFAULT_MTU, UdpTransport
from repro.sim.rand import RandomRouter
from repro.sim.trace import TraceRecorder
from repro.store import FileStoreDomain


class RealtimeWorld:
    """One realtime universe: engine + OS-UDP transport + processes."""

    def __init__(
        self,
        seed: int = 0,
        wire_mode: str = "aligned",
        trace: bool = True,
        registry: Optional[HeaderRegistry] = None,
        mtu: int = DEFAULT_MTU,
        host: str = "127.0.0.1",
        obs: Optional[ObsOptions] = None,
        metrics: Optional[MetricsRegistry] = None,
        store: Optional[Any] = None,
        coalesce: Any = False,
    ) -> None:
        if wire_mode not in WIRE_MODES:
            raise ConfigurationError(f"unknown wire mode {wire_mode!r}")
        self.engine = RealtimeEngine()
        #: Name parity with the DES world — this is what Process wraps.
        self.scheduler = self.engine
        self.rng = RandomRouter(seed)
        self.trace = TraceRecorder(enabled=trace)
        self.directory = GroupDirectory()
        self.registry = registry or DEFAULT_REGISTRY
        self.wire_mode = wire_mode
        #: Same observability surface as the DES world: one shared
        #: registry, wall-clock-timestamped spans when enabled.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.obs = obs if obs is not None else ObsOptions()
        self.spans = SpanRecorder(
            enabled=self.obs.spans, max_spans=self.obs.max_spans
        )
        #: Durable-store domain: real per-endpoint files.  The default
        #: domain lives in an ephemeral temp directory removed by
        #: :meth:`close`; pass a :class:`~repro.store.FileStoreDomain`
        #: rooted somewhere durable to keep state across world restarts.
        self.store = store if store is not None else FileStoreDomain(
            metrics=self.metrics
        )
        self._owns_store = store is None
        bind_clock = getattr(self.store, "bind_clock", None)
        if bind_clock is not None:
            # Relaxed durability policies arm their max_delay flush
            # timers on the engine; its asyncio loop also marshals
            # writer-thread completion callbacks back onto this thread.
            bind_clock(self.engine)
        self.network = UdpTransport(self.engine, mtu=mtu, metrics=self.metrics)
        if coalesce:
            # Same COM-seam batching as the DES world, timed by the
            # wall-clock engine instead of the simulated scheduler.
            options = coalesce if isinstance(coalesce, dict) else {}
            self.network = Coalescer(self.network, self.engine, **options)
        self._host = host
        self._processes: Dict[str, Process] = {}

    # -- topology -----------------------------------------------------------

    def process(
        self,
        name: str,
        clock_drift: float = 0.0,
        clock_offset: float = 0.0,
        listen: Optional[Tuple[str, int]] = None,
    ) -> Process:
        """Create (or fetch) the local process called ``name``.

        Creation binds the node's UDP socket: at ``listen`` when given,
        else an OS-assigned port on the world's default host.  Fetching
        an existing process ignores every parameter.
        """
        proc = self._processes.get(name)
        if proc is None:
            host, port = listen if listen is not None else (self._host, 0)
            self.network.bind_sync(name, host, port)
            proc = Process(
                self, name, clock_drift=clock_drift, clock_offset=clock_offset
            )
            self._processes[name] = proc
        return proc

    def processes(self) -> Dict[str, Process]:
        """Snapshot of all local processes by name."""
        return dict(self._processes)

    def add_peer(self, node: str, host: str, port: int) -> None:
        """Name a remote node and where its transport listens."""
        self.network.add_peer(node, host, port)

    def seed_group(
        self, group: str, contacts: Iterable[EndpointAddress]
    ) -> None:
        """Pre-seed the local directory with a group's bootstrap contacts.

        The DES world's directory sees every registration because all
        members share one process; across OS processes each world must
        be told whom to contact.  Convention: every process seeds the
        same anchor (the group's oldest member), which reproduces the
        DES bootstrap order — the anchor finds no contacts and founds
        the group; everyone else joins through it.
        """
        group_addr = GroupAddress(group)
        for contact in contacts:
            self.directory.register(group_addr, contact)

    # -- fault plane (the repro.chaos.FaultPlane protocol) -----------------

    def crash(self, name: str) -> None:
        """Crash the named local process fail-stop.

        Volatile store buffers (relaxed-policy records whose tickets
        never completed) are discarded with the process, exactly as on
        the DES; durable bytes stay for a stateful recovery.
        """
        self.process(name)._fail_stop()
        discard = getattr(self.store, "discard_pending", None)
        if discard is not None:
            discard(name)
        self._note_fault_op("crash")

    def recover(self, name: str, stateful: bool = False) -> Process:
        """Recover a crashed local process; blank slate unless ``stateful``.

        Mirrors :meth:`repro.core.process.World.recover`: old endpoints
        are destroyed and detached; the process must re-join its groups
        through MBRSHIP join/merge (its UDP socket stayed bound, so the
        transport needs no rebinding).  ``stateful=False`` also wipes
        the node's durable stores; ``stateful=True`` keeps them (the
        disk survived the reboot) so clients replay their WALs and
        catch the delta over XFER.
        """
        proc = self.process(name)
        was_dead = not proc.alive
        if was_dead and not stateful:
            self.store.wipe(name)
        proc._restart()
        if was_dead:
            self._note_fault_op("recover")
        return proc

    def node_alive(self, name: str) -> bool:
        """Whether the named local process is currently up."""
        proc = self._processes.get(name)
        return proc is None or proc.alive

    def partition(self, *components: Iterable[str]) -> None:
        """Install an emulated partition on the local transport.

        In a multi-process deployment every world must install the same
        partition for the cut to be symmetric; single-process tests get
        both directions from this one call because the transport checks
        reachability on send and on receive.
        """
        self.network.partition(*components)
        self.trace.record(self.engine.now, "partition", "world",
                          components=[sorted(c) for c in components])
        self._note_fault_op("partition")

    def heal(self) -> None:
        """Remove the emulated partition on the local transport."""
        self.network.heal()
        self.trace.record(self.engine.now, "heal", "world")
        self._note_fault_op("heal")

    def set_faults(self, model) -> None:
        """Install software fault injection on the local transport."""
        self.network.set_faults(model)
        self.trace.record(self.engine.now, "set_faults", "world",
                          model=repr(model))
        self._note_fault_op("set_faults")

    def _note_fault_op(self, op: str) -> None:
        """Count one fault-plane operation into the world's registry."""
        self.metrics.counter(
            "chaos_ops_total",
            "Fault-plane operations applied to this world",
            labels=("op",),
        ).labels(op=op).inc()

    # -- running ------------------------------------------------------------

    def run(self, duration: float) -> None:
        """Drive timers and socket I/O for ``duration`` wall-clock seconds."""
        self.engine.run_for(duration)

    def run_while(
        self,
        predicate: Callable[[], bool],
        timeout: float = 5.0,
        poll: float = 0.01,
    ) -> bool:
        """Run until ``predicate()`` holds or ``timeout`` seconds pass.

        Same signature as the DES world's ``run_while``, so drivers work
        on either substrate unchanged.
        """
        return self.engine.run_until(predicate, timeout=timeout, poll=poll)

    @property
    def now(self) -> float:
        """Seconds of wall-clock time since this world was created."""
        return self.engine.now

    @property
    def stats(self) -> TransportStats:
        """The transport's counters and latency histogram."""
        return self.network.stats

    def write_metrics(self, path: str, meta: Optional[Dict[str, Any]] = None) -> None:
        """Write this world's observability snapshot as JSONL to ``path``."""
        merged = {"substrate": "realtime", "now": self.now}
        if meta:
            merged.update(meta)
        write_jsonl(path, self.metrics, self.spans, meta=merged)

    def close(self) -> None:
        """Close sockets and the event loop.  Idempotent."""
        for proc in self._processes.values():
            for endpoint in proc.endpoints:
                if not endpoint.destroyed:
                    endpoint.destroy()
        self.network.close()
        # Let the loop process socket teardown before closing it.
        try:
            self.engine.run_for(0)
        except RuntimeError:
            pass
        self.engine.close()
        if self._owns_store:
            self.store.close()

    def __enter__(self) -> "RealtimeWorld":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<RealtimeWorld t={self.now:.3f} processes={len(self._processes)} "
            f"nodes={sorted(self.network.peers)}>"
        )
