"""Wall-clock realtime engine over asyncio.

The second implementation of the :class:`~repro.runtime.clock.Clock`
interface: ``now`` reads the event loop's monotonic clock, and scheduled
callbacks fire at real deadlines via ``loop.call_at``.

Two properties carry over from the discrete-event scheduler so protocol
code behaves identically on both substrates:

* **Deterministic same-deadline ordering.**  The engine keeps its own
  ``(time, seq)`` heap and drains all due events through a single asyncio
  timer, so events scheduled for the same instant fire in scheduling
  order — asyncio's raw heap makes no such promise for ties.
* **No re-entrancy.**  ``call_soon`` work runs from the pump, never
  inside the scheduling call.

Unlike the DES, scheduling in the past is allowed (clamped to "as soon
as possible"): a wall clock cannot refuse late work, it can only run it
immediately.

The engine does not spin a thread; the loop runs only while the caller
is inside :meth:`run_for` / :meth:`run_until` (mirroring how the DES
only advances inside ``World.run``), which keeps the whole system
single-threaded and free of locks.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro.runtime.clock import Clock, EventHandle


class RealtimeEngine(Clock):
    """Real-time event loop satisfying the :class:`Clock` contract.

    Typical use::

        engine = RealtimeEngine()
        engine.call_after(0.05, hello)
        engine.run_for(0.1)       # drives the asyncio loop for 100 ms
    """

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self._loop = loop or asyncio.new_event_loop()
        self._epoch = self._loop.time()
        self._heap: List[EventHandle] = []
        self._seq = itertools.count()
        self._pump_handle: Optional[asyncio.TimerHandle] = None
        self._armed_for: Optional[tuple] = None
        self._running = False
        #: Total number of events executed; useful in benchmarks.
        self.events_executed = 0
        #: Callbacks that raised (reported to the loop's exception handler).
        self.callback_errors = 0

    # ------------------------------------------------------------------
    # The Clock surface
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Seconds of monotonic wall-clock time since engine creation."""
        return self._loop.time() - self._epoch

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at engine time ``when`` (past ⇒ ASAP)."""
        handle = EventHandle(max(when, self.now), next(self._seq), fn, args)
        heapq.heappush(self._heap, handle)
        self._rearm()
        return handle

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` wall-clock seconds."""
        return self.call_at(self.now + max(delay, 0.0), fn, *args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at the current instant, after queued peers."""
        return self.call_at(self.now, fn, *args)

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for h in self._heap if not h.cancelled)

    # ------------------------------------------------------------------
    # Driving the loop
    # ------------------------------------------------------------------

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The underlying asyncio loop (transports register against it)."""
        return self._loop

    def sync(self, coro: Any) -> Any:
        """Run a coroutine to completion on the engine's loop (setup aid)."""
        return self._loop.run_until_complete(coro)

    def run_for(self, duration: float) -> None:
        """Drive the loop for ``duration`` wall-clock seconds.

        Due timers, socket I/O, and continuations all execute inside this
        call.  Not re-entrant (don't call it from a scheduled callback).
        """
        if self._running:
            raise RuntimeError("engine is not re-entrant")
        self._running = True
        try:
            self._loop.run_until_complete(asyncio.sleep(max(duration, 0.0)))
        finally:
            self._running = False

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 5.0,
        poll: float = 0.01,
    ) -> bool:
        """Drive the loop until ``predicate()`` holds or ``timeout`` passes.

        Returns the predicate's final value.  ``poll`` bounds how stale
        the check may be; I/O and timers still run continuously.
        ``poll=0`` re-checks between event-loop iterations instead of
        sleeping: zero staleness and no sleep-quantum overshoot, at the
        price of a busy loop — closed-loop benchmarks use it so pacing
        gaps measure the stack, not the poll granularity.
        """
        deadline = self.now + timeout
        if poll <= 0:
            if predicate():
                return True
            if self._running:
                raise RuntimeError("engine is not re-entrant")
            future = self._loop.create_future()

            def check() -> None:
                if predicate() or self.now >= deadline:
                    future.set_result(None)
                else:
                    self._loop.call_soon(check)

            self._loop.call_soon(check)
            self._running = True
            try:
                self._loop.run_until_complete(future)
            finally:
                self._running = False
            return bool(predicate())
        while not predicate():
            remaining = deadline - self.now
            if remaining <= 0:
                return bool(predicate())
            self.run_for(min(poll, remaining))
        return True

    def close(self) -> None:
        """Close the underlying loop.  The engine is unusable afterwards."""
        if self._pump_handle is not None:
            self._pump_handle.cancel()
            self._pump_handle = None
        if not self._loop.is_closed():
            self._loop.run_until_complete(self._loop.shutdown_asyncgens())
            self._loop.close()

    # ------------------------------------------------------------------
    # The pump: one asyncio timer armed for the earliest deadline
    # ------------------------------------------------------------------

    def _peek(self) -> Optional[EventHandle]:
        while self._heap:
            if self._heap[0].cancelled:
                heapq.heappop(self._heap)
                continue
            return self._heap[0]
        return None

    def _rearm(self) -> None:
        head = self._peek()
        if head is None:
            if self._pump_handle is not None:
                self._pump_handle.cancel()
                self._pump_handle = None
                self._armed_for = None
            return
        key = (head.time, head.seq)
        if self._armed_for == key and self._pump_handle is not None:
            return
        if self._pump_handle is not None:
            self._pump_handle.cancel()
        self._pump_handle = self._loop.call_at(head.time + self._epoch, self._pump)
        self._armed_for = key

    def _pump(self) -> None:
        self._pump_handle = None
        self._armed_for = None
        while True:
            head = self._peek()
            if head is None or head.time > self.now:
                break
            heapq.heappop(self._heap)
            fn, args = head.fn, head.args
            head.fn, head.args = None, ()  # break reference cycles
            assert fn is not None
            try:
                fn(*args)
            except Exception as exc:  # keep draining; report like asyncio does
                self.callback_errors += 1
                self._loop.call_exception_handler(
                    {"message": "exception in realtime engine callback",
                     "exception": exc}
                )
            self.events_executed += 1
        self._rearm()

    def __repr__(self) -> str:
        return f"<RealtimeEngine now={self.now:.6f} pending={self.pending()}>"
