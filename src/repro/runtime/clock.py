"""The execution-substrate seam: clocks, event handles, and timers.

Every protocol layer in this package schedules work through exactly four
operations — ``now``, ``call_at``, ``call_after``, ``call_soon`` — and
cancels it through the handle those operations return.  :class:`Clock`
names that contract.  Two substrates implement it:

* :class:`repro.sim.scheduler.Scheduler` — deterministic virtual-time
  discrete-event simulation (the reproduction's original home).
* :class:`repro.runtime.engine.RealtimeEngine` — wall-clock time on an
  asyncio event loop, for serving real traffic over real sockets.

Because layers, timers, and the :class:`~repro.core.process.Process`
machinery only ever touch the :class:`Clock` surface, the same protocol
stack runs unmodified on either substrate — the hourglass waist of the
execution model, mirroring how the paper's HCPI is the waist of the
protocol model.

Contract notes shared by all implementations:

* Events scheduled for the same deadline fire in scheduling order
  (deterministic tie-breaking).  Protocols rely on this: a layer that
  does ``call_soon(a); call_soon(b)`` observes ``a`` before ``b``.
* ``call_soon`` runs *after* already-queued work at the current instant,
  never re-entrantly inside the scheduling call.
* Scheduling in the past is substrate-defined: the DES refuses (time
  cannot run backwards in a simulation), the realtime engine clamps to
  "as soon as possible" (wall clocks cannot refuse late work).

The :class:`Timer` and :class:`PeriodicTimer` shapes used by every
protocol layer live here too, written against :class:`Clock` alone so
they tick identically in simulation and in real time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Optional


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is *lazy*: the entry stays in the owner's heap but is
    skipped when popped.  This keeps :meth:`Clock.cancel` O(1).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True
        self.fn = None
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


class Clock(ABC):
    """What a layer may assume about time: read it, schedule against it.

    ``now`` is seconds since an implementation-defined epoch (simulation
    start for the DES, engine construction for the realtime engine); only
    differences of ``now`` values are meaningful across substrates.
    """

    @property
    @abstractmethod
    def now(self) -> float:
        """Current time in seconds on this clock."""

    @abstractmethod
    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute clock time ``when``."""

    @abstractmethod
    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` seconds."""

    @abstractmethod
    def call_soon(self, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at the current instant, after queued peers."""

    @staticmethod
    def cancel(handle: EventHandle) -> None:
        """Cancel a previously scheduled event (alias for ``handle.cancel()``)."""
        handle.cancel()


class Timer:
    """A restartable one-shot timer (a classic retransmission timer).

    ``start()`` arms the timer; arming an armed timer re-arms it (the
    previous deadline is cancelled).  The callback runs once per arming.
    """

    def __init__(
        self,
        scheduler: Clock,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
    ) -> None:
        self._scheduler = scheduler
        self.interval = interval
        self._callback = callback
        self._args = args
        self._handle: Optional[EventHandle] = None

    @property
    def armed(self) -> bool:
        """Whether the timer is currently counting down."""
        return self._handle is not None and not self._handle.cancelled

    def start(self, interval: Optional[float] = None) -> None:
        """Arm (or re-arm) the timer; ``interval`` overrides the default."""
        self.cancel()
        delay = self.interval if interval is None else interval
        self._handle = self._scheduler.call_after(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if armed.  Idempotent."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback(*self._args)


class PeriodicTimer:
    """Fires ``callback`` every ``period`` seconds until stopped.

    The first firing happens one full period after :meth:`start` unless
    ``immediate=True`` is passed, in which case it fires at once (useful
    for protocols that want an initial heartbeat straight away).
    """

    def __init__(
        self,
        scheduler: Clock,
        period: float,
        callback: Callable[..., Any],
        *args: Any,
    ) -> None:
        self._scheduler = scheduler
        self.period = period
        self._callback = callback
        self._args = args
        self._handle: Optional[EventHandle] = None
        self._running = False
        #: Number of times the timer has fired since construction.
        self.fired = 0

    @property
    def running(self) -> bool:
        """Whether the timer is currently ticking."""
        return self._running

    def start(self, immediate: bool = False) -> None:
        """Begin periodic firing.  Starting a running timer restarts it."""
        self.stop()
        self._running = True
        if immediate:
            self._handle = self._scheduler.call_soon(self._fire)
        else:
            self._handle = self._scheduler.call_after(self.period, self._fire)

    def stop(self) -> None:
        """Stop firing.  Idempotent."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        if not self._running:
            return
        self.fired += 1
        # Reschedule before running the callback so a callback that stops
        # the timer wins over the reschedule.
        self._handle = self._scheduler.call_after(self.period, self._fire)
        self._callback(*self._args)
