"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tables`` — regenerate the paper's Tables 1-4 from the live system.
* ``layers`` — list every registered protocol layer and its purpose.
* ``synthesize P9 P6 [--network atm]`` — build the minimal stack for a
  set of required properties and show the derivation (Section 6).
* ``demo`` — a 30-second tour: join, cast, crash, view change.
* ``obs-report snapshot.jsonl`` — render the per-layer latency/byte
  table (and optionally network counters) from a metrics snapshot
  written by ``World.write_metrics`` or a benchmark's ``--metrics-out``.
* ``chaos --seed 0 --scenarios 25 --substrate sim`` — run a seeded
  soak of generated failure scenarios through the verify checkers;
  failing scenarios are greedily shrunk to minimal repro timelines.
  ``--stateful`` runs durable replicated-dict clients with
  ``stateful=True`` recovery and the state-convergence check;
  ``--store-dir`` keeps the WALs on disk for inspection; ``--overload``
  widens the op palette with slow receivers, fan-in storms, and WAN
  squeezes against the CREDIT overload stack; ``--large-n`` generates
  thousand-node storm timelines and runs them through the gossip scale
  harness (SWIM agents, no stacks) instead of the verify checkers.
* ``gossip --nodes 1000 --seed 0`` — SWIM failure detection at fleet
  scale on the DES: steady state, a seeded crash storm, then measure
  view-convergence time, per-node message overhead, false positives,
  and consistent-hash shard convergence.  ``--scenario INDEX`` runs a
  generated large-n chaos timeline instead of the plain crash storm;
  ``--check`` makes the exit code the acceptance gate (converged, zero
  false positives).
* ``load --senders 4 --rate 200 --duration 5`` — open-loop load
  generation against a CREDIT stack with an SLO-style report: goodput,
  p50/p99 latency, shed/block verdicts, queue and NAK-buffer
  high-water marks.  Seeded and reproducible on the DES.
* ``store-inspect PATH`` — human-readable dump of a durable store
  (snapshot header + WAL records, with CRC verdicts); ``PATH`` is one
  store directory or any ancestor (all stores underneath are shown).
"""

from __future__ import annotations

import argparse
import sys
from typing import List


def _cmd_tables(_args) -> int:
    from repro.core.events import DowncallType, UpcallType
    from repro.properties import render_table3, render_table4

    print("Table 1 — HCPI downcalls")
    for downcall in DowncallType:
        print(f"  {downcall.value}")
    print("\nTable 2 — HCPI upcalls")
    for upcall in UpcallType:
        print(f"  {upcall.value}")
    print("\nTable 3 — Requires (R) / Inherits (I) / Provides (P)")
    print(render_table3())
    print("\nTable 4 — protocol properties")
    print(render_table4())
    return 0


def _cmd_layers(_args) -> int:
    from repro.core.stack import known_layers
    from repro.properties.registry import PROFILES

    for name in known_layers():
        profile = PROFILES.get(name)
        purpose = profile.purpose if profile else ""
        print(f"  {name:<10} {purpose}")
    return 0


def _cmd_synthesize(args) -> int:
    from repro.errors import SynthesisError
    from repro.properties import check_well_formed
    from repro.properties.props import parse_property
    from repro.properties.synthesis import synthesize_spec

    try:
        required = {parse_property(text) for text in args.properties}
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        spec = synthesize_spec(required, network=args.network)
    except SynthesisError as exc:
        print(f"no stack exists: {exc}", file=sys.stderr)
        return 1
    if not spec:
        print(f"the {args.network} network already provides all of that")
        return 0
    analysis = check_well_formed(spec, args.network)
    print(f"stack: {spec}")
    print(analysis.explain())
    return 0


def _cmd_demo(_args) -> int:
    from repro import World

    world = World(seed=7, network="lan")
    print("joining three members over MBRSHIP:FRAG:NAK:COM ...")
    handles = {}
    for name in ("alice", "bob", "carol"):
        handles[name] = world.process(name).endpoint().join(
            "demo", stack="MBRSHIP:FRAG:NAK:COM"
        )
        world.run(0.5)
    world.run(2.0)
    print(f"view: {handles['alice'].view}")
    handles["alice"].cast(b"hello from alice")
    world.run(1.0)
    for name, handle in handles.items():
        print(f"  {name} delivered: {[m.data.decode() for m in handle.delivery_log]}")
    print("crashing carol ...")
    world.crash("carol")
    world.run(6.0)
    print(f"view after flush: {handles['alice'].view}")
    return 0


def _cmd_obs_report(args) -> int:
    from repro.errors import ConfigurationError
    from repro.obs import read_jsonl, render_layer_report, render_network_report

    try:
        snapshot = read_jsonl(args.snapshot)
    except OSError as exc:
        print(f"error: cannot read {args.snapshot}: {exc}", file=sys.stderr)
        return 2
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    sections = []
    if not args.network_only:
        try:
            sections.append(render_layer_report(snapshot))
        except ConfigurationError as exc:
            if args.network:
                sections.append(f"(no layer table: {exc})")
            else:
                print(f"error: {exc}", file=sys.stderr)
                return 1
    if args.network or args.network_only:
        sections.append(render_network_report(snapshot))
    if not args.network_only:
        from repro.obs import render_flow_report, render_store_report

        try:
            sections.append(render_store_report(snapshot))
        except ConfigurationError:
            pass  # no store/xfer series in this snapshot
        try:
            sections.append(render_flow_report(snapshot))
        except ConfigurationError:
            pass  # no flow-control series in this snapshot
    try:
        print("\n\n".join(sections))
    except BrokenPipeError:
        # Piped into head/less and the reader left; not an error.
        return 0
    return 0


def _chaos_large_n(args) -> int:
    """The ``chaos --large-n`` path: storm timelines over SWIM fleets.

    Large-n scenarios describe crash storms and partitions for fleets
    of thousands — far past what full protocol stacks can simulate —
    so they run through the gossip scale harness, and the verdict is
    membership convergence rather than the verify checkers.
    """
    import hashlib

    from repro.chaos import generate_scenario
    from repro.gossip import GossipScaleConfig, run_scenario

    config = GossipScaleConfig(seed=args.seed)
    results = []
    failures = 0
    for index in range(args.scenarios):
        scenario = generate_scenario(
            args.seed, index, nodes=args.nodes, large_n=True
        )
        report = run_scenario(scenario, config)
        results.append(report)
        verdict = "ok" if report.converged else "FAIL"
        print(
            f"[{verdict}] {scenario.name} nodes={report.nodes} "
            f"ops={len(scenario.ops)} crashed={report.crashed} "
            f"convergence={report.convergence_time:.2f}s "
            f"fp={report.false_positives} digest={report.digest[:12]}"
        )
        if not report.converged:
            failures += 1
    soak_digest = hashlib.sha256(
        "".join(r.digest for r in results).encode()
    ).hexdigest()[:16]
    print(
        f"soak: {len(results)} scenarios, {failures} failed, "
        f"seed={args.seed} large-n digest={soak_digest}"
    )
    return 1 if failures else 0


def _cmd_chaos(args) -> int:
    import hashlib
    import json

    if args.large_n:
        return _chaos_large_n(args)

    from repro.chaos import (
        DEFAULT_CHAOS_STACK,
        DEFAULT_CHECKS,
        ScenarioRunner,
        generate_scenario,
        load_scenarios,
        shrink_scenario,
    )

    checks = tuple(DEFAULT_CHECKS) + (("total",) if args.check_total else ())
    runner = ScenarioRunner(
        substrate=args.substrate, seed=args.seed, checks=checks,
        store_dir=args.store_dir, durability=args.durability,
    )
    if args.scenario_file:
        scenarios = load_scenarios(args.scenario_file)
    else:
        scenarios = [
            generate_scenario(
                args.seed, index, nodes=args.nodes,
                stack=args.stack or DEFAULT_CHAOS_STACK,
                profile=args.substrate if args.substrate in ("sim", "realtime")
                else "sim",
                stateful=args.stateful,
                overload=args.overload,
            )
            for index in range(args.scenarios)
        ]
    if args.only is not None:
        scenarios = [scenarios[args.only]]

    results = []
    failures = []
    for scenario in scenarios:
        result = runner.run(scenario)
        results.append(result)
        verdict = "ok" if result.ok else "FAIL"
        print(
            f"[{verdict}] {scenario.name} sig={scenario.signature()} "
            f"ops={len(scenario.ops)} casts={result.casts_sent} "
            f"converged={result.converged} digest={result.digest[:12]}"
        )
        if not result.ok:
            failures.append(result)
            for violation in result.violations:
                print(f"  violation: {violation}")
            print("  " + result.repro_hint().replace("\n", "\n  "))
            if args.shrink:
                target = scenario

                def still_fails(candidate):
                    return not runner.run(candidate).ok

                try:
                    shrink = shrink_scenario(target, still_fails)
                except ValueError as exc:  # flaky only on realtime
                    print(f"  shrink aborted: {exc}")
                else:
                    print(f"  {shrink.summary()}; minimal repro:")
                    for line in shrink.minimal.describe().splitlines():
                        print(f"    {line}")

    soak_digest = hashlib.sha256(
        "".join(r.digest for r in results).encode()
    ).hexdigest()[:16]
    print(
        f"soak: {len(results)} scenarios, {len(failures)} failed, "
        f"seed={args.seed} substrate={args.substrate} digest={soak_digest}"
    )
    if args.report:
        payload = {
            "seed": args.seed,
            "substrate": args.substrate,
            "checks": list(checks),
            "soak_digest": soak_digest,
            "failed": len(failures),
            "scenarios": [r.summary() for r in results],
        }
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.report}")
    return 1 if failures else 0


def _cmd_gossip(args) -> int:
    import json

    from repro.gossip import GossipScaleConfig, run_scale, run_scenario
    from repro.gossip.swim import SwimConfig

    config = GossipScaleConfig(
        nodes=args.nodes,
        seed=args.seed,
        crash_frac=args.crash_frac,
        storm_at=args.storm_at,
        max_duration=args.max_duration,
        shards=args.shards,
        replication=args.replication,
        swim=SwimConfig(
            period=args.period, suspect_timeout=args.suspect_timeout
        ),
    )
    if args.scenario is not None:
        from repro.chaos import generate_scenario

        scenario = generate_scenario(
            args.seed, args.scenario, nodes=args.nodes, large_n=True
        )
        report = run_scenario(scenario, config)
    else:
        report = run_scale(config)
    rendered = report.render()
    print(rendered)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            if args.output.endswith(".json"):
                json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            else:
                fh.write(rendered + "\n")
        print(f"report written to {args.output}")
    if args.check and not (report.converged and report.false_positives == 0):
        print(
            "check failed: converged="
            f"{report.converged} false_positives={report.false_positives}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_load(args) -> int:
    import json

    from repro.errors import ConfigurationError
    from repro.flow import LoadConfig, run_load

    config = LoadConfig(
        senders=args.senders,
        rate=args.rate,
        size=args.size,
        duration=args.duration,
        seed=args.seed,
        substrate=args.substrate,
        stack=args.stack,
        window=args.window,
        manager=args.manager,
        max_queue=args.max_queue,
        shed_policy=args.shed_policy,
        consume_rate=args.consume_rate,
    )
    try:
        report = run_load(config, metrics_out=args.metrics_out)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rendered = report.render()
    print(rendered)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            if args.output.endswith(".json"):
                json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            else:
                fh.write(rendered + "\n")
        print(f"report written to {args.output}")
    return 0


def _cmd_store_inspect(args) -> int:
    import os

    from repro.store import render_path

    if not os.path.exists(args.path):
        print(f"error: no such path {args.path}", file=sys.stderr)
        return 2
    rendered = render_path(args.path)
    if not rendered.strip():
        print(f"no stores found under {args.path}", file=sys.stderr)
        return 1
    try:
        print(rendered)
    except BrokenPipeError:
        return 0
    return 0


def main(argv: List[str] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Horus protocol-composition reproduction (PODC 1995)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("tables", help="regenerate the paper's Tables 1-4")
    sub.add_parser("layers", help="list the protocol layer library")
    synth = sub.add_parser(
        "synthesize", help="minimal stack for required properties"
    )
    synth.add_argument("properties", nargs="+", metavar="P",
                       help="required properties, e.g. P9 P6")
    synth.add_argument("--network", default="atm",
                       choices=["atm", "udp", "lan", "plain"])
    sub.add_parser("demo", help="a 30-second simulated group tour")
    report = sub.add_parser(
        "obs-report", help="per-layer table from a metrics snapshot"
    )
    report.add_argument("snapshot", help="JSONL snapshot path")
    report.add_argument("--network", action="store_true",
                        help="also list network/transport counters")
    report.add_argument("--network-only", action="store_true",
                        help="only the network/transport counters")
    chaos = sub.add_parser(
        "chaos", help="seeded failure-scenario soak through repro.verify"
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="base seed; same seed reproduces the soak")
    chaos.add_argument("--scenarios", type=int, default=25,
                       help="how many scenarios to generate")
    chaos.add_argument("--substrate", default="sim",
                       choices=["sim", "realtime"])
    chaos.add_argument("--nodes", type=int, default=4,
                       help="group size per scenario")
    chaos.add_argument("--stack", default=None,
                       help="protocol stack under test (default: the "
                            "chaos stack; --stateful swaps in the "
                            "XFER:TOTAL stateful stack)")
    chaos.add_argument("--stateful", action="store_true",
                       help="durable replicated-dict clients, "
                            "stateful=True recovery, and the "
                            "state-convergence check")
    chaos.add_argument("--store-dir", default=None, metavar="DIR",
                       help="root for on-disk WALs (works on either "
                            "substrate; failing runs leave their "
                            "stores for `store-inspect`)")
    chaos.add_argument("--durability", default=None,
                       choices=["fsync_per_record", "group", "async"],
                       help="store durability mode for stateful "
                            "clients (default fsync_per_record; "
                            "group/async exercise the batched "
                            "group-commit pipeline)")
    chaos.add_argument("--check-total", action="store_true",
                       help="also demand total order (fails on stacks "
                            "without a TOTAL layer — useful for shrink "
                            "demos)")
    chaos.add_argument("--scenario-file", default=None,
                       help="run scenarios from a JSON file (a scenario, "
                            "a list, or a chaos report) instead of "
                            "generating them")
    chaos.add_argument("--only", type=int, default=None, metavar="INDEX",
                       help="run just one scenario of the soak")
    chaos.add_argument("--shrink", action="store_true",
                       help="greedily shrink failing scenarios to "
                            "minimal repro timelines")
    chaos.add_argument("--report", default=None, metavar="PATH",
                       help="write a JSON soak report (always written, "
                            "pass or fail)")
    chaos.add_argument("--overload", action="store_true",
                       help="widen the op palette with slow_receiver / "
                            "fanin_storm / wan_squeeze against the "
                            "CREDIT overload stack")
    chaos.add_argument("--large-n", action="store_true", dest="large_n",
                       help="generate thousand-node storm timelines "
                            "(crash storms, minority partitions, "
                            "recovery waves) and run them through the "
                            "gossip scale harness instead of the "
                            "verify checkers")
    gossip = sub.add_parser(
        "gossip", help="SWIM failure detection at fleet scale on the DES"
    )
    gossip.add_argument("--nodes", type=int, default=1000,
                        help="fleet size (SWIM agents, no stacks)")
    gossip.add_argument("--seed", type=int, default=0,
                        help="seed; pins digests, curves, and storms")
    gossip.add_argument("--crash-frac", type=float, default=0.01,
                        help="fraction of the fleet the storm kills")
    gossip.add_argument("--storm-at", type=float, default=5.0,
                        help="seconds of steady state before the storm")
    gossip.add_argument("--max-duration", type=float, default=120.0,
                        help="convergence deadline in simulated seconds")
    gossip.add_argument("--period", type=float, default=1.0,
                        help="SWIM protocol period in seconds")
    gossip.add_argument("--suspect-timeout", type=float, default=6.0,
                        help="suspicion-to-confirmation deadline")
    gossip.add_argument("--shards", type=int, default=64,
                        help="consistent-hash shard count to evaluate")
    gossip.add_argument("--replication", type=int, default=3,
                        help="owners per shard on the hash ring")
    gossip.add_argument("--scenario", type=int, default=None,
                        metavar="INDEX",
                        help="run generated large-n chaos timeline "
                             "INDEX instead of the plain crash storm")
    gossip.add_argument("--output", default=None, metavar="PATH",
                        help="also write the report to PATH (.json for "
                             "the structured form)")
    gossip.add_argument("--check", action="store_true",
                        help="exit nonzero unless the fleet converged "
                             "with zero false positives")
    load = sub.add_parser(
        "load", help="open-loop load generation with an SLO-style report"
    )
    load.add_argument("--senders", type=int, default=4,
                      help="producer nodes fanning into one receiver")
    load.add_argument("--rate", type=float, default=200.0,
                      help="per-sender offered arrival rate (msg/s)")
    load.add_argument("--size", type=int, default=256,
                      help="payload size in bytes")
    load.add_argument("--duration", type=float, default=5.0,
                      help="storm length in seconds")
    load.add_argument("--seed", type=int, default=0,
                      help="world seed; pins the whole report on the DES")
    load.add_argument("--substrate", default="sim",
                      choices=["sim", "realtime"])
    load.add_argument("--stack", default=None,
                      help="explicit stack spec (default: a CREDIT stack "
                           "built from --window/--manager/--max-queue/"
                           "--shed-policy)")
    load.add_argument("--window", type=int, default=16384,
                      help="CREDIT per-flow window in bytes")
    load.add_argument("--manager", default="fixed",
                      choices=["fixed", "aimd", "paced"],
                      help="CREDIT window-manager kind")
    load.add_argument("--max-queue", type=int, default=64,
                      help="CREDIT bounded send-queue capacity")
    load.add_argument("--shed-policy", default="block",
                      choices=["block", "drop_newest", "drop_oldest"])
    load.add_argument("--consume-rate", type=float, default=None,
                      metavar="BPS",
                      help="receiver consumption rate in bytes/s "
                           "(makes it the slow receiver; default: "
                           "keeps up)")
    load.add_argument("--output", default=None, metavar="PATH",
                      help="also write the report to PATH (.json for "
                           "the structured form)")
    load.add_argument("--metrics-out", default=None, metavar="PATH",
                      help="write the observability snapshot (flow_* "
                           "series included) for `obs-report`")
    inspect = sub.add_parser(
        "store-inspect",
        help="human-readable dump of durable-store WALs and snapshots",
    )
    inspect.add_argument("path", help="a store directory (holding "
                                      "wal.log/snapshot.bin) or any "
                                      "ancestor directory")
    args = parser.parse_args(argv)
    handlers = {
        "tables": _cmd_tables,
        "layers": _cmd_layers,
        "synthesize": _cmd_synthesize,
        "demo": _cmd_demo,
        "obs-report": _cmd_obs_report,
        "chaos": _cmd_chaos,
        "gossip": _cmd_gossip,
        "load": _cmd_load,
        "store-inspect": _cmd_store_inspect,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
