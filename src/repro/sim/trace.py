"""Structured trace recording.

The Horus paper's Section 8 argues for *executable specifications* that
run against real layer implementations.  Our analogue records every
interesting action (send, deliver, view install, flush round, token
passing) as a :class:`TraceRecord`; the checkers in :mod:`repro.verify`
then validate ordering and virtual-synchrony invariants over the trace,
playing the role of the paper's ML reference layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One observed action.

    Attributes:
        time: virtual time at which the action occurred.
        category: coarse kind, e.g. ``"deliver"``, ``"view"``, ``"flush"``.
        actor: the endpoint (or node) that performed the action.
        detail: free-form payload describing the action.
    """

    time: float
    category: str
    actor: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        items = ", ".join(f"{k}={v!r}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:.6f}] {self.actor} {self.category}({items})"


class TraceRecorder:
    """Collects :class:`TraceRecord` objects for later verification.

    Recording can be disabled wholesale (for benchmarks) or filtered by
    category.  Records are kept in arrival order, which — because the
    scheduler is deterministic — is also a legal linearization of the run.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        self._listeners: List[Callable[[TraceRecord], None]] = []

    def record(
        self,
        time: float,
        category: str,
        actor: str,
        **detail: Any,
    ) -> None:
        """Append one record (no-op when disabled)."""
        if not self.enabled:
            return
        rec = TraceRecord(time=time, category=category, actor=actor, detail=detail)
        self.records.append(rec)
        for listener in self._listeners:
            listener(rec)

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Invoke ``listener`` on every future record (live checking)."""
        self._listeners.append(listener)

    def by_category(self, category: str) -> List[TraceRecord]:
        """All records of one category, in trace order."""
        return [r for r in self.records if r.category == category]

    def by_actor(self, actor: str) -> List[TraceRecord]:
        """All records from one actor, in trace order."""
        return [r for r in self.records if r.actor == actor]

    def select(
        self,
        category: Optional[str] = None,
        actor: Optional[str] = None,
        **detail_filters: Any,
    ) -> Iterator[TraceRecord]:
        """Iterate records matching every given filter."""
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if actor is not None and rec.actor != actor:
                continue
            if any(rec.detail.get(k) != v for k, v in detail_filters.items()):
                continue
            yield rec

    def clear(self) -> None:
        """Drop all records (listeners stay subscribed)."""
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)
