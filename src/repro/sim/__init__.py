"""Discrete-event simulation kernel.

Horus ran on real networks of Sparc workstations; this reproduction runs
the same protocol layers over a deterministic discrete-event simulation.
The kernel follows the paper's own "event queue model" (Section 3): a
single logical scheduler drives all endpoints, and each layer entry point
is invoked as an event, never concurrently for the same group object.

Public surface:

* :class:`~repro.sim.scheduler.Scheduler` — virtual-time event loop
  (one of two implementations of :class:`~repro.runtime.clock.Clock`;
  the wall-clock one lives in :mod:`repro.runtime`).
* :class:`~repro.sim.timers.Timer` / :class:`~repro.sim.timers.PeriodicTimer`
  — cancellable timers built on the scheduler.
* :class:`~repro.sim.rand.RandomRouter` — named, independently seeded
  deterministic randomness streams.
* :class:`~repro.sim.trace.TraceRecorder` — structured event traces used
  by the executable specifications in :mod:`repro.verify`.
"""

from repro.runtime.clock import Clock
from repro.sim.concurrency import EventCounter, MonitorLock
from repro.sim.rand import RandomRouter
from repro.sim.scheduler import EventHandle, Scheduler
from repro.sim.timers import PeriodicTimer, Timer
from repro.sim.trace import TraceRecord, TraceRecorder

__all__ = [
    "Clock",
    "EventCounter",
    "EventHandle",
    "MonitorLock",
    "PeriodicTimer",
    "RandomRouter",
    "Scheduler",
    "Timer",
    "TraceRecord",
    "TraceRecorder",
]
