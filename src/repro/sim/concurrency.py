"""Section 3's concurrency-control primitives, in event-model form.

"Locking is also a source of bugs in layers developed by inexperienced
thread users.  This has led us to offer two very simple alternatives to
standard critical sections.  The first of these treats a layer as a
monitor, allowing only one thread at a time to be active for each group
object.  The second is based on event counters, and provides a way to
order threads according to an integer sequencing value: each upcall is
assigned a sequence number, and threads are provided with mutual
exclusion zones that will be entered in sequence order."

Our execution substrate is a discrete-event scheduler rather than
preemptive threads, so "blocking" becomes "queue a continuation":

* :class:`MonitorLock` — serializes closures: while one runs (possibly
  across scheduled continuations between :meth:`enter` and
  :meth:`exit`), others queue.
* :class:`EventCounter` — a monotone counter with ordered waiting:
  ``await_value(n, fn)`` runs ``fn`` once the counter reaches ``n``,
  and continuations for the same threshold run in arrival order —
  Section 3's "mutual exclusion zones entered in sequence order".
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Deque, List, Tuple

from repro.errors import SimulationError


class MonitorLock:
    """A monitor: one occupant at a time, FIFO admission.

    Two usage styles:

    * one-shot: ``monitor.run(fn)`` — ``fn`` runs when the monitor is
      free and the monitor releases when it returns.
    * spanning: ``monitor.enter(fn)`` — ``fn`` runs when admitted and
      the occupant holds the monitor (across any events it schedules)
      until it calls :meth:`exit`.
    """

    def __init__(self, scheduler: Any) -> None:
        self._scheduler = scheduler
        self._occupied = False
        self._queue: Deque[Tuple[Callable[[], None], bool]] = deque()
        #: Total admissions, for tests/diagnostics.
        self.admissions = 0

    @property
    def occupied(self) -> bool:
        """Whether someone currently holds the monitor."""
        return self._occupied

    @property
    def waiting(self) -> int:
        """How many entrants are queued."""
        return len(self._queue)

    def run(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` inside the monitor; auto-release on return."""
        self._admit_or_queue(fn, auto_exit=True)

    def enter(self, fn: Callable[[], None]) -> None:
        """Admit ``fn``; the occupant must call :meth:`exit` itself."""
        self._admit_or_queue(fn, auto_exit=False)

    def exit(self) -> None:
        """Release the monitor (occupant only)."""
        if not self._occupied:
            raise SimulationError("exit() on a monitor nobody occupies")
        self._occupied = False
        self._admit_next()

    def _admit_or_queue(self, fn: Callable[[], None], auto_exit: bool) -> None:
        if self._occupied:
            self._queue.append((fn, auto_exit))
            return
        self._occupy(fn, auto_exit)

    def _occupy(self, fn: Callable[[], None], auto_exit: bool) -> None:
        self._occupied = True
        self.admissions += 1
        if auto_exit:
            try:
                fn()
            finally:
                self._occupied = False
                self._admit_next()
        else:
            fn()

    def _admit_next(self) -> None:
        if self._occupied or not self._queue:
            return
        fn, auto_exit = self._queue.popleft()
        # Admission happens as a fresh event, never re-entrantly inside
        # the releasing occupant's frame.
        self._scheduler.call_soon(self._occupy, fn, auto_exit)


class EventCounter:
    """A monotone counter with ordered continuation release.

    Waiters for value *n* run once :meth:`advance` has been called *n*
    times; waiters with the same threshold release in registration
    order, and lower thresholds always release before higher ones —
    the paper's sequence-ordered mutual exclusion zones.
    """

    def __init__(self, scheduler: Any) -> None:
        self._scheduler = scheduler
        self.value = 0
        self._tiebreak = itertools.count()
        self._waiters: List[Tuple[int, int, Callable[[], None]]] = []

    def advance(self, amount: int = 1) -> int:
        """Increment the counter, releasing any satisfied waiters."""
        if amount < 1:
            raise SimulationError(f"advance must be positive, got {amount}")
        self.value += amount
        self._release()
        return self.value

    def await_value(self, threshold: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` once the counter reaches ``threshold``.

        If it already has, ``fn`` is scheduled immediately (still as its
        own event, preserving release order with earlier waiters).
        """
        heapq.heappush(self._waiters, (threshold, next(self._tiebreak), fn))
        self._release()

    def next_ticket(self) -> int:
        """A sequencing helper: the value after one more advance.

        A producer can assign ``ticket = counter.next_ticket()`` to each
        upcall and consumers ``await_value(ticket, ...)`` to form the
        in-order zones the paper describes.
        """
        return self.value + 1

    @property
    def waiting(self) -> int:
        """How many continuations are still waiting."""
        return len(self._waiters)

    def _release(self) -> None:
        while self._waiters and self._waiters[0][0] <= self.value:
            _, _, fn = heapq.heappop(self._waiters)
            self._scheduler.call_soon(fn)
