"""Named deterministic randomness streams.

Every stochastic component of the simulation (packet loss, delay jitter,
reordering, failure injection) draws from its *own* ``random.Random``
instance, derived from a single root seed plus the component's name.
Adding a new random consumer therefore never perturbs the draws seen by
existing consumers — runs stay reproducible as the system grows, and a
failing fault schedule can be replayed exactly from its seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a root seed and a stream name.

    Uses SHA-256 rather than ``hash()`` so the derivation is stable
    across Python processes and versions (``PYTHONHASHSEED`` does not
    affect it).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomRouter:
    """Hands out independently seeded :class:`random.Random` streams.

    >>> router = RandomRouter(seed=42)
    >>> loss = router.stream("net.loss")
    >>> delay = router.stream("net.delay")
    >>> router.stream("net.loss") is loss   # streams are cached by name
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (cached) stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RandomRouter":
        """Create a child router whose streams are independent of ours."""
        return RandomRouter(derive_seed(self.seed, f"fork:{name}"))

    def __repr__(self) -> str:
        return f"<RandomRouter seed={self.seed} streams={len(self._streams)}>"
