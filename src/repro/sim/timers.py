"""Timers built on the discrete-event scheduler.

Protocol layers use timers for retransmission, heartbeats, token
circulation, and stability gossip.  Two shapes cover all of these:

* :class:`Timer` — a one-shot timer that can be restarted (a classic
  retransmission timer).
* :class:`PeriodicTimer` — fires at a fixed period until stopped (a
  heartbeat or gossip timer).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.scheduler import EventHandle, Scheduler


class Timer:
    """A restartable one-shot timer.

    ``start()`` arms the timer; arming an armed timer re-arms it (the
    previous deadline is cancelled).  The callback runs once per arming.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
    ) -> None:
        self._scheduler = scheduler
        self.interval = interval
        self._callback = callback
        self._args = args
        self._handle: Optional[EventHandle] = None

    @property
    def armed(self) -> bool:
        """Whether the timer is currently counting down."""
        return self._handle is not None and not self._handle.cancelled

    def start(self, interval: Optional[float] = None) -> None:
        """Arm (or re-arm) the timer; ``interval`` overrides the default."""
        self.cancel()
        delay = self.interval if interval is None else interval
        self._handle = self._scheduler.call_after(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if armed.  Idempotent."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback(*self._args)


class PeriodicTimer:
    """Fires ``callback`` every ``period`` seconds until stopped.

    The first firing happens one full period after :meth:`start` unless
    ``immediate=True`` is passed, in which case it fires at once (useful
    for protocols that want an initial heartbeat straight away).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        period: float,
        callback: Callable[..., Any],
        *args: Any,
    ) -> None:
        self._scheduler = scheduler
        self.period = period
        self._callback = callback
        self._args = args
        self._handle: Optional[EventHandle] = None
        self._running = False
        #: Number of times the timer has fired since construction.
        self.fired = 0

    @property
    def running(self) -> bool:
        """Whether the timer is currently ticking."""
        return self._running

    def start(self, immediate: bool = False) -> None:
        """Begin periodic firing.  Starting a running timer restarts it."""
        self.stop()
        self._running = True
        if immediate:
            self._handle = self._scheduler.call_soon(self._fire)
        else:
            self._handle = self._scheduler.call_after(self.period, self._fire)

    def stop(self) -> None:
        """Stop firing.  Idempotent."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        if not self._running:
            return
        self.fired += 1
        # Reschedule before running the callback so a callback that stops
        # the timer wins over the reschedule.
        self._handle = self._scheduler.call_after(self.period, self._fire)
        self._callback(*self._args)
