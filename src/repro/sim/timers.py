"""Timers built on the clock interface.

Protocol layers use timers for retransmission, heartbeats, token
circulation, and stability gossip.  Two shapes cover all of these:

* :class:`Timer` — a one-shot timer that can be restarted (a classic
  retransmission timer).
* :class:`PeriodicTimer` — fires at a fixed period until stopped (a
  heartbeat or gossip timer).

The implementations live in :mod:`repro.runtime.clock` because they are
written against the substrate-neutral :class:`~repro.runtime.clock.Clock`
interface: the same timer objects count virtual seconds on the
discrete-event :class:`~repro.sim.scheduler.Scheduler` and wall-clock
seconds on the :class:`~repro.runtime.engine.RealtimeEngine`.  This
module remains the historical import location.
"""

from __future__ import annotations

from repro.runtime.clock import EventHandle, PeriodicTimer, Timer

__all__ = ["EventHandle", "PeriodicTimer", "Timer"]
