"""Virtual-time discrete-event scheduler.

The scheduler is a priority queue of ``(time, sequence, callback)``
entries.  Ties on time are broken by insertion order, which makes every
simulation run fully deterministic for a given seed: two events scheduled
for the same instant always fire in the order they were scheduled.

This is the virtual-time substrate beneath every simulated network and
protocol stack in the package.  Layers never spin or block; they
schedule continuations, exactly as in the event-queue execution model
the Horus paper describes in Section 3.

The scheduler is one of two implementations of the
:class:`~repro.runtime.clock.Clock` interface (the other is the
wall-clock :class:`~repro.runtime.engine.RealtimeEngine`); protocol
code only ever sees the interface.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.runtime.clock import Clock, EventHandle

__all__ = ["EventHandle", "Scheduler"]


class Scheduler(Clock):
    """Deterministic virtual-time event loop.

    Typical use::

        sched = Scheduler()
        sched.call_after(0.5, hello)
        sched.run()           # runs until no events remain
        print(sched.now)      # 0.5
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[EventHandle] = []
        self._seq = itertools.count()
        self._running = False
        #: Total number of events executed; useful in benchmarks.
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at {when:.6f}, now is {self._now:.6f}"
            )
        handle = EventHandle(when, next(self._seq), fn, args)
        heapq.heappush(self._heap, handle)
        return handle

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, fn, *args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at the current instant, after queued peers."""
        return self.call_at(self._now, fn, *args)

    @staticmethod
    def cancel(handle: EventHandle) -> None:
        """Cancel a previously scheduled event (alias for ``handle.cancel()``)."""
        handle.cancel()

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for h in self._heap if not h.cancelled)

    def step(self) -> bool:
        """Execute the single next event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty.
        """
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = handle.time
            fn, args = handle.fn, handle.args
            handle.fn, handle.args = None, ()  # break reference cycles
            assert fn is not None
            fn(*args)
            self.events_executed += 1
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains, ``until`` passes, or
        ``max_events`` have executed.

        When ``until`` is given, virtual time is advanced to exactly
        ``until`` on return even if the queue drained earlier, so that
        periodic processes observe a consistent notion of elapsed time.

        Returns the number of events executed by this call.
        """
        if self._running:
            raise SimulationError("scheduler is not re-entrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    break
                nxt = self._peek()
                if nxt is None:
                    break
                if until is not None and nxt.time > until:
                    break
                if self.step():
                    executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return executed

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Run until no events remain, bounded by ``max_events``.

        Raises :class:`SimulationError` if the bound is hit, which almost
        always indicates a protocol livelock (e.g. two layers ping-ponging
        retransmissions forever).
        """
        executed = self.run(max_events=max_events)
        if self._heap and self._peek() is not None:
            if executed >= max_events:
                raise SimulationError(
                    f"simulation did not go idle within {max_events} events"
                )
        return executed

    def _peek(self) -> Optional[EventHandle]:
        """Return the next live event without popping it, or ``None``."""
        while self._heap:
            if self._heap[0].cancelled:
                heapq.heappop(self._heap)
                continue
            return self._heap[0]
        return None

    def __repr__(self) -> str:
        return f"<Scheduler now={self._now:.6f} pending={self.pending()}>"
