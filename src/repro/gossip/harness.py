"""The gossip scale harness: 1k–10k SWIM agents on the DES under chaos.

A fleet is n lightweight :class:`~repro.gossip.detector.SwimAgent`\\ s
attached directly to one simulated network — no protocol stacks, which
is what makes 10k simulated nodes tractable in one Python process.
Chaos arrives through the same :class:`~repro.chaos.FaultPlane` ops the
full-stack runner uses (crash storms, partitions, fault models); the
harness measures what the paper's flush protocol cannot deliver at this
scale and SWIM must:

* **view-convergence time** — how long after a storm until every
  surviving agent's membership digest is identical and exactly matches
  ground truth (all crashed nodes confirmed dead, nobody else);
* **message overhead** — steady-state packets per node per second,
  which SWIM holds O(1) in fleet size;
* **false positives** — alive, reachable nodes confirmed dead (the
  acceptance bar is zero at the default suspect timeout);
* **shard convergence** — whether the consistent-hash assignment
  computed from surviving agents' views matches the one computed from
  ground truth, i.e. whether every surviving shard group would converge
  on the same owner set.

Everything is seeded: same (seed, scenario) ⇒ same digests, same
curves.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.gossip.detector import SwimAgent
from repro.gossip.shard import ShardDirectory
from repro.gossip.swim import SwimConfig
from repro.net.lan import LanNetwork
from repro.obs import MetricsRegistry
from repro.sim.rand import derive_seed
from repro.sim.scheduler import Scheduler

__all__ = ["GossipFleet", "GossipScaleConfig", "ScaleReport", "run_scale", "run_scenario"]


@dataclass(frozen=True)
class GossipScaleConfig:
    """One seeded scale run: fleet size, storm shape, shard geometry."""

    nodes: int = 1000
    seed: int = 0
    crash_frac: float = 0.01  # fraction of the fleet the storm kills
    storm_at: float = 5.0  # seconds of steady state before the storm
    max_duration: float = 120.0  # convergence deadline (simulated)
    poll: float = 0.25  # convergence-check cadence
    shards: int = 64
    replication: int = 3
    swim: SwimConfig = field(default_factory=SwimConfig)


@dataclass
class ScaleReport:
    """What one fleet run measured."""

    nodes: int
    seed: int
    crashed: int
    converged: bool
    convergence_time: float
    duration: float
    steady_msgs_per_node_per_sec: float
    total_msgs_per_node_per_sec: float
    false_positives: int
    suspects: int
    confirms: int
    refutes: int
    resurrections: int
    shards: int
    replication: int
    shards_converged: int
    shards_reassigned: int
    digest: str
    events: int
    ignored_ops: int = 0
    scenario: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        out = dict(self.__dict__)
        out["convergence_time"] = round(self.convergence_time, 3)
        out["duration"] = round(self.duration, 3)
        out["steady_msgs_per_node_per_sec"] = round(
            self.steady_msgs_per_node_per_sec, 3
        )
        out["total_msgs_per_node_per_sec"] = round(
            self.total_msgs_per_node_per_sec, 3
        )
        return out

    def render(self) -> str:
        lines = [
            f"gossip fleet: {self.nodes} nodes, seed {self.seed}"
            + (f", scenario {self.scenario}" if self.scenario else ""),
            f"  storm: {self.crashed} crashed"
            f"  converged={self.converged}"
            f"  convergence_time={self.convergence_time:.2f}s",
            f"  overhead: {self.steady_msgs_per_node_per_sec:.2f} msgs/node/s"
            f" steady, {self.total_msgs_per_node_per_sec:.2f} overall",
            f"  detection: suspects={self.suspects} confirms={self.confirms}"
            f" refutes={self.refutes} resurrections={self.resurrections}"
            f" false_positives={self.false_positives}",
            f"  shards: {self.shards_converged}/{self.shards} converged"
            f" ({self.shards_reassigned} reassigned, rf={self.replication})",
            f"  digest={self.digest[:16]} events={self.events}",
        ]
        return "\n".join(lines)


class GossipFleet:
    """n SWIM agents over one simulated LAN, plus ground truth."""

    def __init__(
        self, config: GossipScaleConfig, names: Optional[Sequence[str]] = None
    ) -> None:
        self.config = config
        self.scheduler = Scheduler()
        self.metrics = MetricsRegistry()
        self.network = LanNetwork(
            self.scheduler,
            rng=random.Random(derive_seed(config.seed, "gossip.net")),
            name="gossip",
            metrics=self.metrics,
            mtu=65536,
        )
        if names is None:
            names = tuple(f"n{i}" for i in range(config.nodes))
        self.names: Tuple[str, ...] = tuple(names)
        self.crashed: Set[str] = set()
        self.false_positives = 0
        self._partition_epoch_at = -1.0e9  # last partition/heal time
        self._recovered_at: Dict[str, float] = {}  # node -> last recovery
        addresses: Dict[str, Any] = {}
        self.agents: Dict[str, SwimAgent] = {}
        for name in self.names:
            agent = SwimAgent(
                name,
                self.network,
                self.scheduler,
                self.names,
                seed=config.seed,
                config=config.swim,
                addresses=addresses,
                on_confirm=self._confirm_watcher(name),
            )
            self.agents[name] = agent
        for agent in self.agents.values():
            agent.start()

    # -- ground-truth bookkeeping --------------------------------------

    def _confirm_watcher(self, agent_name: str):
        def on_confirm(node: str) -> None:
            # An *originated* confirm (a local suspect timer expiring)
            # of a node that is up and reachable is a false positive —
            # unless a partition changed recently enough that the
            # suspicion legitimately started across a cut.  Applications
            # of gossiped DEAD records are not counted: one stale
            # partition-era verdict would otherwise be billed once per
            # fleet member it reaches.
            if not self.agents[agent_name].core.confirm_originated:
                return
            # A crashed observer's pre-crash timers still fire; its
            # local bookkeeping is moot (recovery rebuilds the core).
            if agent_name in self.crashed:
                return
            if not self.network.node_alive(node):
                return
            if not self.network.partitions.reachable(agent_name, node):
                return
            grace = 2.0 * self.config.swim.suspect_timeout
            now = self.scheduler.now
            if now - self._partition_epoch_at < grace:
                return
            # Suspicion raised while the node was genuinely down may
            # confirm just after it recovers; that is staleness, not a
            # false accusation.
            if now - self._recovered_at.get(node, -1.0e9) < grace:
                return
            self.false_positives += 1

        return on_confirm

    def crash(self, node: str) -> None:
        if node in self.crashed:
            return
        self.network.crash(node)
        self.crashed.add(node)

    def recover(self, node: str) -> None:
        if node not in self.crashed:
            return
        self.network.recover(node)
        self.crashed.discard(node)
        self._recovered_at[node] = self.scheduler.now
        agent = self.agents[node]
        agent.recover(agent.core.incarnation + 1)

    def partition(self, components: Sequence[Sequence[str]]) -> None:
        self.network.partition(*components)
        self._partition_epoch_at = self.scheduler.now

    def heal(self) -> None:
        self.network.heal()
        self._partition_epoch_at = self.scheduler.now

    def set_faults(self, model: Any) -> None:
        self.network.set_faults(model)

    def alive_names(self) -> List[str]:
        return [n for n in self.names if n not in self.crashed]

    # -- convergence ----------------------------------------------------

    def converged(self) -> bool:
        """All survivors: dead set == ground truth, no suspicions, and
        identical membership digests."""
        expected_dead = len(self.crashed)
        survivors = []
        for name in self.names:
            if name in self.crashed:
                continue
            core = self.agents[name].core
            if core.suspect_count or core.dead_count != expected_dead:
                return False
            survivors.append(name)
        if not survivors:
            return False
        digest = self.agents[survivors[0]].core.digest()
        return all(
            self.agents[name].core.digest() == digest for name in survivors[1:]
        )

    def digest(self) -> str:
        """The fleet membership digest (first survivor's view)."""
        for name in self.names:
            if name not in self.crashed:
                return self.agents[name].core.digest()
        return ""

    def run_until_converged(self, deadline: float) -> bool:
        while self.scheduler.now < deadline:
            self.scheduler.run(
                until=min(self.scheduler.now + self.config.poll, deadline)
            )
            if self.converged():
                return True
        return self.converged()

    # -- shard evaluation ------------------------------------------------

    def shard_convergence(self) -> Tuple[int, int]:
        """(shards whose believed owner set matches ground truth,
        shards whose owner set changed since the full fleet)."""
        cfg = self.config
        truth = ShardDirectory.assignment_for(
            self.alive_names(), cfg.shards, cfg.replication
        )
        initial = ShardDirectory.assignment_for(
            list(self.names), cfg.shards, cfg.replication
        )
        reassigned = sum(
            1 for shard in truth if truth[shard] != initial[shard]
        )
        survivors = self.alive_names()
        if not survivors:
            return (0, reassigned)
        # Digest convergence means every survivor computes the same
        # assignment; sample a few seeded picks plus the first to verify
        # rather than recomputing the ring n times.
        rng = random.Random(derive_seed(cfg.seed, "gossip.shardcheck"))
        sample = {survivors[0]}
        while len(sample) < min(3, len(survivors)):
            sample.add(survivors[rng.randrange(len(survivors))])
        believed = [
            ShardDirectory.assignment_for(
                self.agents[name].core.alive_view(), cfg.shards, cfg.replication
            )
            for name in sorted(sample)
        ]
        converged = sum(
            1
            for shard in truth
            if all(b[shard] == truth[shard] for b in believed)
        )
        return (converged, reassigned)

    # -- aggregate stats --------------------------------------------------

    def aggregate(self) -> Dict[str, int]:
        totals = {
            "suspects": 0,
            "confirms": 0,
            "refutes": 0,
            "resurrections": 0,
            "pings": 0,
            "acks": 0,
            "ping_reqs": 0,
            "updates_sent": 0,
        }
        for agent in self.agents.values():
            stats = agent.core.stats
            for key in totals:
                totals[key] += stats[key]
        counters = {
            "gossip_pings_total": ("SWIM pings sent", totals["pings"]),
            "gossip_acks_total": ("SWIM acks sent", totals["acks"]),
            "gossip_ping_reqs_total": (
                "Indirect ping requests sent", totals["ping_reqs"]),
            "gossip_suspects_total": (
                "Suspicion transitions applied", totals["suspects"]),
            "gossip_confirms_total": (
                "Confirmed-dead transitions applied", totals["confirms"]),
            "gossip_refutes_total": (
                "Incarnation-bump refutations", totals["refutes"]),
            "gossip_resurrections_total": (
                "Dead records overridden by higher incarnations",
                totals["resurrections"]),
            "gossip_updates_piggybacked_total": (
                "Membership updates piggybacked on messages",
                totals["updates_sent"]),
            "gossip_false_positives_total": (
                "Alive, reachable nodes confirmed dead",
                self.false_positives),
        }
        for name, (help_text, value) in counters.items():
            self.metrics.counter(name, help_text).inc(value)
        self.metrics.gauge(
            "gossip_nodes", "Fleet size of the scale harness"
        ).set(len(self.names))
        self.metrics.gauge(
            "gossip_alive", "Ground-truth alive nodes"
        ).set(len(self.alive_names()))
        return totals


def _finish(
    fleet: GossipFleet,
    converged: bool,
    storm_at: float,
    converged_at: float,
    steady_packets: int,
    ignored_ops: int = 0,
    scenario: Optional[str] = None,
) -> ScaleReport:
    config = fleet.config
    totals = fleet.aggregate()
    elapsed = fleet.scheduler.now
    n = config.nodes
    steady_rate = steady_packets / n / storm_at if storm_at > 0 else 0.0
    total_rate = (
        fleet.network.stats.packets_sent / n / elapsed if elapsed > 0 else 0.0
    )
    shards_converged, shards_reassigned = fleet.shard_convergence()
    return ScaleReport(
        nodes=n,
        seed=config.seed,
        crashed=len(fleet.crashed),
        converged=converged,
        convergence_time=(converged_at - storm_at) if converged else -1.0,
        duration=elapsed,
        steady_msgs_per_node_per_sec=steady_rate,
        total_msgs_per_node_per_sec=total_rate,
        false_positives=fleet.false_positives,
        suspects=totals["suspects"],
        confirms=totals["confirms"],
        refutes=totals["refutes"],
        resurrections=totals["resurrections"],
        shards=config.shards,
        replication=config.replication,
        shards_converged=shards_converged,
        shards_reassigned=shards_reassigned,
        digest=fleet.digest(),
        events=fleet.scheduler.events_executed,
        ignored_ops=ignored_ops,
        scenario=scenario,
    )


def run_scale(config: GossipScaleConfig) -> ScaleReport:
    """One seeded crash-storm run (the benchmark's primitive).

    Steady state for ``storm_at`` seconds, then a crash storm killing
    ``crash_frac`` of the fleet in one instant, then run until every
    survivor's view has converged (or ``max_duration`` passes).
    """
    fleet = GossipFleet(config)
    fleet.scheduler.run(until=config.storm_at)
    steady_packets = fleet.network.stats.packets_sent
    rng = random.Random(derive_seed(config.seed, "gossip.storm"))
    victims = rng.sample(fleet.names, max(1, int(config.nodes * config.crash_frac)))
    for victim in victims:
        fleet.crash(victim)
    converged = fleet.run_until_converged(config.max_duration)
    return _finish(
        fleet, converged, config.storm_at, fleet.scheduler.now, steady_packets
    )


def _chaos_swim(swim: SwimConfig, nodes: int) -> SwimConfig:
    """Scale the suspicion timeout logarithmically with fleet size.

    Refutations spread by infection in O(log n) gossip periods, so a
    suspicion timeout that is generous at 60 nodes loses the race at
    thousands: a live node's incarnation bump cannot reach every
    accuser before some of their timers fire.  memberlist scales the
    timeout ``4..6 * log10(n + 1)`` probe intervals; scenario fleets
    sit at 8 because the generator keeps them under storm (lossy fault
    models, partitions) for the whole timeline, which is when the
    refutation race is tightest.  This is only a floor — an explicitly
    larger configured timeout wins.
    """
    floor = 8.0 * math.log10(nodes + 1) * swim.period
    if swim.suspect_timeout >= floor:
        return swim
    return replace(swim, suspect_timeout=floor)


def run_scenario(scenario: Any, config: GossipScaleConfig) -> ScaleReport:
    """Run a chaos :class:`~repro.chaos.Scenario` timeline over a fleet.

    Built for the generator's large-n family: crash storms, recovers,
    partitions, heals, and fault-model swaps apply through the
    FaultPlane; op kinds that need a protocol stack (load injection,
    flow-control squeezes) are counted and skipped.  If the timeline
    leaves a partition open it is healed after the last op — a fleet
    split in two cannot (and should not) converge to one view — and
    the network's baseline fault model is restored before convergence
    is measured, so the clock times recovery from the storm rather
    than progress through it.

    Scenario fleets face suspicion/refutation races (partitions and
    lossy fault models accuse live nodes), so the SWIM suspicion
    timeout is lifted to the memberlist log-scale floor via
    :func:`_chaos_swim`.
    """
    names = tuple(scenario.nodes)
    config = GossipScaleConfig(
        nodes=len(names),
        seed=config.seed,
        crash_frac=config.crash_frac,
        storm_at=config.storm_at,
        max_duration=config.max_duration,
        poll=config.poll,
        shards=config.shards,
        replication=config.replication,
        swim=_chaos_swim(config.swim, len(names)),
    )
    fleet = GossipFleet(config, names=names)
    baseline_faults = fleet.network.fault_model
    ignored = 0
    ops = sorted(scenario.ops, key=lambda op: op.at)
    first_op_at = ops[0].at if ops else 0.0
    fleet.scheduler.run(until=first_op_at)
    steady_packets = fleet.network.stats.packets_sent
    partitioned = False
    for op in ops:
        fleet.scheduler.run(until=op.at)
        kind = getattr(op, "kind", "")
        if kind == "crash":
            fleet.crash(op.node)
        elif kind == "recover":
            fleet.recover(op.node)
        elif kind == "partition":
            fleet.partition(op.components)
            partitioned = True
        elif kind == "heal":
            fleet.heal()
            partitioned = False
        elif kind == "set_faults":
            fleet.set_faults(op.model())
        else:
            ignored += 1
    if partitioned:
        fleet.heal()
    fleet.set_faults(baseline_faults)
    storm_at = max(first_op_at, 0.001)
    converged = fleet.run_until_converged(fleet.scheduler.now + config.max_duration)
    return _finish(
        fleet,
        converged,
        storm_at,
        fleet.scheduler.now,
        steady_packets,
        ignored_ops=ignored,
        scenario=scenario.name,
    )
