"""repro.gossip — SWIM failure detection and sharded VS groups.

MBRSHIP's flush protocol (Section 5) is O(n) per view change: faithful
to the paper, wrong for the ROADMAP's millions of endpoints.  This
plane keeps the virtual-synchrony guarantees *in the small* and scales
*in the large* with an hourglass split:

* :mod:`repro.gossip.swim` — the SWIM protocol core: periodic ping
  with timeout, k-indirect ping-req, suspect/alive/confirm states with
  incarnation-number refutation, and infection-style membership
  dissemination piggybacked on a bounded gossip buffer.  Constant
  per-node probe cost regardless of fleet size.
* :class:`~repro.gossip.detector.GossipFailureDetector` — the SWIM
  core behind the :class:`~repro.membership.FailureDetector` protocol,
  so MBRSHIP (via ``ExternalFailureDetector.attach``) consumes SWIM
  verdicts exactly as it consumes the built-in timeout scan's.
* :mod:`repro.gossip.shard` — many small virtually-synchronous groups
  (each running the unmodified MBRSHIP/TOTAL/XFER stack) coordinated
  by a consistent-hash :class:`~repro.gossip.shard.ShardDirectory`
  built on :class:`~repro.membership.GroupDirectory`; XFER streams the
  shard state to new owners when the directory reassigns a shard.
* :mod:`repro.gossip.harness` — the scale harness: 1k–10k lightweight
  SWIM agents on the DES under chaos (crash storms, partitions via the
  FaultPlane), measuring view-convergence time, per-node message
  overhead, and false-positive evictions.

The protocol layer form (``"GOSSIP"`` in a stack spec) lives in
:mod:`repro.layers.gossip`.  All timing draws from the Clock seam and
all randomness from seeded rng streams, so every run is
digest-deterministic.
"""

from repro.gossip.detector import GossipFailureDetector, SwimAgent
from repro.gossip.harness import (
    GossipFleet,
    GossipScaleConfig,
    ScaleReport,
    run_scale,
    run_scenario,
)
from repro.gossip.shard import HashRing, ShardDirectory, ShardPlane
from repro.gossip.swim import SwimConfig, SwimCore

__all__ = [
    "GossipFailureDetector",
    "GossipFleet",
    "GossipScaleConfig",
    "HashRing",
    "ScaleReport",
    "ShardDirectory",
    "ShardPlane",
    "SwimAgent",
    "SwimConfig",
    "SwimCore",
    "run_scale",
    "run_scenario",
]
