"""The SWIM protocol core (Das, Gupta, Motivala — DSN 2002).

SWIM separates failure *detection* from membership *dissemination*:

* Detection: each protocol period a member pings one other member,
  chosen by randomized round-robin.  No ack within the ping timeout
  triggers an indirect probe — ``k`` other members are asked to ping
  the target on the prober's behalf — so one lossy link cannot convict
  a healthy node.  Only when direct and indirect probes all fail does
  the target become *suspected*.
* Refutation: a suspected member that hears of its own suspicion
  increments its *incarnation number* and gossips a fresh ``alive``;
  higher incarnations override lower ones, so a slow-but-alive node
  un-convicts itself.  A suspicion that survives ``suspect_timeout``
  unrefuted is *confirmed*: the member is declared dead.
* Dissemination: membership updates ride piggybacked on the ping/ack
  traffic itself (infection style), each retransmitted O(log n) times
  from a bounded buffer that prefers the least-transmitted updates.
  An update reaches everyone in O(log n) protocol periods without any
  dedicated broadcast traffic — this is what keeps the per-node load
  constant as the fleet grows.

The core is substrate-neutral in the same way every protocol layer in
this package is: time comes from an injected Clock, randomness from an
injected seeded ``random.Random``, and packets leave through an
injected send callback.  Two adapters exist — the network-attached
:class:`~repro.gossip.detector.SwimAgent` used by the scale harness,
and the :class:`~repro.layers.gossip.GossipLayer` protocol layer.

Memory note: a member's view of an n-node fleet is stored as the
*deviations* from the all-alive baseline (suspects, deads, incarnation
bumps), not as n records.  A 10k-agent simulation therefore costs
O(churn) per agent, not O(n) — the difference between 2 MB and 2 GB.
"""

from __future__ import annotations

import hashlib
import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Hashable, List, Optional, Sequence, Tuple

__all__ = [
    "ALIVE",
    "SUSPECT",
    "DEAD",
    "LEFT",
    "STATE_NAMES",
    "PING",
    "ACK",
    "PING_REQ",
    "SYNC_REQ",
    "SYNC",
    "GossipBuffer",
    "SwimConfig",
    "SwimCore",
    "decode_message",
    "encode_message",
]

# Member states, in override-precedence order.
ALIVE = 0
SUSPECT = 1
DEAD = 2
LEFT = 3

STATE_NAMES = {ALIVE: "alive", SUSPECT: "suspect", DEAD: "dead", LEFT: "left"}

# Message kinds.
PING = 0
ACK = 1
PING_REQ = 2
SYNC_REQ = 3
SYNC = 4

NodeId = Hashable
Update = Tuple[NodeId, int, int]  # (node, state, incarnation)


@dataclass(frozen=True)
class SwimConfig:
    """Tuning knobs of one SWIM instance.

    Defaults are expressed in protocol periods: with ``period=1.0`` a
    crash is suspected within ~2 periods, confirmed ``suspect_timeout``
    later, and the confirmation infects the whole fleet in O(log n)
    further periods.  ``suspect_timeout`` is deliberately several
    periods long — a refutation must be able to out-run every member's
    local confirmation clock, which is what keeps false-positive
    evictions at zero.
    """

    period: float = 1.0  # protocol period (one probe per period)
    ping_timeout: float = 0.25  # direct-ack deadline
    indirect_timeout: float = 0.5  # indirect-ack deadline after ping-req
    k_indirect: int = 3  # proxies asked to ping on our behalf
    suspect_timeout: float = 6.0  # suspicion -> confirmed-dead deadline
    piggyback: int = 12  # max updates carried per message
    retransmit_mult: int = 3  # per-update sends = mult * ceil(log2(n+1))
    max_buffer: int = 4096  # gossip-buffer entry cap
    sync_chunk: int = 64  # updates per SYNC snapshot message
    sync_period: float = 20.0  # anti-entropy pull cadence (0 disables)


class GossipBuffer:
    """Bounded dissemination buffer preferring least-transmitted updates.

    Updates are bucketed by how many times they have been piggybacked;
    :meth:`select` drains the lowest buckets first, so fresh updates
    always out-compete old ones for message space.  An update is
    dropped once it has been sent ``limit`` times (it has done its
    O(log n) infection duty) or when a newer update for the same node
    supersedes it.
    """

    def __init__(self, limit: int, max_entries: int) -> None:
        self.limit = max(1, limit)
        self.max_entries = max_entries
        # node -> [state, incarnation, sends]
        self._entries: Dict[NodeId, List[int]] = {}
        self._buckets: List[Deque[Tuple[NodeId, int, int, int]]] = [
            deque() for _ in range(self.limit)
        ]

    def __len__(self) -> int:
        return len(self._entries)

    def set_limit(self, limit: int) -> None:
        limit = max(1, limit)
        while len(self._buckets) < limit:
            self._buckets.append(deque())
        self.limit = limit

    def add(self, node: NodeId, state: int, incarnation: int) -> None:
        """Enqueue (or re-arm) the update for ``node``; resets its sends."""
        if len(self._entries) >= self.max_entries and node not in self._entries:
            self._evict_most_sent()
        self._entries[node] = [state, incarnation, 0]
        self._buckets[0].append((node, state, incarnation, 0))

    def select(self, count: int) -> List[Update]:
        """Up to ``count`` least-transmitted updates, charging each a send."""
        out: List[Update] = []
        for bucket_idx in range(self.limit):
            bucket = self._buckets[bucket_idx]
            while bucket and len(out) < count:
                node, state, incarnation, sends = bucket.popleft()
                entry = self._entries.get(node)
                # Stale references (superseded or already advanced) are
                # skipped lazily; the live copy sits in another bucket.
                if (
                    entry is None
                    or entry[0] != state
                    or entry[1] != incarnation
                    or entry[2] != sends
                ):
                    continue
                out.append((node, state, incarnation))
                entry[2] += 1
                if entry[2] < self.limit:
                    self._buckets[entry[2]].append(
                        (node, state, incarnation, entry[2])
                    )
                else:
                    del self._entries[node]
            if len(out) >= count:
                break
        return out

    def _evict_most_sent(self) -> None:
        for bucket in reversed(self._buckets):
            while bucket:
                node, state, incarnation, sends = bucket.pop()
                entry = self._entries.get(node)
                if (
                    entry is not None
                    and entry[0] == state
                    and entry[1] == incarnation
                    and entry[2] == sends
                ):
                    del self._entries[node]
                    return


class SwimCore:
    """One member's SWIM state machine.

    ``peers`` is the (shared, possibly immutable) universe of node ids,
    self included; the scale harness hands every agent the same tuple.
    ``send(target, message)`` ships a message dict; ``clock`` satisfies
    the :class:`~repro.runtime.clock.Clock` surface; ``rng`` is this
    member's seeded stream.  The adapter must call :meth:`tick` once
    per protocol period and :meth:`on_message` per arriving message.
    """

    def __init__(
        self,
        me: NodeId,
        peers: Sequence[NodeId],
        clock: Any,
        rng: Any,
        send: Callable[[NodeId, Dict[str, Any]], None],
        config: Optional[SwimConfig] = None,
        on_suspect: Optional[Callable[[NodeId], None]] = None,
        on_confirm: Optional[Callable[[NodeId], None]] = None,
        on_alive: Optional[Callable[[NodeId], None]] = None,
    ) -> None:
        self.me = me
        self.clock = clock
        self.rng = rng
        self.send = send
        self.config = config or SwimConfig()
        self.on_suspect = on_suspect
        self.on_confirm = on_confirm
        self.on_alive = on_alive
        self.incarnation = 0
        # Deviations from the all-alive baseline: node -> (state, inc).
        self._records: Dict[NodeId, Tuple[int, int]] = {}
        self.suspect_count = 0
        self.dead_count = 0
        self.left_count = 0
        self._buffer = GossipBuffer(1, self.config.max_buffer)
        self._peers: Sequence[NodeId] = ()
        self._pos = 0
        self._offset = 0
        self._stride = 1
        self.set_peers(peers)
        # Periods since the last anti-entropy pull, seeded mid-cycle so
        # a fleet's pulls spread uniformly instead of bursting together.
        self._ticks = 0
        if self.config.sync_period:
            self._ticks = rng.randrange(
                max(1, round(self.config.sync_period / self.config.period))
            )
        # True only while a local suspect timer is converting its own
        # suspicion into DEAD — lets ``on_confirm`` observers tell an
        # originated verdict from the application of a gossiped record.
        self.confirm_originated = False
        # In-flight probe: (target, token) plus its timers.
        self._probe: Optional[Tuple[NodeId, int]] = None
        self._probe_seq = 0
        self._probe_timer: Any = None
        # Indirect-probe relays we are serving: subject -> requesters.
        self._relaying: Dict[NodeId, List[NodeId]] = {}
        self.stats: Dict[str, int] = {
            "pings": 0,
            "acks": 0,
            "ping_reqs": 0,
            "relays": 0,
            "suspects": 0,
            "confirms": 0,
            "refutes": 0,
            "resurrections": 0,
            "updates_sent": 0,
            "syncs": 0,
        }

    # ------------------------------------------------------------------
    # Membership records
    # ------------------------------------------------------------------

    def state_of(self, node: NodeId) -> Tuple[int, int]:
        """(state, incarnation) for ``node``; baseline is (ALIVE, 0)."""
        if node == self.me:
            return (ALIVE, self.incarnation)
        return self._records.get(node, (ALIVE, 0))

    def alive_view(self) -> List[NodeId]:
        """Peers this member currently believes are up (self included)."""
        return [
            p
            for p in self._peers
            if self.state_of(p)[0] not in (DEAD, LEFT)
        ]

    def deviations(self) -> List[Update]:
        """Every record that differs from the baseline, self included."""
        out: List[Update] = [
            (node, state, inc) for node, (state, inc) in self._records.items()
        ]
        if self.incarnation:
            out.append((self.me, ALIVE, self.incarnation))
        return out

    def digest(self) -> str:
        """Order-independent hash of this member's membership view.

        Two members with identical knowledge produce identical digests
        — the convergence criterion of every gossip test and benchmark.
        """
        lines = sorted(
            f"{node}:{state}:{inc}" for node, state, inc in self.deviations()
        )
        return hashlib.sha256("\n".join(lines).encode()).hexdigest()

    def set_peers(self, peers: Sequence[NodeId]) -> None:
        """(Re)point at the peer universe; re-derives the probe walk."""
        if len(peers) != len(self._peers):
            n = len(peers)
            limit = max(
                1,
                self.config.retransmit_mult * math.ceil(math.log2(n + 1)),
            )
            self._buffer.set_limit(limit)
            self._reshuffle(n)
        self._peers = peers

    def _reshuffle(self, n: int) -> None:
        """New (offset, stride) for the probe walk.

        ``offset + k*stride (mod n)`` with gcd(stride, n) = 1 visits
        every index exactly once per n steps — SWIM's round-robin
        bounded-completeness property without materializing a per-agent
        shuffled copy of the member list.
        """
        self._pos = 0
        if n <= 1:
            self._offset, self._stride = 0, 1
            return
        self._offset = self.rng.randrange(n)
        stride = self.rng.randrange(1, n)
        while math.gcd(stride, n) != 1:
            stride = self.rng.randrange(1, n)
        self._stride = stride

    # ------------------------------------------------------------------
    # The protocol period
    # ------------------------------------------------------------------

    def tick(self) -> None:
        """One protocol period: probe the next round-robin target.

        Every ``sync_period`` the member also pulls one random peer's
        full deviation list (anti-entropy).  Infection-style piggyback
        reaches almost everyone in O(log n) periods, but "almost" has a
        stochastic tail — a member the infection happened to miss would
        otherwise only learn of a death when its own probe walk reaches
        the corpse, which is O(n) periods.  The periodic pull caps that
        tail at one sync period, independent of fleet size, at a cost
        of O(churn) bytes per sync.
        """
        cfg = self.config
        if cfg.sync_period:
            self._ticks += 1
            if self._ticks >= max(1, round(cfg.sync_period / cfg.period)):
                self._ticks = 0
                target = self._random_alive_peer()
                if target is not None:
                    self.request_sync(target)
        if self._probe is not None:
            # Previous probe still unresolved (timers pending); let it be.
            return
        target = self._next_target()
        if target is None:
            return
        self._probe_seq += 1
        self._probe = (target, self._probe_seq)
        self._send_message(target, {"k": PING})
        self.stats["pings"] += 1
        self._probe_timer = self.clock.call_after(
            self.config.ping_timeout,
            self._on_ping_timeout,
            target,
            self._probe_seq,
        )

    def _next_target(self) -> Optional[NodeId]:
        n = len(self._peers)
        if n <= 1:
            return None
        for _ in range(n):
            if self._pos >= n:
                self._reshuffle(n)
            idx = (self._offset + self._pos * self._stride) % n
            self._pos += 1
            candidate = self._peers[idx]
            if candidate == self.me:
                continue
            if self.state_of(candidate)[0] in (DEAD, LEFT):
                continue
            return candidate
        return None

    def _on_ping_timeout(self, target: NodeId, token: int) -> None:
        if self._probe != (target, token):
            return
        proxies = self._pick_proxies(target)
        for proxy in proxies:
            self._send_message(proxy, {"k": PING_REQ, "s": target})
            self.stats["ping_reqs"] += 1
        self._probe_timer = self.clock.call_after(
            self.config.indirect_timeout, self._on_probe_failed, target, token
        )

    def _random_alive_peer(self) -> Optional[NodeId]:
        n = len(self._peers)
        if n <= 1:
            return None
        for _ in range(8):
            candidate = self._peers[self.rng.randrange(n)]
            if candidate == self.me:
                continue
            if self.state_of(candidate)[0] in (DEAD, LEFT):
                continue
            return candidate
        return None

    def _pick_proxies(self, target: NodeId) -> List[NodeId]:
        n = len(self._peers)
        picked: List[NodeId] = []
        if n <= 2:
            return picked
        attempts = 0
        while len(picked) < self.config.k_indirect and attempts < 8 * self.config.k_indirect:
            attempts += 1
            candidate = self._peers[self.rng.randrange(n)]
            if candidate in (self.me, target) or candidate in picked:
                continue
            if self.state_of(candidate)[0] in (DEAD, LEFT):
                continue
            picked.append(candidate)
        return picked

    def _on_probe_failed(self, target: NodeId, token: int) -> None:
        if self._probe != (target, token):
            return
        self._probe = None
        state, inc = self.state_of(target)
        if state == ALIVE:
            self.apply_update(target, SUSPECT, inc)

    def _clear_probe(self, node: NodeId) -> None:
        if self._probe is not None and self._probe[0] == node:
            self._probe = None
            if self._probe_timer is not None:
                self._probe_timer.cancel()
                self._probe_timer = None

    # ------------------------------------------------------------------
    # Update reconciliation (the heart of SWIM)
    # ------------------------------------------------------------------

    def apply_update(self, node: NodeId, state: int, inc: int) -> bool:
        """Reconcile one membership update; returns whether it took.

        Precedence (the SWIM rules): ``alive`` overrides anything of a
        *lower* incarnation (including ``dead`` — that is what lets a
        partitioned-then-healed or restarted member resurrect itself);
        ``suspect`` overrides ``alive`` of the same incarnation;
        ``dead`` overrides both at the same incarnation and is final
        until a higher incarnation appears.  Updates about *ourselves*
        in states ``suspect``/``dead`` trigger refutation: bump our
        incarnation past the accusation and gossip a fresh ``alive``.
        """
        if node == self.me:
            if state in (SUSPECT, DEAD) and inc >= self.incarnation:
                self.incarnation = inc + 1
                self.stats["refutes"] += 1
                self._buffer.add(self.me, ALIVE, self.incarnation)
                self._refute_blast()
            return False
        old_state, old_inc = self.state_of(node)
        if state == ALIVE:
            accepted = inc > old_inc
        elif state == SUSPECT:
            accepted = (old_state == ALIVE and inc >= old_inc) or (
                old_state == SUSPECT and inc > old_inc
            )
        else:  # DEAD / LEFT are final at their incarnation
            accepted = old_state not in (DEAD, LEFT) and inc >= old_inc
        if not accepted:
            return False
        self._set_record(node, state, inc, old_state)
        self._buffer.add(node, state, inc)
        if state == SUSPECT:
            self.stats["suspects"] += 1
            if self.on_suspect is not None:
                self.on_suspect(node)
            self.clock.call_after(
                self.config.suspect_timeout, self._on_suspect_expired, node, inc
            )
        elif state in (DEAD, LEFT):
            self._clear_probe(node)
            if state == DEAD:
                self.stats["confirms"] += 1
                if self.on_confirm is not None:
                    self.on_confirm(node)
        elif old_state in (SUSPECT, DEAD, LEFT):
            if old_state in (DEAD, LEFT):
                self.stats["resurrections"] += 1
            if self.on_alive is not None:
                self.on_alive(node)
        return True

    def _set_record(
        self, node: NodeId, state: int, inc: int, old_state: int
    ) -> None:
        if old_state == SUSPECT:
            self.suspect_count -= 1
        elif old_state == DEAD:
            self.dead_count -= 1
        elif old_state == LEFT:
            self.left_count -= 1
        if state == SUSPECT:
            self.suspect_count += 1
        elif state == DEAD:
            self.dead_count += 1
        elif state == LEFT:
            self.left_count += 1
        if state == ALIVE and inc == 0:
            self._records.pop(node, None)
        else:
            self._records[node] = (state, inc)

    def _on_suspect_expired(self, node: NodeId, inc: int) -> None:
        state, current_inc = self.state_of(node)
        if state == SUSPECT and current_inc == inc:
            self.confirm_originated = True
            try:
                self.apply_update(node, DEAD, inc)
            finally:
                self.confirm_originated = False

    def _refute_blast(self) -> None:
        """Push a fresh refutation to a few random peers immediately.

        A refutation that only rides piggyback competes for gossip
        slots with whatever storm caused the accusation, and under
        churn it can lose the race against accusers' suspicion timers
        (Lifeguard's motivating observation).  A handful of direct,
        unacknowledged messages seeds the refutation's infection wave
        at several points at once — and since every message stamps our
        incarnation, each receiver reconciles it on contact even if
        the piggyback slots are full.
        """
        for _ in range(self.config.k_indirect):
            peer = self._random_alive_peer()
            if peer is None:
                return
            self._send_message(peer, {"k": ACK})

    def evidence_alive(self, node: NodeId) -> None:
        """Direct local evidence of life (an ack, a heartbeat report).

        Clears a local suspicion without gossiping: unlike a refutation
        it carries no incarnation bump, so it is not transferable —
        exactly the strength of evidence an ack provides.
        """
        state, inc = self.state_of(node)
        if state == SUSPECT:
            self._set_record(node, ALIVE, inc, state)
            if inc == 0:
                self._records.pop(node, None)
            else:
                self._records[node] = (ALIVE, inc)
            if self.on_alive is not None:
                self.on_alive(node)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def _send_message(self, target: NodeId, msg: Dict[str, Any]) -> None:
        msg["f"] = self.me
        msg["i"] = self.incarnation
        if "u" not in msg:
            updates = self._buffer.select(self.config.piggyback)
            if updates:
                msg["u"] = updates
                self.stats["updates_sent"] += len(updates)
        self.send(target, msg)

    def on_message(self, msg: Dict[str, Any]) -> None:
        """Process one arriving SWIM message (already decoded)."""
        frm = msg["f"]
        self._note_contact(frm, msg.get("i", 0))
        for node, state, inc in msg.get("u", ()):
            self.apply_update(node, state, inc)
        kind = msg["k"]
        if kind == PING:
            self._send_message(frm, {"k": ACK})
            self.stats["acks"] += 1
        elif kind == ACK:
            subject = msg.get("s")
            if subject is None:
                # Direct ack: resolves our probe of frm, and answers any
                # ping-req we are relaying on frm's behalf.
                self._clear_probe(frm)
                self.evidence_alive(frm)
                requesters = self._relaying.pop(frm, None)
                if requesters:
                    for requester in requesters:
                        self._send_message(
                            requester,
                            {"k": ACK, "s": frm, "si": msg.get("i", 0)},
                        )
                        self.stats["relays"] += 1
            else:
                # Relayed ack: the subject answered somebody's proxy ping.
                self._clear_probe(subject)
                subject_inc = msg.get("si", 0)
                if not self.apply_update(subject, ALIVE, subject_inc):
                    self.evidence_alive(subject)
        elif kind == PING_REQ:
            subject = msg["s"]
            requesters = self._relaying.setdefault(subject, [])
            requesters.append(frm)
            if len(requesters) == 1:
                self._send_message(subject, {"k": PING})
                self.stats["pings"] += 1
                self.clock.call_after(
                    self.config.indirect_timeout + self.config.ping_timeout,
                    self._relaying.pop,
                    subject,
                    None,
                )
        elif kind == SYNC_REQ:
            self._send_sync(frm)
        # SYNC carries only piggybacked updates, already applied above.

    def _note_contact(self, frm: NodeId, inc: int) -> None:
        """Direct traffic from ``frm``: reconcile its self-reported state.

        If we hold ``frm`` in suspect/dead at an incarnation it has not
        out-bumped yet, force its record back into the gossip buffer so
        our reply carries the accusation — the fastest path for ``frm``
        to learn of it and refute.
        """
        if frm == self.me:
            return
        state, rec_inc = self.state_of(frm)
        if state == ALIVE:
            if inc > rec_inc:
                self.apply_update(frm, ALIVE, inc)
            return
        if inc > rec_inc:
            self.apply_update(frm, ALIVE, inc)
        else:
            self._buffer.add(frm, state, rec_inc)

    def request_sync(self, target: NodeId) -> None:
        """Ask ``target`` for its full deviation list (join/recovery)."""
        self._send_message(target, {"k": SYNC_REQ})

    def _send_sync(self, target: NodeId) -> None:
        deviations = self.deviations()
        chunk = self.config.sync_chunk
        self.stats["syncs"] += 1
        for start in range(0, len(deviations), chunk):
            self._send_message(
                target, {"k": SYNC, "u": deviations[start : start + chunk]}
            )
        if not deviations:
            self._send_message(target, {"k": SYNC})


# ----------------------------------------------------------------------
# Wire codec for string-id universes (the scale harness / SwimAgent)
# ----------------------------------------------------------------------
#
# Layout: kind|from|inc|subject|subject_inc|updates where updates is
# ";"-joined "node,state,inc" triples.  Node names therefore must not
# contain "|", ";" or "," — true of every generated fleet ("n0".."nN").


def encode_message(msg: Dict[str, Any]) -> bytes:
    """Encode a SWIM message dict into a compact wire payload."""
    updates = msg.get("u", ())
    return (
        f"{msg['k']}|{msg['f']}|{msg.get('i', 0)}|{msg.get('s', '')}"
        f"|{msg.get('si', 0)}"
        f"|{';'.join(f'{n},{s},{i}' for n, s, i in updates)}"
    ).encode()


def decode_message(payload: bytes) -> Dict[str, Any]:
    """Decode a payload produced by :func:`encode_message`."""
    kind, frm, inc, subject, subject_inc, updates = payload.decode().split("|")
    msg: Dict[str, Any] = {"k": int(kind), "f": frm, "i": int(inc)}
    if subject:
        msg["s"] = subject
        msg["si"] = int(subject_inc)
    if updates:
        msg["u"] = [
            (node, int(state), int(inc_))
            for node, state, inc_ in (u.split(",") for u in updates.split(";"))
        ]
    return msg
