"""Sharded virtually-synchronous groups over a consistent-hash directory.

The hourglass answer to "virtual synchrony does not scale": do not
scale it.  Keep MBRSHIP's guarantees in many *small* groups — one per
shard, each running the unmodified MBRSHIP/TOTAL/XFER stack — and let
a thin consistent-hash directory decide which nodes own which shard.
Failure detection for the whole fleet is the GOSSIP plane's job; the
directory merely *reacts* to its verdicts by reassigning shards, and
XFER's snapshot streaming performs the handoff when a new owner joins
a shard group.

:class:`ShardDirectory` extends the paper's advisory rendezvous
service (:class:`~repro.membership.GroupDirectory`) — shard groups are
ordinary groups, findable by joiners exactly like any other — with the
ring that decides ownership.  :class:`ShardPlane` drives real stacks
in a :class:`~repro.core.process.World`; the scale harness uses the
same ring arithmetic without instantiating stacks.
"""

from __future__ import annotations

import bisect
import hashlib
from functools import lru_cache
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.membership.directory import GroupDirectory

__all__ = ["DEFAULT_SHARD_STACK", "HashRing", "ShardDirectory", "ShardPlane"]

#: The stateful stack of the chaos plane: XFER for handoff, TOTAL for
#: order, MBRSHIP for virtual synchrony — unmodified, per shard group.
DEFAULT_SHARD_STACK = "XFER:TOTAL:MBRSHIP:FRAG:NAK:CHKSUM:COM"


@lru_cache(maxsize=1 << 20)
def _point(key: str) -> int:
    """A stable 64-bit ring coordinate (sha256; PYTHONHASHSEED-proof).

    Cached: the scale harness rebuilds rings over the same 10k-node
    universe many times, and the vnode keys repeat across every build.
    """
    return int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "big")


class HashRing:
    """Consistent hashing with virtual nodes.

    ``owners(key, count)`` walks clockwise from the key's point and
    returns the first ``count`` distinct nodes — so when a node dies,
    only the shards it owned move, each to the next node on the ring,
    instead of the whole assignment reshuffling.
    """

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = 32) -> None:
        self.vnodes = vnodes
        self._nodes: Dict[str, List[int]] = {}
        self._points: List[Tuple[int, str]] = []
        # Bulk construction sorts once; insort-per-point would make
        # building a 10k-node ring quadratic in total vnodes.
        for node in nodes:
            if node in self._nodes:
                continue
            points = [_point(f"{node}#{v}") for v in range(self.vnodes)]
            self._nodes[node] = points
            self._points.extend((point, node) for point in points)
        self._points.sort()

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        points = [_point(f"{node}#{v}") for v in range(self.vnodes)]
        self._nodes[node] = points
        for point in points:
            bisect.insort(self._points, (point, node))

    def remove(self, node: str) -> None:
        points = self._nodes.pop(node, None)
        if points is None:
            return
        for point in points:
            index = bisect.bisect_left(self._points, (point, node))
            if index < len(self._points) and self._points[index] == (point, node):
                del self._points[index]

    def owners(self, key: str, count: int = 1) -> Tuple[str, ...]:
        """The ``count`` distinct nodes owning ``key``, ring order."""
        if not self._points:
            return ()
        out: List[str] = []
        start = bisect.bisect_right(self._points, (_point(key), "￿"))
        n = len(self._points)
        for step in range(n):
            node = self._points[(start + step) % n][1]
            if node not in out:
                out.append(node)
                if len(out) >= count:
                    break
        return tuple(out)


class ShardDirectory(GroupDirectory):
    """Consistent-hash shard assignment on top of the rendezvous service.

    Shard groups are named ``{prefix}-0000`` .. ``{prefix}-NNNN``; each
    is an ordinary group in the directory sense (register/lookup work
    unchanged — endpoints joining a shard group rendezvous through this
    object like through any :class:`GroupDirectory`).  On top of that,
    the ring maps shards to the nodes that *should* own them given the
    currently believed-alive node set.
    """

    def __init__(
        self,
        shards: int = 16,
        replication: int = 2,
        vnodes: int = 32,
        prefix: str = "shard",
    ) -> None:
        super().__init__()
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.shards = shards
        self.replication = replication
        self.prefix = prefix
        self.ring = HashRing(vnodes=vnodes)

    def shard_name(self, index: int) -> str:
        return f"{self.prefix}-{index:04d}"

    def shard_names(self) -> List[str]:
        return [self.shard_name(i) for i in range(self.shards)]

    def add_node(self, node: str) -> None:
        """A node became eligible to own shards."""
        self.ring.add(node)

    def remove_node(self, node: str) -> None:
        """A node was confirmed faulty (or left); stop assigning to it."""
        self.ring.remove(node)

    def shard_for(self, key: str) -> str:
        """Which shard group a data key belongs to (hash partitioning)."""
        return self.shard_name(_point(key) % self.shards)

    def owners_of(self, shard: str) -> Tuple[str, ...]:
        """The nodes that should currently run ``shard``'s group."""
        return self.ring.owners(shard, self.replication)

    def owners_for(self, key: str) -> Tuple[str, ...]:
        return self.owners_of(self.shard_for(key))

    def assignment(self) -> Dict[str, Tuple[str, ...]]:
        """The full shard → owner-nodes map for the current ring."""
        return {name: self.owners_of(name) for name in self.shard_names()}

    @staticmethod
    def assignment_for(
        alive: Sequence[str],
        shards: int,
        replication: int,
        vnodes: int = 32,
        prefix: str = "shard",
    ) -> Dict[str, Tuple[str, ...]]:
        """Pure-function assignment for an arbitrary alive set.

        The scale harness evaluates shard-view convergence by computing
        this from each surviving agent's *believed* membership and
        comparing against the ground-truth alive set — no stacks needed.
        """
        directory = ShardDirectory(
            shards=shards, replication=replication, vnodes=vnodes, prefix=prefix
        )
        directory.ring = HashRing(alive, vnodes=vnodes)
        return directory.assignment()


class ShardPlane:
    """Drives real per-shard stacks in a World and performs handoff.

    Each (node, shard) ownership is one endpoint joined to the shard's
    group through ``stack`` (XFER at the top streams existing state to
    the joiner).  :meth:`sync` diffs current handles against the
    directory's assignment: new owners join (``shard_handoffs_total``),
    ex-owners leave (``shard_releases_total``).  Call
    :meth:`node_failed` from a failure detector's verdict — e.g.
    ``ExternalFailureDetector.subscribe`` or a
    :class:`~repro.gossip.GossipFailureDetector` — then :meth:`sync`.
    """

    def __init__(
        self,
        world: Any,
        nodes: Sequence[str],
        shards: int = 4,
        replication: int = 2,
        stack: str = DEFAULT_SHARD_STACK,
        prefix: str = "shard",
    ) -> None:
        self.world = world
        self.stack = stack
        self.directory = ShardDirectory(
            shards=shards, replication=replication, prefix=prefix
        )
        self.nodes: List[str] = list(nodes)
        for node in self.nodes:
            self.directory.add_node(node)
        # (node, shard) -> GroupHandle
        self.handles: Dict[Tuple[str, str], Any] = {}
        self.reassignments = 0
        self._metrics = getattr(world, "metrics", None)
        if self._metrics is not None:
            self._handoffs = self._metrics.counter(
                "shard_handoffs_total",
                "Shard ownerships gained (XFER state transfers started)",
            )
            self._releases = self._metrics.counter(
                "shard_releases_total",
                "Shard ownerships released (graceful leaves)",
            )
            self._reassigned = self._metrics.counter(
                "shard_reassignments_total",
                "Shard owner-set changes applied by sync()",
            )
            self._groups_gauge = self._metrics.gauge(
                "shard_groups", "Shard groups with at least one live owner"
            )

    def start(self, settle: float = 0.5) -> None:
        """Bring up every shard group per the initial assignment."""
        self.sync(settle=settle)

    def node_failed(self, node: str) -> None:
        """A failure verdict: drop ``node`` from the ring and forget its
        handles (its stacks died with the process)."""
        self.directory.remove_node(node)
        for key in [k for k in self.handles if k[0] == node]:
            del self.handles[key]

    def node_joined(self, node: str) -> None:
        """A (re)joined node becomes assignable again."""
        if node not in self.nodes:
            self.nodes.append(node)
        self.directory.add_node(node)

    def sync(self, settle: float = 0.5) -> int:
        """Reconcile running stacks with the directory's assignment.

        Returns the number of ownership changes applied.  Joins are
        staggered by ``settle`` simulated seconds each so concurrent
        flushes do not trample one another (same pacing as the chaos
        runner's form phase).
        """
        assignment = self.directory.assignment()
        desired = {
            (node, shard)
            for shard, owners in assignment.items()
            for node in owners
        }
        current = set(self.handles)
        changes = 0
        for node, shard in sorted(current - desired):
            handle = self.handles.pop((node, shard))
            handle.leave()
            changes += 1
            if self._metrics is not None:
                self._releases.inc()
        for node, shard in sorted(desired - current):
            endpoint = self.world.process(node).endpoint()
            self.handles[(node, shard)] = endpoint.join(shard, stack=self.stack)
            changes += 1
            if self._metrics is not None:
                self._handoffs.inc()
            if settle:
                self.world.run(settle)
        if changes:
            self.reassignments += 1
            if self._metrics is not None:
                self._reassigned.inc()
        if self._metrics is not None:
            self._groups_gauge.set(len({shard for (_, shard) in self.handles}))
        return changes

    def shard_views(self, shard: str) -> Dict[str, Optional[Any]]:
        """Each current owner's installed view of ``shard``'s group."""
        return {
            node: handle.view
            for (node, s), handle in self.handles.items()
            if s == shard
        }

    def converged(self) -> bool:
        """Every shard's owners agree on a view containing exactly them."""
        assignment = self.directory.assignment()
        for shard, owners in assignment.items():
            views = []
            for node in owners:
                handle = self.handles.get((node, shard))
                if handle is None or handle.view is None:
                    return False
                views.append(handle.view)
            if not views:
                continue
            member_nodes = sorted({m.node for m in views[0].members})
            if member_nodes != sorted(owners):
                return False
            if any(v.members != views[0].members for v in views[1:]):
                return False
        return True
