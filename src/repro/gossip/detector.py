"""SWIM behind the :class:`~repro.membership.FailureDetector` protocol.

Two pieces live here:

* :class:`SwimAgent` — one lightweight SWIM member attached directly
  to a simulated :class:`~repro.net.network.Network`.  No protocol
  stack, no endpoint machinery: a fleet of thousands of agents is what
  the scale harness simulates.  All timing runs through the injected
  Clock and all randomness through the agent's seeded stream, so a
  fleet is digest-deterministic.
* :class:`GossipFailureDetector` — the facade that makes a SWIM core
  interchangeable with the built-in
  :class:`~repro.membership.TimeoutFailureDetector`: same ``monitor`` /
  ``heartbeat`` / ``suspects`` / ``subscribe`` surface, so
  ``ExternalFailureDetector.attach`` feeds MBRSHIP identically from
  either.  Unlike the timeout scan — whose suspicion *is* its verdict —
  SWIM distinguishes refutable suspicion from confirmation, so by
  default subscribers hear only *confirmed* failures (suspicions that
  out-lived the refutation window).  That asymmetry is the point: it is
  what drives false-positive evictions to zero.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.membership.failure_detector import FailureDetector, SuspectCallback
from repro.net.address import EndpointAddress
from repro.runtime.clock import PeriodicTimer
from repro.sim.rand import derive_seed
from repro.gossip.swim import (
    DEAD,
    LEFT,
    SUSPECT,
    SwimConfig,
    SwimCore,
    decode_message,
    encode_message,
)

__all__ = ["GossipFailureDetector", "SwimAgent"]

#: Port every SWIM agent listens on (one agent per simulated node).
SWIM_PORT = 7946


class SwimAgent:
    """One SWIM member speaking the wire codec over a Network.

    ``peers`` is the shared universe of node names (self included) —
    hand every agent of a fleet the *same* tuple.  The agent staggers
    its first protocol period by a seeded random offset so a 10k-agent
    fleet does not probe in lock-step.
    """

    def __init__(
        self,
        name: str,
        network: Any,
        scheduler: Any,
        peers: Sequence[str],
        seed: int = 0,
        config: Optional[SwimConfig] = None,
        rng: Optional[random.Random] = None,
        addresses: Optional[Dict[str, EndpointAddress]] = None,
        on_suspect: Optional[Callable[[str], None]] = None,
        on_confirm: Optional[Callable[[str], None]] = None,
        on_alive: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.name = name
        self.network = network
        self.scheduler = scheduler
        self.address = EndpointAddress(name, SWIM_PORT)
        # Address objects are interned in a fleet-shared cache: 10k
        # agents resolving 10k targets must not allocate per send.
        self._addresses = addresses if addresses is not None else {}
        self.rng = rng or random.Random(derive_seed(seed, f"gossip.{name}"))
        self.config = config or SwimConfig()
        self.core = SwimCore(
            name,
            peers,
            scheduler,
            self.rng,
            self._send,
            self.config,
            on_suspect=on_suspect,
            on_confirm=on_confirm,
            on_alive=on_alive,
        )
        network.attach(self.address, self._on_packet)
        self._tick_timer = PeriodicTimer(scheduler, self.config.period, self._tick)
        self.sent = 0
        self.received = 0

    def start(self) -> None:
        """Begin probing after a seeded stagger within one period."""
        self.scheduler.call_after(
            self.rng.uniform(0.0, self.config.period), self._begin
        )

    def stop(self) -> None:
        self._tick_timer.stop()

    def _begin(self) -> None:
        self._tick()
        self._tick_timer.start()

    def _tick(self) -> None:
        # A crashed node's timers keep firing on the shared scheduler;
        # the liveness guard is what makes the crash fail-stop.
        if self.network.node_alive(self.name):
            self.core.tick()

    def _send(self, target: str, msg: Dict[str, Any]) -> None:
        if not self.network.node_alive(self.name):
            return
        address = self._addresses.get(target)
        if address is None:
            address = EndpointAddress(target, SWIM_PORT)
            self._addresses[target] = address
        self.sent += 1
        self.network.unicast(self.address, address, encode_message(msg))

    def _on_packet(self, packet: Any) -> None:
        if packet.garbled:
            return
        self.received += 1
        self.core.on_message(decode_message(packet.payload))

    def recover(self, incarnation: int) -> None:
        """Rejoin after a fail-stop restart: blank view, bumped identity.

        Group state is gone (the Network.recover contract); the agent
        re-announces itself under ``incarnation`` — which must exceed
        any the fleet has seen from it, or its ``dead`` record wins —
        and pulls a state sync from a couple of seeded-random peers so
        it re-learns the fleet's deviations without re-probing them all.
        """
        self.core = SwimCore(
            self.name,
            self.core._peers,
            self.scheduler,
            self.rng,
            self._send,
            self.config,
            on_suspect=self.core.on_suspect,
            on_confirm=self.core.on_confirm,
            on_alive=self.core.on_alive,
        )
        self.core.incarnation = incarnation
        self.core._buffer.add(self.name, 0, incarnation)
        peers = self.core._peers
        for _ in range(min(2, max(0, len(peers) - 1))):
            target = peers[self.rng.randrange(len(peers))]
            if target != self.name:
                self.core.request_sync(target)


class GossipFailureDetector(FailureDetector):
    """A SWIM core speaking the pluggable failure-detection protocol.

    Wraps either an existing core (the GOSSIP protocol layer hands in
    its own) or a standalone :class:`SwimAgent` built via
    :meth:`standalone`.  ``notify_on`` selects which SWIM transition
    reaches subscribers: ``"confirm"`` (default — suspicion survived
    refutation; what MBRSHIP should evict on) or ``"suspect"`` (the
    aggressive semantics of the built-in timeout detector).
    """

    def __init__(
        self,
        core: SwimCore,
        resolve: Optional[Callable[[EndpointAddress], Any]] = None,
        notify_on: str = "confirm",
        universe: Optional[List[Any]] = None,
    ) -> None:
        if notify_on not in ("confirm", "suspect"):
            raise ValueError(f"notify_on must be confirm|suspect, got {notify_on!r}")
        self.core = core
        self._resolve = resolve or (lambda endpoint: endpoint)
        self._universe = universe
        self._monitored: Set[EndpointAddress] = set()
        self._listeners: List[SuspectCallback] = []
        self._agent: Optional[SwimAgent] = None
        hook = self._on_verdict
        if notify_on == "confirm":
            self._chain(core, "on_confirm", hook)
        else:
            self._chain(core, "on_suspect", hook)

    @staticmethod
    def _chain(core: SwimCore, slot: str, hook: Callable[[Any], None]) -> None:
        previous = getattr(core, slot)
        if previous is None:
            setattr(core, slot, hook)
        else:
            def chained(node: Any, _prev=previous, _hook=hook) -> None:
                _prev(node)
                _hook(node)

            setattr(core, slot, chained)

    @classmethod
    def standalone(
        cls,
        network: Any,
        scheduler: Any,
        node: str,
        peers: Sequence[str] = (),
        seed: int = 0,
        config: Optional[SwimConfig] = None,
        notify_on: str = "confirm",
    ) -> "GossipFailureDetector":
        """A self-contained detector: builds and starts its own agent."""
        universe = list(peers)
        if node not in universe:
            universe.append(node)
        agent = SwimAgent(
            node, network, scheduler, tuple(universe), seed=seed, config=config
        )
        detector = cls(
            agent.core,
            resolve=lambda endpoint: endpoint.node,
            notify_on=notify_on,
            universe=universe,
        )
        detector._agent = agent
        agent.start()
        return detector

    @property
    def agent(self) -> Optional[SwimAgent]:
        """The owned standalone agent, if built via :meth:`standalone`."""
        return self._agent

    def _on_verdict(self, node: Any) -> None:
        for endpoint in self._monitored:
            if self._resolve(endpoint) == node:
                for listener in self._listeners:
                    listener(endpoint)

    def subscribe(self, listener: SuspectCallback) -> None:
        self._listeners.append(listener)

    def monitor(self, endpoint: EndpointAddress) -> None:
        self._monitored.add(endpoint)
        node = self._resolve(endpoint)
        if self._universe is not None and node not in self._universe:
            self._universe.append(node)
            # Hand the core a snapshot: set_peers detects growth by
            # length, which a mutated shared list would mask.
            self.core.set_peers(tuple(self._universe))

    def forget(self, endpoint: EndpointAddress) -> None:
        self._monitored.discard(endpoint)

    def heartbeat(self, endpoint: EndpointAddress) -> None:
        self.core.evidence_alive(self._resolve(endpoint))

    def suspects(self) -> Set[EndpointAddress]:
        out: Set[EndpointAddress] = set()
        for endpoint in self._monitored:
            if self.core.state_of(self._resolve(endpoint))[0] in (
                SUSPECT,
                DEAD,
                LEFT,
            ):
                out.add(endpoint)
        return out

    def state_of(self, endpoint: EndpointAddress) -> Tuple[int, int]:
        """The SWIM (state, incarnation) pair behind ``endpoint``."""
        return self.core.state_of(self._resolve(endpoint))

    def stop(self) -> None:
        if self._agent is not None:
            self._agent.stop()
