"""The unified observability plane.

One instrumentation API for both execution substrates:

* :class:`MetricsRegistry` — counters, gauges, and fixed-bucket
  histograms with labeled series.  The network/transport stats objects
  are views over it, and the per-layer HCPI seam feeds it.
* :class:`SpanRecorder` / :class:`MessageSpan` — message-path spans:
  per-layer down/up entry-exit timestamps, header bytes pushed/popped,
  and queued-dispatch residency, recorded once in
  :meth:`~repro.core.layer.Layer.down`/``up`` for every layer at once.
* :mod:`repro.obs.exporters` — JSON-lines snapshots (deterministic on
  the DES) and Prometheus text format.
* :mod:`repro.obs.report` — the ``python -m repro obs-report`` tables.

Enable per-layer instrumentation by constructing a world with
``obs=ObsOptions(layer_metrics=True, spans=True)``; network and
transport counters are always registry-backed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.exporters import (
    parse_prometheus,
    read_jsonl,
    render_jsonl,
    render_prometheus,
    snapshot_records,
    write_jsonl,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    SIZE_BUCKETS,
    TIME_BUCKETS,
)
from repro.obs.report import (
    render_flow_report,
    render_layer_report,
    render_network_report,
    render_store_report,
)
from repro.obs.spans import MessageSpan, SpanEvent, SpanRecorder, StackObserver


@dataclass
class ObsOptions:
    """What a world instruments beyond the always-on network counters.

    Attributes:
        layer_metrics: feed per-layer event counters, self-time
            histograms, and header-byte counters from the HCPI seam.
        spans: record full message-path spans (implies the per-crossing
            bookkeeping even where metrics alone would not need it).
        max_spans: bound on retained spans (oldest evicted first).
        sample: observe every Nth stack traversal in detail (1 = all).
            Sampled-out traversals skip the per-crossing hook almost
            entirely (head-based sampling: two integer ops per
            crossing), which is what keeps the realtime hot path
            cheap.  Per-layer *event counts* stay exact regardless —
            they are reconciled from the layers' own counters at
            export time — as does the traversal counter; self-time,
            header bytes, and spans become 1-in-N statistics.
    """

    layer_metrics: bool = False
    spans: bool = False
    max_spans: int = 10_000
    sample: int = 1

    @classmethod
    def full(cls, max_spans: int = 10_000) -> "ObsOptions":
        """Everything on, every traversal timed — what DES snapshots use."""
        return cls(layer_metrics=True, spans=True, max_spans=max_spans)

    @classmethod
    def production(cls, sample: int = 32) -> "ObsOptions":
        """Exact event counters plus 1/``sample`` detailed traversals
        (timing, header bytes, spans): the low-overhead realtime
        configuration (see benchmarks/results/runtime_loopback_obs.txt
        for the measured cost)."""
        return cls(layer_metrics=True, spans=True, sample=sample)

    @classmethod
    def off(cls) -> "ObsOptions":
        """Layer seam fully dark (network counters remain)."""
        return cls(layer_metrics=False, spans=False)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MessageSpan",
    "MetricFamily",
    "MetricsRegistry",
    "ObsOptions",
    "SIZE_BUCKETS",
    "SpanEvent",
    "SpanRecorder",
    "StackObserver",
    "TIME_BUCKETS",
    "parse_prometheus",
    "read_jsonl",
    "render_flow_report",
    "render_jsonl",
    "render_layer_report",
    "render_network_report",
    "render_store_report",
    "render_prometheus",
    "snapshot_records",
    "write_jsonl",
]
