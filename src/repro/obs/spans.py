"""Message-path spans: where a message spends its time, per layer.

A *span* covers one traversal of a protocol stack — a downcall sinking
from the application toward the network, or an upcall rising from the
wire.  Because every layer speaks the same HCPI top and bottom
interface, one hook installed at the :meth:`Layer.down`/:meth:`Layer.up`
entry points (see :class:`StackObserver`) observes all ~25 layers at
once: per-layer entry/exit timestamps, header bytes pushed and popped,
and — under queued dispatch — how long each boundary crossing sat in
the event pump.

Timestamps come from whatever clock the owning stack's context holds:
virtual time on the DES (spans are then deterministic per seed), the
engine's monotonic wall clock on the realtime substrate.

Self-time accounting: direct dispatch nests calls (``TOTAL.down`` runs
``MBRSHIP.down`` inside it, and so on), so a frame stack attributes to
each layer only the time not spent in the layers it called — the
per-layer numbers sum to the traversal's total instead of multiply
counting it.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.obs.registry import MetricsRegistry, SIZE_BUCKETS, TIME_BUCKETS


class SpanEvent:
    """One layer crossing inside a span."""

    __slots__ = ("layer", "direction", "enter", "exit", "self_time",
                 "depth_in", "depth_out", "body_in", "body_out",
                 "header_bytes")

    def __init__(self, layer: str, direction: str, enter: float,
                 depth_in: int, body_in: int) -> None:
        self.layer = layer
        self.direction = direction
        self.enter = enter
        self.exit: float = enter
        #: Seconds inside this layer, excluding nested layer calls.
        self.self_time: float = 0.0
        self.depth_in = depth_in
        self.depth_out: int = depth_in
        self.body_in = body_in
        self.body_out: int = body_in
        #: Wire bytes of headers pushed (down) or popped (up) here.
        self.header_bytes: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form, used by the JSONL exporter."""
        return {
            "layer": self.layer,
            "direction": self.direction,
            "enter": self.enter,
            "exit": self.exit,
            "self_time": self.self_time,
            "depth_in": self.depth_in,
            "depth_out": self.depth_out,
            "body_in": self.body_in,
            "body_out": self.body_out,
            "header_bytes": self.header_bytes,
        }

    def __repr__(self) -> str:
        return (
            f"<SpanEvent {self.layer}.{self.direction} "
            f"[{self.enter:.6f},{self.exit:.6f}] hdr={self.header_bytes}B>"
        )


class MessageSpan:
    """One stack traversal: the ordered layer crossings of one message."""

    __slots__ = ("span_id", "endpoint", "group", "kind", "direction",
                 "started", "finished", "events")

    def __init__(self, span_id: int, endpoint: str, group: str, kind: str,
                 direction: str, started: float) -> None:
        self.span_id = span_id
        self.endpoint = endpoint
        self.group = group
        #: HCPI event type of the root crossing (e.g. ``"CAST"``).
        self.kind = kind
        #: Direction of the root crossing (``"down"`` or ``"up"``).
        self.direction = direction
        self.started = started
        self.finished: float = started
        self.events: List[SpanEvent] = []

    @property
    def duration(self) -> float:
        """Wall (or virtual) seconds from first entry to last exit."""
        return self.finished - self.started

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form, used by the JSONL exporter."""
        # "root_kind", not "kind": the JSONL record discriminator uses
        # "kind" for the record type ("span").
        return {
            "span_id": self.span_id,
            "endpoint": self.endpoint,
            "group": self.group,
            "root_kind": self.kind,
            "direction": self.direction,
            "started": self.started,
            "finished": self.finished,
            "events": [event.to_dict() for event in self.events],
        }

    def __repr__(self) -> str:
        return (
            f"<MessageSpan #{self.span_id} {self.kind} {self.direction} "
            f"events={len(self.events)} {self.duration * 1e6:.1f}us>"
        )


class SpanRecorder:
    """Bounded store of completed :class:`MessageSpan` objects.

    One recorder serves a whole world; stacks append through their
    observers.  The bound evicts oldest-first, so long realtime runs
    keep the most recent traffic without growing without limit.
    """

    def __init__(self, enabled: bool = True, max_spans: int = 10_000) -> None:
        self.enabled = enabled
        self.max_spans = max_spans
        self._spans: Deque[MessageSpan] = deque(maxlen=max_spans)
        self._next_id = 0
        #: Total spans ever recorded (evictions do not decrement).
        self.recorded = 0

    def new_id(self) -> int:
        """Allocate the next span id (monotone per recorder)."""
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def add(self, span: MessageSpan) -> None:
        """Store one completed span (no-op when disabled)."""
        if not self.enabled:
            return
        self._spans.append(span)
        self.recorded += 1

    def spans(self) -> List[MessageSpan]:
        """Snapshot of retained spans, oldest first."""
        return list(self._spans)

    def clear(self) -> None:
        """Drop retained spans (ids keep counting up)."""
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self):
        return iter(self._spans)

    def __repr__(self) -> str:
        return f"<SpanRecorder retained={len(self._spans)} total={self.recorded}>"


class _Frame:
    """One active layer crossing on the observer's frame stack."""

    __slots__ = ("layer", "direction", "enter", "child_time", "event",
                 "pending_pop", "pushed")

    def __init__(self, layer: str, direction: str, enter: float,
                 event: Optional[SpanEvent], pending_pop: int) -> None:
        self.layer = layer
        self.direction = direction
        self.enter = enter
        self.child_time = 0.0
        self.event = event
        #: Wire size of the header this layer is about to pop (up path).
        self.pending_pop = pending_pop
        #: Wire size of the header this layer pushed (down path),
        #: credited by the next lower layer's entry — by this layer's
        #: own exit the header has already been consumed further down.
        self.pushed = 0


class StackObserver:
    """The single instrumentation hook for one protocol stack.

    Installed on every layer by the stack builder;
    :meth:`~repro.core.layer.Layer.down` and ``up`` bracket their work
    with :meth:`enter`/:meth:`exit`.  Feeds per-layer metrics into a
    shared :class:`MetricsRegistry` and, when a :class:`SpanRecorder` is
    given, full message-path spans.
    """

    __slots__ = ("clock", "spans", "header_registry", "endpoint", "group",
                 "skipping", "wire_mode",
                 "_frames", "_span", "_events", "_self_time", "_hdr_bytes",
                 "_queue_wait", "_span_count", "_span_children",
                 "_children", "_codecs",
                 "_sample", "_span_seq", "_skip_depth", "_skip_direction")

    def __init__(
        self,
        clock: Any,
        *,
        metrics: Optional[MetricsRegistry] = None,
        spans: Optional[SpanRecorder] = None,
        header_registry: Any = None,
        endpoint: str = "",
        group: str = "",
        sample: int = 1,
        wire_mode: str = "aligned",
    ) -> None:
        self.clock = clock
        #: The world's wire mode, so header-byte accounting reflects
        #: what the mode actually puts on the wire (see
        #: :meth:`_header_wire_size`).
        self.wire_mode = wire_mode
        self.spans = spans if (spans is not None and spans.enabled) else None
        self._sample = max(1, int(sample))
        self._span_seq = 0
        #: True while a sampled-out traversal is in flight.  The layer
        #: seam consults this before calling enter/exit at all, so the
        #: nested crossings of an unsampled message cost one attribute
        #: read each; only the traversal root pays the enter/exit pair.
        self.skipping = False
        # Depth guard for callers that bracket enter/exit without
        # checking ``skipping`` (enter then degrades to a counter bump).
        self._skip_depth = 0
        self._skip_direction = ""
        self.header_registry = header_registry
        self.endpoint = endpoint
        self.group = group
        self._frames: List[_Frame] = []
        self._span: Optional[MessageSpan] = None
        # Hot-path caches: label-child tuples per (direction, layer) and
        # header codecs per layer.  Both resolve through dict lookups
        # that would otherwise repeat on every single crossing.
        self._children: Dict[tuple, tuple] = {}
        self._codecs: Dict[str, Any] = {}
        if metrics is not None:
            self._events = metrics.counter(
                "stack_layer_events_total",
                "HCPI boundary crossings, per layer and direction",
                labels=("direction", "layer"),
            )
            self._self_time = metrics.histogram(
                "stack_layer_self_seconds",
                "Time spent inside a layer itself, excluding nested layers",
                labels=("direction", "layer"),
                buckets=TIME_BUCKETS,
            )
            self._hdr_bytes = metrics.counter(
                "stack_header_bytes_total",
                "Wire bytes of headers pushed (down) or popped (up)",
                labels=("direction", "layer"),
            )
            self._queue_wait = metrics.histogram(
                "stack_queue_residency_seconds",
                "Queued-dispatch residency of one boundary crossing",
                buckets=TIME_BUCKETS,
            )
            self._span_count = metrics.counter(
                "stack_spans_total",
                "Completed message-path traversals",
                labels=("direction",),
            )
            # labels() costs microseconds and this counter is bumped
            # once per traversal, so resolve both children up front.
            self._span_children = {
                "down": self._span_count.labels(direction="down"),
                "up": self._span_count.labels(direction="up"),
            }
        else:
            self._events = None
            self._self_time = None
            self._hdr_bytes = None
            self._queue_wait = None
            self._span_count = None
            self._span_children = None

    # ------------------------------------------------------------------
    # The seam, called from Layer.down / Layer.up
    # ------------------------------------------------------------------

    def enter(self, layer: str, direction: str, event: Any) -> Optional[_Frame]:
        """Record entry of one crossing; returns the frame for :meth:`exit`.

        This runs once per layer per message on the realtime hot path,
        so it trades a little readability for locals and flat branches;
        the companion :meth:`exit` does the same.  On sampled-out
        traversals (``sample`` > 1) it returns ``None`` after a couple
        of integer operations — no clock read, no frame, no sizing:
        head-based sampling, decided once at the traversal root.  Exact
        per-layer event counts are unaffected because they come from
        :class:`LayerEventSync` at export time, not from this path.
        """
        skip = self._skip_depth
        if skip:
            self._skip_depth = skip + 1
            return None
        frames = self._frames
        if not frames:
            # Root of a traversal: the sampling decision covers every
            # nested crossing until the stack unwinds.
            self._span_seq += 1
            if self._span_seq % self._sample:
                self.skipping = True
                self._skip_depth = 1
                self._skip_direction = direction
                return None
        now = self.clock.now
        message = event.message
        pending_pop = 0
        if message is not None:
            if direction == "up":
                # The header this layer will pop (if any) is gone by
                # exit time, so its wire size is measured on the way in.
                if message.top_owner() == layer:
                    pending_pop = self._header_wire_size(
                        layer, message.peek_header()
                    )
            else:
                # Symmetric problem on the way down: the header the
                # layer above just pushed is consumed (marshaled and
                # sent) before that layer's exit runs, so size it at the
                # first entry below the pusher.  A header whose owner is
                # neither this layer nor the parent frame was already
                # credited higher up.
                owner = message.top_owner()
                if owner is not None and owner != layer:
                    parent = frames[-1] if frames else None
                    if (parent is not None and parent.layer == owner
                            and parent.direction == "down"):
                        if not parent.pushed:
                            parent.pushed = self._header_wire_size(
                                owner, message.peek_header()
                            )
                    elif parent is None or parent.layer == owner:
                        # Pushed outside an observed down frame: a timer
                        # or an up-path handler originated this send
                        # (e.g. a NAK retransmission).  No frame carries
                        # the credit, so feed the counter directly.
                        if self._hdr_bytes is not None:
                            size = self._header_wire_size(
                                owner, message.peek_header()
                            )
                            if size:
                                child = self._layer_children("down", owner)[2]
                                child.value += size
        span_event: Optional[SpanEvent] = None
        if self.spans is not None:
            span = self._span
            if span is None and not frames:
                kind = getattr(event.type, "name", str(event.type))
                span = MessageSpan(
                    self.spans.new_id(), self.endpoint, self.group,
                    kind, direction, now,
                )
                self._span = span
            if span is not None:
                if message is not None:
                    span_event = SpanEvent(layer, direction, now,
                                           message.header_depth,
                                           message.body_size)
                else:
                    span_event = SpanEvent(layer, direction, now, -1, 0)
                span.events.append(span_event)
        frame = _Frame(layer, direction, now, span_event, pending_pop)
        frames.append(frame)
        return frame

    def exit(self, frame: Optional[_Frame], event: Any) -> None:
        """Record exit of the crossing started by ``frame``.

        ``frame`` is ``None`` on a sampled-out traversal; the crossing
        then costs one decrement, plus the traversal counter when the
        root unwinds.
        """
        if frame is None:
            depth = self._skip_depth - 1
            self._skip_depth = depth
            if not depth:
                self.skipping = False
                if self._span_children is not None:
                    self._span_children[self._skip_direction].value += 1
            return
        frames = self._frames
        frames.pop()
        now = self.clock.now
        elapsed = now - frame.enter
        self_time = elapsed - frame.child_time
        if frames:
            frames[-1].child_time += elapsed
        message = event.message
        # Header accounting: both directions were sized when the header
        # was still on the message (see enter); the bottom layer's down
        # push is the one case still visible at exit.
        if frame.direction == "down":
            header_bytes = frame.pushed
            if (not header_bytes and message is not None
                    and message.top_owner() == frame.layer):
                header_bytes = self._header_wire_size(
                    frame.layer, message.peek_header()
                )
        else:
            header_bytes = frame.pending_pop
        if self._self_time is not None:
            key = (frame.direction, frame.layer)
            children = self._children.get(key)
            if children is None:
                children = self._layer_children(frame.direction, frame.layer)
            children[1].observe(self_time)
            # Header-byte adds inlined (plain slot adds): .inc() costs a
            # method call per crossing, which is real money here.  The
            # event counter is NOT bumped here — LayerEventSync copies
            # the layers' own exact counters in at export time.
            if header_bytes:
                children[2].value += header_bytes
        span_event = frame.event
        if span_event is not None:
            span_event.exit = now
            span_event.self_time = self_time
            span_event.header_bytes = header_bytes
            if message is not None:
                span_event.depth_out = message.header_depth
                span_event.body_out = message.body_size
            else:
                span_event.depth_out = -1
        if not frames:
            span = self._span
            if span is not None:
                self._span = None
                span.finished = now
                if self.spans is not None:
                    self.spans.add(span)
            if self._span_children is not None:
                self._span_children[frame.direction].value += 1

    def note_queue_wait(self, seconds: float) -> None:
        """Record one queued-dispatch residency sample (from the pump)."""
        if self._queue_wait is not None:
            self._queue_wait.observe(seconds)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _layer_children(self, direction: str, layer: str) -> tuple:
        """Cached (events, self_time, header_bytes) children for a series."""
        key = (direction, layer)
        children = self._children.get(key)
        if children is None:
            children = (
                self._events.labels(direction=direction, layer=layer),
                self._self_time.labels(direction=direction, layer=layer),
                self._hdr_bytes.labels(direction=direction, layer=layer),
            )
            self._children[key] = children
        return children

    def _header_wire_size(self, layer: str, header: Optional[Dict]) -> int:
        """Wire bytes of one layer's header, 0 when it cannot be sized.

        Mode-aware: ``packed`` charges the bit-packed size rounded up to
        whole bytes; every other mode charges the canonical byte
        encoding.  For ``table`` that canonical size is the honest
        *pre-compression* figure — the compressed size depends on the
        channel's dynamic-table state at marshal time, which this seam
        cannot see, so the counter stays deterministic and the bench
        reports the post-compression bytes from the network counters.
        """
        if header is None:
            return 0
        codec = self._codecs.get(layer)
        if codec is None:
            registry = self.header_registry
            if registry is None or not registry.has(layer):
                self._codecs[layer] = False
                return 0
            codec = registry.codec_for(layer)
            self._codecs[layer] = codec
        elif codec is False:
            return 0
        try:
            if self.wire_mode == "packed":
                return (codec.bit_size(header) + 7) // 8
            return codec.wire_size(header)
        except Exception:
            # A half-built header (filled in lower down) is not an
            # error; it just cannot be sized yet.
            return 0

    def event_sync(self, layers: List[Any]) -> Optional["LayerEventSync"]:
        """A collector keeping ``stack_layer_events_total`` exact.

        ``None`` when this observer carries no metrics registry; the
        stack builder registers the result with the registry so every
        export reconciles the counter (see :class:`LayerEventSync`).
        """
        if self._events is None:
            return None
        return LayerEventSync(layers, self._events)

    def __repr__(self) -> str:
        return (
            f"<StackObserver {self.endpoint}/{self.group} "
            f"frames={len(self._frames)}>"
        )


class LayerEventSync:
    """Export-time collector: layers' exact counters → the registry.

    Every :class:`~repro.core.layer.Layer` maintains plain ``counters``
    (``{"down": n, "up": n}``) unconditionally — they predate the
    observability plane and cost one dict add per crossing.  This
    collector copies them into ``stack_layer_events_total`` whenever the
    registry is read, adding only the delta since its last run, so the
    event counter stays *exact* even when ``ObsOptions.sample``
    suppresses the per-crossing observer entirely.  Registered once per
    stack; several stacks feeding one registry aggregate naturally
    because each tracks its own deltas.
    """

    __slots__ = ("_entries",)

    def __init__(self, layers: List[Any], family: Any) -> None:
        # [layer, direction, counter-child, last-synced] — children are
        # materialized eagerly so snapshots list every layer's series
        # even before (or without) traffic.
        self._entries: List[list] = []
        for layer in layers:
            for direction in ("down", "up"):
                child = family.labels(direction=direction, layer=layer.name)
                self._entries.append([layer, direction, child, 0])

    def __call__(self) -> None:
        for entry in self._entries:
            count = entry[0].counters[entry[1]]
            if count != entry[3]:
                entry[2].value += count - entry[3]
                entry[3] = count


#: Buckets re-exported so callers sizing byte histograms need one import.
__all__ = [
    "LayerEventSync",
    "MessageSpan",
    "SpanEvent",
    "SpanRecorder",
    "StackObserver",
    "SIZE_BUCKETS",
]
