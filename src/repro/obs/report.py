"""Render human-readable reports from observability snapshots.

Input is the parsed JSONL snapshot (:func:`repro.obs.exporters.read_jsonl`);
output is the per-layer latency/byte table the ``python -m repro
obs-report`` subcommand prints — the "where did this message spend its
time" answer the Section 10 analysis needs before any hot path is
touched.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.errors import ConfigurationError


def _table(headers: List[str], rows: List[List[Any]]) -> str:
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds * 1e6:.1f}us"


def _layer_rollup(metrics: List[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Aggregate stack_layer_* series into one record per layer."""
    layers: Dict[str, Dict[str, float]] = {}

    def slot(layer: str) -> Dict[str, float]:
        return layers.setdefault(layer, {
            "down_events": 0, "up_events": 0,
            "down_seconds": 0.0, "up_seconds": 0.0,
            "down_timed": 0, "up_timed": 0,
            "bytes_pushed": 0, "bytes_popped": 0,
        })

    for record in metrics:
        labels = record.get("labels", {})
        layer = labels.get("layer")
        direction = labels.get("direction")
        if layer is None or direction not in ("down", "up"):
            continue
        name = record["name"]
        if name == "stack_layer_events_total":
            slot(layer)[f"{direction}_events"] += record["value"]
        elif name == "stack_layer_self_seconds":
            agg = slot(layer)
            agg[f"{direction}_seconds"] += record["sum"]
            agg[f"{direction}_timed"] += record["count"]
        elif name == "stack_header_bytes_total":
            key = "bytes_pushed" if direction == "down" else "bytes_popped"
            slot(layer)[key] += record["value"]
    return layers


def render_layer_report(snapshot: Dict[str, Any]) -> str:
    """The per-layer table: events, self-time, and header bytes."""
    layers = _layer_rollup(snapshot.get("metrics", []))
    if not layers:
        raise ConfigurationError(
            "snapshot has no stack_layer_* series; was the run made with "
            "layer instrumentation enabled (ObsOptions(layer_metrics=True))?"
        )
    ordered = sorted(
        layers.items(),
        key=lambda kv: (-(kv[1]["down_seconds"] + kv[1]["up_seconds"]), kv[0]),
    )
    rows: List[List[Any]] = []
    for layer, agg in ordered:
        # Means come from the histogram's own count: under sampled
        # timing (ObsOptions.sample > 1) only every Nth traversal is
        # clocked, so dividing by the exact event counter would bias
        # the mean low.
        down_mean = (agg["down_seconds"] / agg["down_timed"]
                     if agg["down_timed"] else 0.0)
        up_mean = (agg["up_seconds"] / agg["up_timed"]
                   if agg["up_timed"] else 0.0)
        rows.append([
            layer,
            int(agg["down_events"]),
            _fmt_seconds(agg["down_seconds"]),
            _fmt_seconds(down_mean),
            int(agg["up_events"]),
            _fmt_seconds(agg["up_seconds"]),
            _fmt_seconds(up_mean),
            int(agg["bytes_pushed"]),
            int(agg["bytes_popped"]),
        ])
    totals = [
        "TOTAL (all layers)",
        sum(int(a["down_events"]) for _, a in ordered),
        _fmt_seconds(sum(a["down_seconds"] for _, a in ordered)),
        "",
        sum(int(a["up_events"]) for _, a in ordered),
        _fmt_seconds(sum(a["up_seconds"] for _, a in ordered)),
        "",
        sum(int(a["bytes_pushed"]) for _, a in ordered),
        sum(int(a["bytes_popped"]) for _, a in ordered),
    ]
    rows.append(totals)
    table = _table(
        ["layer", "down ev", "down self", "down mean",
         "up ev", "up self", "up mean", "hdrB pushed", "hdrB popped"],
        rows,
    )
    sections = [table]
    span_section = _render_span_summary(snapshot.get("spans", []))
    if span_section:
        sections.append(span_section)
    meta = snapshot.get("meta", {})
    if meta:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        sections.append(f"meta: {pairs}")
    return "\n\n".join(sections)


def _render_span_summary(spans: List[Dict[str, Any]]) -> str:
    if not spans:
        return ""
    by_direction: Dict[str, List[float]] = {}
    for span in spans:
        duration = span.get("finished", 0.0) - span.get("started", 0.0)
        by_direction.setdefault(span.get("direction", "?"), []).append(duration)
    rows = []
    for direction in sorted(by_direction):
        durations = sorted(by_direction[direction])
        count = len(durations)
        mean = sum(durations) / count
        p50 = durations[count // 2]
        rows.append([
            direction, count, _fmt_seconds(mean), _fmt_seconds(p50),
            _fmt_seconds(durations[-1]),
        ])
    return "spans (retained traversals):\n" + _table(
        ["direction", "count", "mean", "p50", "max"], rows
    )


def render_store_report(snapshot: Dict[str, Any]) -> str:
    """Durable-store and state-transfer series (store_* / xfer_*).

    Raises :class:`~repro.errors.ConfigurationError` when the snapshot
    has none — the caller can then simply omit the section.
    """
    rows: List[List[Any]] = []
    for record in snapshot.get("metrics", []):
        name = record["name"]
        if not name.startswith(("store_", "xfer_")):
            continue
        labels = record.get("labels", {})
        if record.get("type") == "histogram":
            mean = record["sum"] / record["count"] if record["count"] else 0.0
            if name.endswith("_seconds"):
                shown = _fmt_seconds(mean)
            else:
                shown = f"{mean:.0f}B"
            value = f"n={record['count']} mean={shown}"
        else:
            value = int(record["value"])
        label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        rows.append([name, label_text, value])
    if not rows:
        raise ConfigurationError(
            "snapshot has no store_*/xfer_* series; was the run made "
            "with a store domain in use?"
        )
    rows.sort(key=lambda row: (row[0], row[1]))
    return "store (durable state & transfer):\n" + _table(
        ["metric", "labels", "value"], rows
    )


def render_flow_report(snapshot: Dict[str, Any]) -> str:
    """Flow-control series (flow_*): credit outstanding, shed/block
    counts, queue high-water marks, grant traffic.

    Raises :class:`~repro.errors.ConfigurationError` when the snapshot
    has none — the caller can then simply omit the section (a run
    without a CREDIT layer has nothing to report).
    """
    rows: List[List[Any]] = []
    for record in snapshot.get("metrics", []):
        name = record["name"]
        if not name.startswith("flow_"):
            continue
        labels = record.get("labels", {})
        if record.get("type") == "histogram":
            mean = record["sum"] / record["count"] if record["count"] else 0.0
            if name.endswith("_seconds"):
                shown = _fmt_seconds(mean)
            else:
                shown = f"{mean:.0f}B"
            value = f"n={record['count']} mean={shown}"
        else:
            value = int(record["value"])
        label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        rows.append([name, label_text, value])
    if not rows:
        raise ConfigurationError(
            "snapshot has no flow_* series; was a CREDIT layer stacked "
            "during the run?"
        )
    rows.sort(key=lambda row: (row[0], row[1]))
    return "flow (credit & overload):\n" + _table(
        ["metric", "labels", "value"], rows
    )


def render_network_report(snapshot: Dict[str, Any]) -> str:
    """Counters of every network/transport component in the snapshot."""
    rows: List[List[Any]] = []
    for record in snapshot.get("metrics", []):
        name = record["name"]
        if not name.startswith(("net_", "transport_")):
            continue
        labels = record.get("labels", {})
        if record.get("type") == "histogram":
            mean = record["sum"] / record["count"] if record["count"] else 0.0
            value = f"n={record['count']} mean={_fmt_seconds(mean)}"
        else:
            value = int(record["value"])
        label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        rows.append([name, label_text, value])
    if not rows:
        return "no net_*/transport_* series in snapshot"
    return _table(["metric", "labels", "value"], rows)
