"""The substrate-neutral metrics registry.

One :class:`MetricsRegistry` serves a whole world — simulated or
realtime — because nothing in it knows about time sources: callers
observe durations they measured against whatever
:class:`~repro.runtime.clock.Clock` they own.  On the DES that makes
every snapshot a pure function of the seed (virtual timestamps are
deterministic); on the realtime engine the same code yields wall-clock
numbers.  That symmetry is the point: the Section 10 methodology of
"measure before optimizing" only works if both substrates feed one
pipeline.

Three instrument kinds, Prometheus-shaped so the exporters are trivial:

* :class:`Counter` — monotone accumulator (``inc``).
* :class:`Gauge` — settable level (``set``/``inc``/``dec``).
* :class:`Histogram` — fixed-bucket distribution with exact
  count/sum/min/max.  Buckets (not reservoirs) keep snapshots
  byte-identical across same-seed DES runs.

Instruments with label names are *families*: ``family.labels(layer="NAK",
direction="down")`` returns (creating on first use) the child series for
that label combination.  Unlabeled instruments accept ``inc``/``set``/
``observe`` directly.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Latency buckets (seconds): microseconds through tens of seconds,
#: 1-2.5-5 per decade — fine enough for per-layer self-times on both the
#: virtual and the wall clock.
TIME_BUCKETS: Tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)
    for base in (1.0, 2.5, 5.0)
)

#: Size buckets (bytes): powers of two through 64 KiB (the base MTU).
SIZE_BUCKETS: Tuple[float, ...] = tuple(float(1 << n) for n in range(5, 17))


class Counter:
    """Monotone accumulator; one labeled series of a counter family."""

    kind = "counter"
    __slots__ = ("labels", "value")

    def __init__(self, labels: Dict[str, str]) -> None:
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError("counters only go up; use a gauge")
        self.value += amount

    def values(self) -> Dict[str, Any]:
        """Exportable value dict for snapshots."""
        return {"value": self.value}

    def __repr__(self) -> str:
        return f"<Counter {self.labels} value={self.value}>"


class Gauge:
    """Settable level; one labeled series of a gauge family."""

    kind = "gauge"
    __slots__ = ("labels", "value")

    def __init__(self, labels: Dict[str, str]) -> None:
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` to the gauge."""
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        """Subtract ``amount`` from the gauge."""
        self.value -= amount

    def values(self) -> Dict[str, Any]:
        """Exportable value dict for snapshots."""
        return {"value": self.value}

    def __repr__(self) -> str:
        return f"<Gauge {self.labels} value={self.value}>"


class Histogram:
    """Fixed-bucket distribution; one labeled series of a histogram family.

    ``counts[i]`` is the number of observations ``<= uppers[i]`` and
    ``> uppers[i-1]``; observations above the last bound land in the
    implicit ``+Inf`` overflow.  Exact ``count``/``sum``/``min``/``max``
    ride along, so means are exact and quantiles are bucket-resolution.
    """

    kind = "histogram"
    __slots__ = ("labels", "uppers", "counts", "overflow", "count", "sum",
                 "min", "max")

    def __init__(
        self, labels: Dict[str, str], buckets: Sequence[float] = TIME_BUCKETS
    ) -> None:
        self.labels = labels
        self.uppers: Tuple[float, ...] = tuple(buckets)
        if list(self.uppers) != sorted(set(self.uppers)):
            raise ConfigurationError("histogram buckets must be sorted and unique")
        self.counts: List[int] = [0] * len(self.uppers)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bisect_left(self.uppers, value)
        if index < len(self.counts):
            self.counts[index] += 1
        else:
            self.overflow += 1

    @property
    def mean(self) -> float:
        """Exact arithmetic mean of all observations."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Bucket-resolution ``p``-th percentile (0-100).

        Linear interpolation inside the winning bucket; observations in
        the overflow report the exact observed maximum.
        """
        if not self.count:
            return 0.0
        target = (p / 100.0) * self.count
        seen = 0
        lower = 0.0
        for upper, bucket_count in zip(self.uppers, self.counts):
            if seen + bucket_count >= target and bucket_count:
                frac = (target - seen) / bucket_count
                return min(lower + (upper - lower) * frac, self.max)
            seen += bucket_count
            lower = upper
        return self.max

    def values(self) -> Dict[str, Any]:
        """Exportable value dict for snapshots (zeros normalized)."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "buckets": [
                [upper, cumulative]
                for upper, cumulative in zip(self.uppers, self._cumulative())
            ],
            "overflow": self.overflow,
        }

    def _cumulative(self) -> List[int]:
        out: List[int] = []
        running = 0
        for bucket_count in self.counts:
            running += bucket_count
            out.append(running)
        return out

    def __repr__(self) -> str:
        return f"<Histogram {self.labels} n={self.count} sum={self.sum:.6g}>"


class MetricFamily:
    """All series of one named instrument, keyed by label values."""

    __slots__ = ("name", "kind", "help", "label_names", "_factory",
                 "_children", "_registry")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: Tuple[str, ...],
        factory: Callable[[Dict[str, str]], Any],
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self._factory = factory
        self._children: Dict[Tuple[str, ...], Any] = {}
        #: Owning registry, set by MetricsRegistry._family; lets series()
        #: run the registry's collectors so collector-fed values are
        #: fresh even on direct family reads.
        self._registry: Any = None

    def labels(self, **labelvalues: Any):
        """The child series for this label combination (created on first use)."""
        try:
            key = tuple(str(labelvalues[name]) for name in self.label_names)
        except KeyError as exc:
            raise ConfigurationError(
                f"metric {self.name!r} requires labels {self.label_names}"
            ) from exc
        if len(labelvalues) != len(self.label_names):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        child = self._children.get(key)
        if child is None:
            child = self._factory(dict(zip(self.label_names, key)))
            self._children[key] = child
        return child

    def series(self) -> List[Any]:
        """Every child series, sorted by label values (deterministic).

        Reconciles collector-fed values first (see
        :meth:`MetricsRegistry.collect`) so reading a family directly
        agrees with a full snapshot.
        """
        if self._registry is not None:
            self._registry.collect()
        return [self._children[key] for key in sorted(self._children)]

    # -- unlabeled convenience --------------------------------------------

    def _default(self):
        if self.label_names:
            raise ConfigurationError(
                f"metric {self.name!r} is labeled {self.label_names}; "
                "call .labels(...) first"
            )
        return self.labels()

    def inc(self, amount: float = 1) -> None:
        """Unlabeled shorthand for ``family.labels().inc(amount)``."""
        self._default().inc(amount)

    def set(self, value: float) -> None:
        """Unlabeled shorthand for ``family.labels().set(value)``."""
        self._default().set(value)

    def dec(self, amount: float = 1) -> None:
        """Unlabeled shorthand for ``family.labels().dec(amount)``."""
        self._default().dec(amount)

    def observe(self, value: float) -> None:
        """Unlabeled shorthand for ``family.labels().observe(value)``."""
        self._default().observe(value)

    @property
    def value(self) -> float:
        """Unlabeled shorthand for the single series' value."""
        return self._default().value

    def __repr__(self) -> str:
        return (
            f"<MetricFamily {self.name} kind={self.kind} "
            f"series={len(self._children)}>"
        )


class MetricsRegistry:
    """One namespace of metric families, shared by every component.

    Declarations are idempotent: asking twice for the same (name, kind,
    labels) returns the same family, so a transport, twenty stacks, and
    a benchmark harness can all say ``registry.counter("x", ...)``
    without coordinating.  Conflicting redeclarations raise.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[[], None]] = []

    def add_collector(self, collector: Callable[[], None]) -> None:
        """Register a callable run before every read of the registry.

        Collectors pull values that are maintained elsewhere (a layer's
        own crossing counters, say) into registry series at export time
        instead of on the hot path.  They must be idempotent between
        state changes — :func:`collect` may run any number of times.
        """
        self._collectors.append(collector)

    def collect(self) -> None:
        """Run every registered collector (in registration order)."""
        for collector in self._collectors:
            collector()

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Declare (or fetch) a counter family."""
        return self._family(name, "counter", help_text, labels, Counter)

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Declare (or fetch) a gauge family."""
        return self._family(name, "gauge", help_text, labels, Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = TIME_BUCKETS,
    ) -> MetricFamily:
        """Declare (or fetch) a histogram family with the given buckets."""
        bucket_tuple = tuple(buckets)
        return self._family(
            name, "histogram", help_text, labels,
            lambda label_dict: Histogram(label_dict, bucket_tuple),
        )

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Sequence[str],
        factory: Callable[[Dict[str, str]], Any],
    ) -> MetricFamily:
        label_names = tuple(labels)
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.label_names != label_names:
                raise ConfigurationError(
                    f"metric {name!r} already declared as {existing.kind} "
                    f"with labels {existing.label_names}"
                )
            return existing
        family = MetricFamily(name, kind, help_text, label_names, factory)
        family._registry = self
        self._families[name] = family
        return family

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family called ``name``, or ``None``."""
        return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        """Every family, sorted by name (deterministic).

        Runs the collectors first: every export path (JSONL snapshot,
        Prometheus render, ad-hoc iteration) reads through here, so
        collector-fed series are reconciled before they are seen.
        """
        self.collect()
        return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> List[Dict[str, Any]]:
        """A JSON-able snapshot: one record per series, fully ordered.

        Records carry ``name``/``type``/``help``/``labels`` plus the
        series' value fields; same-seed DES runs produce identical
        snapshots byte for byte once serialized with sorted keys.
        """
        records: List[Dict[str, Any]] = []
        for family in self.families():
            for series in family.series():
                record: Dict[str, Any] = {
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "labels": series.labels,
                }
                record.update(series.values())
                records.append(record)
        return records

    def __repr__(self) -> str:
        return f"<MetricsRegistry families={len(self._families)}>"
