"""Snapshot exporters: JSON-lines and Prometheus text format.

Two consumers, two formats:

* **JSONL** — the archival/benchmark format.  One self-describing record
  per line (``kind`` is ``meta``, ``metric``, or ``span``), written with
  sorted keys so two identical registries serialize byte-identically —
  the property the DES determinism regression pins down.
* **Prometheus text** — the operational format, close enough to the
  exposition format that a real scraper ingests it.  A minimal parser
  lives alongside the renderer so round-tripping is testable without
  any dependency.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanRecorder

PathOrFile = Union[str, "io.TextIOBase"]


# ----------------------------------------------------------------------
# JSON lines
# ----------------------------------------------------------------------


def snapshot_records(
    registry: MetricsRegistry,
    spans: Optional[SpanRecorder] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> List[Dict[str, Any]]:
    """The full snapshot as a list of JSON-able records."""
    records: List[Dict[str, Any]] = [{"kind": "meta", **(meta or {})}]
    for record in registry.snapshot():
        records.append({"kind": "metric", **record})
    if spans is not None:
        for span in spans.spans():
            records.append({"kind": "span", **span.to_dict()})
    return records


def render_jsonl(
    registry: MetricsRegistry,
    spans: Optional[SpanRecorder] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> str:
    """Render the snapshot as JSON-lines text (sorted keys, stable)."""
    lines = [
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in snapshot_records(registry, spans, meta)
    ]
    return "\n".join(lines) + "\n"


def write_jsonl(
    target: PathOrFile,
    registry: MetricsRegistry,
    spans: Optional[SpanRecorder] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Write the JSONL snapshot to a path or open text file."""
    text = render_jsonl(registry, spans, meta)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as fh:
            fh.write(text)
    else:
        target.write(text)


def read_jsonl(source: PathOrFile) -> Dict[str, Any]:
    """Parse a JSONL snapshot into ``{"meta", "metrics", "spans"}``."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            text = fh.read()
    else:
        text = source.read()
    meta: Dict[str, Any] = {}
    metrics: List[Dict[str, Any]] = []
    spans: List[Dict[str, Any]] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"snapshot line {line_number} is not JSON: {exc}"
            ) from exc
        kind = record.pop("kind", None)
        if kind == "meta":
            meta = record
        elif kind == "metric":
            metrics.append(record)
        elif kind == "span":
            spans.append(record)
        else:
            raise ConfigurationError(
                f"snapshot line {line_number} has unknown kind {kind!r}"
            )
    return {"meta": meta, "metrics": metrics, "spans": spans}


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------


def _label_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape(value)}"' for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every family in the Prometheus text exposition format.

    Counters get a ``_total``-less literal name (names here already end
    in ``_total`` by convention); histograms expand to ``_bucket`` /
    ``_sum`` / ``_count`` series with cumulative ``le`` bounds.
    """
    out: List[str] = []
    for family in registry.families():
        out.append(f"# HELP {family.name} {family.help}")
        out.append(f"# TYPE {family.name} {family.kind}")
        for series in family.series():
            if family.kind in ("counter", "gauge"):
                out.append(
                    f"{family.name}{_label_text(series.labels)} "
                    f"{_format_number(series.value)}"
                )
                continue
            values = series.values()
            cumulative = 0
            for upper, running in values["buckets"]:
                cumulative = running
                labels = dict(series.labels)
                labels["le"] = _format_number(float(upper))
                out.append(
                    f"{family.name}_bucket{_label_text(labels)} {cumulative}"
                )
            inf_labels = dict(series.labels)
            inf_labels["le"] = "+Inf"
            out.append(
                f"{family.name}_bucket{_label_text(inf_labels)} "
                f"{values['count']}"
            )
            out.append(
                f"{family.name}_sum{_label_text(series.labels)} "
                f"{_format_number(values['sum'])}"
            )
            out.append(
                f"{family.name}_count{_label_text(series.labels)} "
                f"{values['count']}"
            )
    return "\n".join(out) + "\n"


def parse_prometheus(text: str) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Minimal Prometheus text parser for round-trip verification.

    Returns ``{series_name: {sorted_label_items: value}}``; histogram
    expansions appear under their expanded names (``x_bucket`` etc.).
    Not a general scraper — it understands exactly what
    :func:`render_prometheus` emits.
    """
    parsed: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        name_and_labels, _, value_text = line.rpartition(" ")
        if not name_and_labels:
            raise ConfigurationError(f"unparsable sample line: {raw_line!r}")
        labels: Dict[str, str] = {}
        name = name_and_labels
        if name_and_labels.endswith("}"):
            name, _, label_blob = name_and_labels.partition("{")
            for item in _split_labels(label_blob[:-1]):
                key, _, quoted = item.partition("=")
                labels[key] = _unescape(quoted.strip()[1:-1])
        value = float("inf") if value_text == "+Inf" else float(value_text)
        parsed.setdefault(name, {})[tuple(sorted(labels.items()))] = value
    return parsed


def _split_labels(blob: str) -> List[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    items: List[str] = []
    current: List[str] = []
    in_quotes = False
    previous = ""
    for ch in blob:
        if ch == '"' and previous != "\\":
            in_quotes = not in_quotes
        if ch == "," and not in_quotes:
            items.append("".join(current))
            current = []
        else:
            current.append(ch)
        previous = ch
    if current:
        items.append("".join(current))
    return items


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )
