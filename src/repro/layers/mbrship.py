"""MBRSHIP — virtually synchronous group membership (Section 5).

"The MBRSHIP layer simulates an environment for the members of a group
in which members can only fail (they cannot be slow or get
disconnected) and messages do not get lost. ... Each member in the
current view is guaranteed either to accept that same view, or to be
removed from that view.  Messages sent in the current view are
delivered to the surviving members of the current view ... This is
called virtual synchrony."

At the heart of the layer is the *flush* protocol (Figure 2):

1. A member crash is detected (or a join/leave/merge arrives).  The
   coordinator — "usually the oldest surviving member of the oldest
   view", elected without any message exchange — broadcasts a FLUSH
   message to the surviving members of its view.
2. "All members first return any messages from failed members that are
   not known to have been delivered everywhere" (the *unstable*
   messages), then reply FLUSH_OK, carrying their per-source delivery
   vector.
3. "Upon receiving all FLUSH_OK replies, the coordinator broadcasts any
   messages from failed members that are still unstable.  At this point
   a new view may be installed."  The INSTALL message carries the final
   delivery vector; each member installs the view only once its own
   deliveries match the vector, which is what makes the message set per
   view identical at all survivors.
4. "If processes fail during the process, a new round of the flush
   protocol may start up immediately" — rounds are numbered, and a
   newly eligible coordinator restarts with a higher round.

Merges (after partitions heal, or plain joins) enter through the same
machinery: joiners become new members appended in the install, and a
merging view first quiesces itself with an install-less flush before
asking the older view's coordinator to absorb it.

Partition behaviour is a policy (Section 9): ``partition="primary"``
(Isis-style, minority components block), ``"evs"`` (extended virtual
synchrony, every component proceeds), or ``"relacs"``.

Properties (Table 3): requires P3, P4, P10, P11, P12; provides P8
(virtually semi-synchronous), P9 (virtually synchronous), and P15
(consistent views).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.message import Message
from repro.core.stack import register_layer
from repro.core.view import View, ViewId
from repro.net.address import EndpointAddress

_DATA = 0  # application multicast, sequenced per (view, origin)
_SEND_DATA = 1  # application subset send (FIFO-reliable, view-tagged)
_JOIN_REQ = 2  # a new endpoint asks to join
_FLUSH = 3  # coordinator starts a flush round
_FLUSH_OK = 4  # member reply: delivery vector (unstable msgs precede it)
_INSTALL = 5  # coordinator: new view + final vector (new_vid=0: quiesce only)
_LEAVE_REQ = 6  # graceful leave request
_SUSPECT = 7  # failure suspicion forwarded to the coordinator
_MERGE_REQ = 8  # a younger view's coordinator asks to be absorbed
_MERGE_DENIED = 9  # merge refusal
_MERGE_PROBE = 10  # reachability check before quiescing for a merge
_MERGE_PROBE_ACK = 11  # the probe's answer
_STABILITY = 12  # periodic delivery-vector gossip: prunes the store

_NOBODY = EndpointAddress("", 0)

hdr.register(
    "MBRSHIP",
    fields=[
        ("kind", hdr.U8),
        ("vid", hdr.U32),
        ("new_vid", hdr.U32),
        ("round", hdr.U32),
        ("seq", hdr.U64),
        ("origin", hdr.ADDRESS),
        ("members", hdr.ListOf(hdr.ADDRESS)),
        ("joiners", hdr.ListOf(hdr.ADDRESS)),
        ("failed", hdr.ListOf(hdr.ADDRESS)),
        ("vector", hdr.MapOf(hdr.ADDRESS, hdr.U64)),
    ],
    defaults={
        "vid": 0,
        "new_vid": 0,
        "round": 0,
        "seq": 0,
        "origin": _NOBODY,
        "members": [],
        "joiners": [],
        "failed": [],
        "vector": {},
    },
)


class _FlushState:
    """Coordinator-side bookkeeping for one flush round."""

    __slots__ = ("round", "participants", "new_members", "failed", "joiners", "vectors")

    def __init__(
        self,
        round_no: int,
        participants: List[EndpointAddress],
        new_members: List[EndpointAddress],
        failed: List[EndpointAddress],
        joiners: List[EndpointAddress],
    ) -> None:
        self.round = round_no
        self.participants = participants  # who must reply FLUSH_OK
        self.new_members = new_members  # survivors minus leavers, age order
        self.failed = failed
        self.joiners = joiners
        self.vectors: Dict[EndpointAddress, Dict[EndpointAddress, int]] = {}

    @property
    def complete(self) -> bool:
        return all(p in self.vectors for p in self.participants)


@register_layer
class MembershipLayer(Layer):
    """Virtual synchrony: consistent views plus per-view message cuts.

    Config:
        partition (str): "primary" (default), "evs", or "relacs".
        flush_timeout (float): coordinator restart interval (default 1.0 s).
        join_timeout (float): join-request retry interval (default 1.0 s).
        merge_retry (float): blocked-component merge probe period (default 1.0 s).
        auto_grant (bool): grant merge/join requests without asking the
            application (default True).
        external_fd: optional
            :class:`~repro.membership.external_fd.ExternalFailureDetector`;
            when given, local problem reports are routed through it and
            only its verdicts create suspicion (pass via ``overrides``).
    """

    name = "MBRSHIP"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        from repro.membership.partition_models import partition_policy

        self.policy = partition_policy(str(config.get("partition", "primary")))
        self.flush_timeout = float(config.get("flush_timeout", 1.0))
        self.join_timeout = float(config.get("join_timeout", 1.0))
        self.merge_retry = float(config.get("merge_retry", 1.0))
        self.auto_grant = bool(config.get("auto_grant", True))
        #: With vs=False the layer agrees on views only (the BMS
        #: microprotocol): no message store, no unstable relay, no
        #: delivery-cut vector — P15 without P8/P9.
        self.vs = bool(config.get("vs", True))
        self.external_fd = config.get("external_fd")
        if self.external_fd is not None:
            self.external_fd.subscribe(self._on_fd_verdict)

        # Identity within the group.
        self.state = "init"  # init/joining/normal/flushing/blocked/left
        self.view: Optional[View] = None
        # Per-view data tracking.
        self.my_seq = 0
        self.delivered: Dict[EndpointAddress, int] = {}
        self.store: Dict[Tuple[EndpointAddress, int], Message] = {}
        self.pending: Dict[EndpointAddress, Dict[int, Tuple[Message, Message]]] = {}
        self.queued_casts: List[Downcall] = []
        # Membership change inputs.
        self.suspected: Set[EndpointAddress] = set()
        self.leavers: Set[EndpointAddress] = set()
        self.joiners: List[EndpointAddress] = []
        self.absorb_vids: List[int] = []
        # Flush machinery.
        self.flush: Optional[_FlushState] = None
        self._responded: Tuple[int, int] = (0, 0)  # (vid, round) last answered
        self._flush_scheduled = False
        self._pending_install: Optional[Tuple[View, Dict[EndpointAddress, int]]] = None
        self._premerge_vector: Optional[Dict[EndpointAddress, int]] = None
        self._future: Dict[int, List[Tuple[Message, EndpointAddress, UpcallType]]] = {}
        # Merge machinery.
        self._merge_target: Optional[EndpointAddress] = None
        self._merge_candidate: Optional[EndpointAddress] = None
        self._policy_blocked = False
        self._pending_merge_reqs: Dict[EndpointAddress, List[EndpointAddress]] = {}
        # Join machinery.
        self._join_candidates: List[EndpointAddress] = []
        # Stability gossip: per member, its last reported delivery
        # vector; store entries everyone delivered are pruned ("it is
        # necessary that all members log all *unstable* messages" —
        # stable ones need no logging).
        self.stability_period = float(config.get("stability_period", 1.0))
        self._peer_vectors: Dict[EndpointAddress, Dict[EndpointAddress, int]] = {}
        self.store_pruned = 0
        # Timers.
        self._join_timer = self.one_shot(self.join_timeout, self._join_retry)
        self._flush_timer = self.one_shot(self.flush_timeout, self._flush_retry)
        self._merge_timer = self.periodic(self.merge_retry, self._merge_probe)
        self._stability_timer = self.periodic(
            self.stability_period, self._stability_tick
        )
        # Statistics.
        self.views_installed = 0
        self.flushes_started = 0

    def start(self) -> None:
        self._stability_timer.start()
        self.relays_sent = 0
        self.stale_dropped = 0
        self.lost_messages = 0

    # ==================================================================
    # Downcalls
    # ==================================================================

    def handle_down(self, downcall: Downcall) -> None:
        dtype = downcall.type
        if dtype is DowncallType.CAST and downcall.message is not None:
            if self.state == "normal":
                self._cast_now(downcall)
            else:
                self.queued_casts.append(downcall)
        elif dtype is DowncallType.SEND and downcall.message is not None:
            self._subset_send(downcall)
        elif dtype is DowncallType.JOIN:
            self.pass_down(downcall)
            self._bootstrap()
        elif dtype is DowncallType.LEAVE:
            self._start_leave()
        elif dtype is DowncallType.MERGE:
            self._start_merge(downcall.extra.get("contact"))
        elif dtype is DowncallType.FLUSH:
            # Application-forced flush: treat the listed members as failed.
            for member in downcall.members or []:
                self._suspect(member, via="application")
        elif dtype is DowncallType.MERGE_GRANTED:
            origin = downcall.extra.get("origin")
            members = self._pending_merge_reqs.pop(origin, None)
            if members is not None:
                self._absorb(origin, members, downcall.extra.get("vid", 0))
        elif dtype is DowncallType.MERGE_DENIED:
            origin = downcall.extra.get("origin")
            if origin is not None and self._pending_merge_reqs.pop(origin, None) is not None:
                self._control(
                    _MERGE_DENIED, [origin], origin=self.endpoint
                )
        elif dtype is DowncallType.VIEW:
            # The application cannot override agreed membership.
            self.trace("view_downcall_ignored")
        else:
            self.pass_down(downcall)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def _cast_now(self, downcall: Downcall) -> None:
        self.my_seq += 1
        message = downcall.message
        message.push_owned_header(
            self.name,
            {
                "kind": _DATA,
                "vid": self.view.view_id.epoch,
                "seq": self.my_seq,
                "origin": self.endpoint,
            },
        )
        if self.vs:
            self.store[(self.endpoint, self.my_seq)] = message.shallow_copy()
        self.pass_down(downcall)

    def _subset_send(self, downcall: Downcall) -> None:
        if self.view is None:
            return
        message = downcall.message
        message.push_owned_header(
            self.name,
            {
                "kind": _SEND_DATA,
                "vid": self.view.view_id.epoch,
                "origin": self.endpoint,
            },
        )
        self.pass_down(downcall)

    # ------------------------------------------------------------------
    # Bootstrap and join
    # ------------------------------------------------------------------

    def _bootstrap(self) -> None:
        directory = self.context.directory
        contacts = (
            directory.contacts(self.group, self.endpoint) if directory else []
        )
        if not contacts:
            self._install_view(View.initial(self.group, self.endpoint))
            return
        self.state = "joining"
        self._join_candidates = contacts
        self._join_attempt()

    def _join_attempt(self) -> None:
        if self.state != "joining":
            return
        if not self._join_candidates:
            # Everyone listed in the directory is unresponsive; found a
            # group of one.
            self._install_view(View.initial(self.group, self.endpoint))
            return
        target = self._join_candidates.pop(0)
        self.trace("join_request", target=str(target))
        self._control(_JOIN_REQ, [target], origin=self.endpoint)
        self._join_timer.start()

    def _join_retry(self) -> None:
        if self.state != "joining":
            return
        directory = self.context.directory
        if directory is not None and not self._join_candidates:
            self._join_candidates = [
                c
                for c in directory.contacts(self.group, self.endpoint)
            ]
            if not self._join_candidates:
                self._install_view(View.initial(self.group, self.endpoint))
                return
        self._join_attempt()

    # ------------------------------------------------------------------
    # Leave and merge initiation
    # ------------------------------------------------------------------

    def _start_leave(self) -> None:
        if self.state == "left":
            return
        if self.view is None or self.view.size == 1:
            self._exit()
            return
        self.leavers.add(self.endpoint)
        if self._am_coordinator():
            self._schedule_flush()
        else:
            self._control(
                _LEAVE_REQ, [self._current_coordinator()], origin=self.endpoint
            )

    def _start_merge(self, contact: Optional[EndpointAddress]) -> None:
        if contact is None or self.view is None:
            return
        if not self._am_coordinator():
            self.trace("merge_ignored", reason="not coordinator")
            return
        if self.view.size == 1:
            self._merge_target = contact
            self._send_merge_request()
            return
        # Quiescing blocks the whole view, so first make sure the other
        # side is actually reachable: probe, and only quiesce on the
        # answer.  (A probe sent into a partition simply waits in the
        # reliable unicast layer until the network heals.)
        self._merge_candidate = contact
        self._control(_MERGE_PROBE, [contact], origin=self.endpoint)

    def _send_merge_request(self) -> None:
        if self._merge_target is None or self.view is None:
            return
        self.trace("merge_request", target=str(self._merge_target))
        self._control(
            _MERGE_REQ,
            [self._merge_target],
            origin=self.endpoint,
            vid=self.view.view_id.epoch,
            members=list(self.view.members),
        )

    def _on_merge_probe_ack(self, contact: EndpointAddress) -> None:
        """The merge target is reachable: now it is safe to quiesce."""
        if (
            contact != self._merge_candidate
            or self.view is None
            or self.view.contains(contact)
            or not self._am_coordinator()
            or self.state != "normal"
        ):
            return
        self._merge_candidate = None
        self._merge_target = contact
        self._schedule_flush()

    def _merge_probe(self) -> None:
        """While blocked (minority partition), keep trying to rejoin.

        The members worth probing are exactly the ones we suspect: they
        are the other side of the partition, and our reliable unicast
        layer will deliver the request once connectivity returns.
        """
        if self.state != "blocked" or self.view is None:
            return
        directory = self.context.directory
        if directory is None:
            return
        for candidate in directory.lookup(self.group):
            if candidate == self.endpoint:
                continue
            if candidate in self.suspected or not self.view.contains(candidate):
                self._merge_target = candidate
                self._send_merge_request()
                return

    # ==================================================================
    # Upcalls
    # ==================================================================

    def handle_up(self, upcall: Upcall) -> None:
        utype = upcall.type
        if utype is UpcallType.VIEW:
            return  # COM's connectivity snapshot; we own real views
        if utype is UpcallType.PROBLEM:
            if upcall.source is not None:
                self._suspect(upcall.source, via="problem")
            return
        if utype is UpcallType.LOST_MESSAGE:
            self.lost_messages += 1
            self.trace("lost_message_below", detail=str(upcall.extra))
            return
        if utype in (UpcallType.CAST, UpcallType.SEND) and upcall.message is not None:
            if upcall.message.top_owner() != self.name:
                self.pass_up(upcall)
                return
            self._dispatch(upcall)
            return
        self.pass_up(upcall)

    def _dispatch(self, upcall: Upcall) -> None:
        message = upcall.message
        header = message.pop_header(self.name)
        kind = header["kind"]
        if kind in (_DATA, _SEND_DATA):
            # The retransmission precopy keeps its own header entry (a
            # relay's receiver pops it); the dict is shared — read-only
            # by convention — so no deep copy.
            precopy = message.shallow_copy()
            precopy.push_owned_header(self.name, header)
        else:
            precopy = None
        if kind == _DATA:
            self._on_data(header, message, precopy, upcall)
        elif kind == _SEND_DATA:
            self._on_send_data(header, message, precopy, upcall.source)
        elif kind == _JOIN_REQ:
            self._on_join_req(header)
        elif kind == _FLUSH:
            self._on_flush(header)
        elif kind == _FLUSH_OK:
            self._on_flush_ok(header, upcall.source)
        elif kind == _INSTALL:
            self._on_install(header)
        elif kind == _LEAVE_REQ:
            self._on_leave_req(header)
        elif kind == _SUSPECT:
            # Suspicions are only meaningful within the view they were
            # formed in; a stale one (e.g. queued during a partition and
            # delivered after the heal) must not poison the new view.
            if self.view is not None and header["vid"] == self.view.view_id.epoch:
                self._suspect(header["origin"], via="peer")
        elif kind == _MERGE_REQ:
            self._on_merge_req(header)
        elif kind == _MERGE_PROBE:
            self._control(_MERGE_PROBE_ACK, [header["origin"]], origin=self.endpoint)
        elif kind == _MERGE_PROBE_ACK:
            self._on_merge_probe_ack(header["origin"])
        elif kind == _STABILITY:
            self._on_stability(header)
        elif kind == _MERGE_DENIED:
            self.trace("merge_denied", origin=str(header["origin"]))
            self.pass_up(
                Upcall(UpcallType.MERGE_DENIED, source=header["origin"])
            )

    # ------------------------------------------------------------------
    # Data reception
    # ------------------------------------------------------------------

    def _on_data(
        self,
        header: Dict[str, Any],
        message: Message,
        precopy: Message,
        upcall: Upcall,
    ) -> None:
        if self.view is None:
            self.stale_dropped += 1
            return
        vid = header["vid"]
        epoch = self.view.view_id.epoch
        if vid < epoch or self.state == "left":
            self.stale_dropped += 1
            return
        origin = header["origin"]
        if vid > epoch:
            self._future.setdefault(vid, []).append(
                (precopy, origin, upcall.type)
            )
            return
        if not self.view.contains(origin):
            # Epochs are only unique per component; a concurrent view in
            # another partition may share our epoch number, so data from
            # non-members must be rejected (COM's "spurious messages").
            self.stale_dropped += 1
            return
        seq = header["seq"]
        delivered = self.delivered.get(origin, 0)
        if seq > delivered + 65536:
            self.stale_dropped += 1  # garbled sequence number
            return
        if seq <= delivered:
            return  # duplicate (e.g. a relay of something we had)
        if seq == delivered + 1 and not self.pending.get(origin):
            # In-order fast path (the steady state): deliver without the
            # pending-slot round trip, reusing the incoming upcall when
            # it already is the CAST it will leave as.
            self.delivered[origin] = seq
            if self.vs:
                self.store[(origin, seq)] = precopy
            if self.context.trace.enabled:
                self.trace("deliver", origin=str(origin), seq=seq, vid=epoch)
            if upcall.type is UpcallType.CAST:
                upcall.source = origin
                self.pass_up(upcall)
            else:
                self.pass_up(
                    Upcall(UpcallType.CAST, message=message, source=origin)
                )
            if (
                self._pending_install is not None
                or self._premerge_vector is not None
            ):
                self._check_install()
            return
        slot = self.pending.setdefault(origin, {})
        if seq in slot:
            return
        slot[seq] = (message, precopy)
        self._drain_origin(origin)
        if self._pending_install is not None or self._premerge_vector is not None:
            self._check_install()

    def _drain_origin(self, origin: EndpointAddress) -> None:
        slot = self.pending.get(origin)
        if not slot:
            return
        next_seq = self.delivered.get(origin, 0) + 1
        while next_seq in slot:
            message, precopy = slot.pop(next_seq)
            self.delivered[origin] = next_seq
            if self.vs:
                self.store[(origin, next_seq)] = precopy
            self.trace(
                "deliver",
                origin=str(origin),
                seq=next_seq,
                vid=self.view.view_id.epoch,
            )
            self.pass_up(Upcall(UpcallType.CAST, message=message, source=origin))
            next_seq += 1

    def _on_send_data(
        self,
        header: Dict[str, Any],
        message: Message,
        precopy: Message,
        source: Optional[EndpointAddress],
    ) -> None:
        if self.view is None:
            self.stale_dropped += 1
            return
        vid = header["vid"]
        epoch = self.view.view_id.epoch
        if vid > epoch:
            # Sent in a view we are about to install (e.g. the view key
            # the new coordinator dispatched immediately on installing);
            # hold it until our own install catches up.
            self._future.setdefault(vid, []).append(
                (precopy, source or header["origin"], UpcallType.SEND)
            )
            return
        if vid < epoch:
            self.stale_dropped += 1
            return
        self.pass_up(
            Upcall(UpcallType.SEND, message=message, source=header["origin"])
        )

    # ------------------------------------------------------------------
    # Suspicion
    # ------------------------------------------------------------------

    def _suspect(self, member: EndpointAddress, via: str) -> None:
        if self.view is None or member == self.endpoint:
            return
        if not self.view.contains(member) and member not in self.joiners:
            return
        if self.external_fd is not None and via == "problem":
            self.external_fd.report_problem(self.endpoint, member)
            return
        if member in self.suspected:
            return
        self.suspected.add(member)
        self.trace("suspect", member=str(member), via=via)
        if self._am_coordinator():
            self._schedule_flush()
        else:
            self._control(
                _SUSPECT,
                [self._current_coordinator()],
                origin=member,
                vid=self.view.view_id.epoch,
            )

    def _on_fd_verdict(self, member: EndpointAddress) -> None:
        """A consistent verdict from the external failure detector."""
        self._suspect(member, via="external")

    def _current_coordinator(self) -> EndpointAddress:
        """Oldest member of the current view we do not suspect."""
        assert self.view is not None
        for member in self.view.members:
            if member not in self.suspected:
                return member
        return self.endpoint

    def _am_coordinator(self) -> bool:
        return (
            self.view is not None
            and self.state not in ("init", "joining", "left")
            and self._current_coordinator() == self.endpoint
        )

    # ------------------------------------------------------------------
    # Requests arriving at (or forwarded to) the coordinator
    # ------------------------------------------------------------------

    def _on_join_req(self, header: Dict[str, Any]) -> None:
        joiner = header["origin"]
        if self.view is None or self.state in ("init", "joining", "left"):
            return
        if not self._am_coordinator():
            self._control(_JOIN_REQ, [self._current_coordinator()], origin=joiner)
            return
        if self.view.contains(joiner) or joiner in self.joiners:
            return
        if not self.auto_grant:
            self._pending_merge_reqs[joiner] = [joiner]
            self.pass_up(Upcall(UpcallType.MERGE_REQUEST, source=joiner))
            return
        self.joiners.append(joiner)
        self.trace("joiner_accepted", joiner=str(joiner))
        self._schedule_flush()

    def _on_leave_req(self, header: Dict[str, Any]) -> None:
        leaver = header["origin"]
        if self.view is None or not self.view.contains(leaver):
            return
        self.leavers.add(leaver)
        if self._am_coordinator():
            self._schedule_flush()

    def _on_merge_req(self, header: Dict[str, Any]) -> None:
        their_coord = header["origin"]
        their_members = header["members"]
        their_vid = header["vid"]
        if self.view is None or self.state in ("init", "joining", "left"):
            return
        if not self._am_coordinator():
            self._control(
                _MERGE_REQ,
                [self._current_coordinator()],
                origin=their_coord,
                vid=their_vid,
                members=their_members,
            )
            return
        theirs = ViewId(epoch=their_vid, coordinator=their_coord)
        if self._policy_blocked:
            # A minority forbidden to install views cannot absorb anyone
            # (faithful Isis semantics: without a primary component, no
            # progress); it can only ask the primary to absorb *it*.
            self._control(_MERGE_DENIED, [their_coord], origin=self.endpoint)
            return
        merging_too = (
            self._merge_target is not None or self._merge_candidate is not None
        )
        if merging_too and self.view.view_id < theirs:
            # Mutual merge race: both coordinators asked the other to
            # absorb them.  The deterministic rule — the larger ViewId
            # absorbs (a progressed primary always outranks a stale
            # minority) — must break the tie, or two quiesced sides
            # would deny each other forever.  Here *they* outrank us.
            self._control(_MERGE_DENIED, [their_coord], origin=self.endpoint)
            return
        if self.state == "flushing":
            # Mid-flush: absorb on the next round rather than now.
            self._control(_MERGE_DENIED, [their_coord], origin=self.endpoint)
            return
        # Absorb (clearing any merge attempt of our own — we won the
        # race, or there was no race at all).  Being "blocked" is no
        # obstacle: absorbing is exactly how a blocked side recovers.
        self._merge_target = None
        self._merge_candidate = None
        if not self.auto_grant:
            self._pending_merge_reqs[their_coord] = list(their_members)
            self.pass_up(
                Upcall(
                    UpcallType.MERGE_REQUEST,
                    source=their_coord,
                    members=list(their_members),
                )
            )
            return
        self._absorb(their_coord, their_members, their_vid)

    def _absorb(
        self,
        their_coord: EndpointAddress,
        their_members: List[EndpointAddress],
        their_vid: int,
    ) -> None:
        """Take every member of a (younger) view on board as joiners."""
        added = False
        for member in their_members:
            if not self.view.contains(member) and member not in self.joiners:
                self.joiners.append(member)
                added = True
        if their_vid:
            self.absorb_vids.append(their_vid)
        self.trace(
            "merge_absorb",
            coordinator=str(their_coord),
            members=[str(m) for m in their_members],
        )
        if added:
            self._schedule_flush()

    # ==================================================================
    # The flush protocol
    # ==================================================================

    def _schedule_flush(self) -> None:
        if self._flush_scheduled or self.state in ("init", "joining", "left"):
            return
        self._flush_scheduled = True
        self.context.scheduler.call_soon(self._start_flush)

    def _start_flush(self) -> None:
        self._flush_scheduled = False
        if self.view is None or not self._am_coordinator():
            return
        if self.state == "left":
            return
        failed = [m for m in self.view.members if m in self.suspected]
        participants = [m for m in self.view.members if m not in self.suspected]
        survivors = [m for m in participants if m not in self.leavers]
        joiners = [
            j
            for j in self.joiners
            if not self.view.contains(j) and j not in self.suspected
        ]
        quiescing = self._merge_target is not None
        if not failed and not joiners and not quiescing:
            if not (self.leavers & set(self.view.members)):
                return  # nothing to reconfigure
        epoch = self.view.view_id.epoch
        round_no = max(self._responded[1] + 1 if self._responded[0] == epoch else 1, 1)
        if self.flush is not None:
            round_no = max(round_no, self.flush.round + 1)
        self.flush = _FlushState(
            round_no,
            participants=participants,
            new_members=survivors,
            failed=failed,
            joiners=joiners,
        )
        self.flushes_started += 1
        self.state = "flushing"
        self.trace(
            "flush_start",
            round=round_no,
            vid=epoch,
            failed=[str(f) for f in failed],
            joiners=[str(j) for j in joiners],
        )
        self._control(
            _FLUSH,
            participants,
            origin=self.endpoint,
            vid=epoch,
            round=round_no,
            failed=failed,
            joiners=joiners,
            members=participants,
        )
        self._flush_timer.start()

    def _flush_retry(self) -> None:
        """Coordinator watchdog: restart a flush that went quiet."""
        if self.flush is None or self.state not in ("flushing",):
            return
        if not self._am_coordinator():
            return
        self.trace("flush_restart", round=self.flush.round)
        self._schedule_flush()

    def _on_flush(self, header: Dict[str, Any]) -> None:
        if self.view is None:
            return
        vid = header["vid"]
        epoch = self.view.view_id.epoch
        if vid != epoch:
            return  # stale or premature; coordinator will retry
        key = (vid, header["round"])
        if key <= self._responded:
            return
        self._responded = key
        coordinator = header["origin"]
        failed = header["failed"]
        if self.state in ("normal", "blocked"):
            self.state = "flushing"
        self.pass_up(
            Upcall(UpcallType.FLUSH, members=list(failed), source=coordinator)
        )
        # Return unstable messages from failed members (Figure 2: C sends
        # its copy of M to the coordinator) before acknowledging.
        if self.vs:
            failed_set = set(failed)
            for (origin, seq), stored in sorted(
                self.store.items(), key=lambda item: (item[0][0], item[0][1])
            ):
                if origin in failed_set:
                    self.pass_down(
                        Downcall(
                            DowncallType.SEND,
                            message=stored.copy(),
                            members=[coordinator],
                        )
                    )
            vector = dict(self.delivered)
            vector[self.endpoint] = self.my_seq
        else:
            vector = {}
        self._control(
            _FLUSH_OK,
            [coordinator],
            origin=self.endpoint,
            vid=vid,
            round=header["round"],
            vector=vector,
        )

    def _on_flush_ok(
        self, header: Dict[str, Any], sender: Optional[EndpointAddress]
    ) -> None:
        flush = self.flush
        if flush is None or self.view is None:
            return
        if header["vid"] != self.view.view_id.epoch or header["round"] != flush.round:
            return
        member = header["origin"]
        flush.vectors[member] = dict(header["vector"])
        if flush.complete:
            self._flush_complete()

    def _flush_complete(self) -> None:
        flush = self.flush
        assert flush is not None and self.view is not None
        epoch = self.view.view_id.epoch
        # The final cut: per origin, the most anyone delivered (for the
        # origins themselves, their reported sent count).
        final: Dict[EndpointAddress, int] = {}
        for vector in flush.vectors.values():
            for origin, count in vector.items():
                final[origin] = max(final.get(origin, 0), count)
        # A member that never heard from an origin reports nothing for
        # it — that member is missing *everything* from that origin.
        low: Dict[EndpointAddress, int] = {
            origin: min(v.get(origin, 0) for v in flush.vectors.values())
            for origin in final
        }
        # Rebroadcast whatever somebody may be missing and we hold.
        # Iterating the store (rather than the numeric range) keeps this
        # bounded even if a garbled vector reported an absurd count.
        for (origin, seq) in sorted(self.store, key=lambda k: (k[0], k[1])):
            if low.get(origin, 0) < seq <= final.get(origin, 0):
                self.relays_sent += 1
                self.pass_down(
                    Downcall(
                        DowncallType.CAST, message=self.store[(origin, seq)].copy()
                    )
                )
        quiescing = self._merge_target is not None
        # The policy guards against split-brain, so it judges the whole
        # surviving component (participants) — a voluntary leaver is
        # present and consenting, and must not push its group below
        # quorum by the mere act of leaving.
        if not quiescing and not self.policy.may_install(
            self.view.members, flush.participants
        ):
            # Primary-partition policy: we are a minority component.
            # Quiesce the members and keep probing for a merge instead.
            self.trace("blocked", survivors=[str(s) for s in flush.new_members])
            self._control(
                _INSTALL,
                flush.participants,
                origin=self.endpoint,
                vid=epoch,
                new_vid=0,
                round=flush.round,
                vector=final,
            )
            self.state = "blocked"
            self._policy_blocked = True
            self._merge_timer.start()
            return
        if quiescing:
            # Pre-merge quiesce: synchronize the cut, then ask the older
            # view to absorb us; its INSTALL supersedes ours.
            self._control(
                _INSTALL,
                flush.participants,
                origin=self.endpoint,
                vid=epoch,
                new_vid=0,
                round=flush.round,
                vector=final,
            )
            self.state = "blocked"
            self._send_merge_request()
            self._merge_timer.start()
            return
        new_vid = max([epoch] + self.absorb_vids) + 1
        new_members = flush.new_members + sorted(
            j for j in flush.joiners if j not in flush.new_members
        )
        targets = list(
            dict.fromkeys(flush.participants + flush.joiners)
        )
        self.trace(
            "install_sent",
            new_vid=new_vid,
            members=[str(m) for m in new_members],
        )
        self._control(
            _INSTALL,
            targets,
            origin=self.endpoint,
            vid=epoch,
            new_vid=new_vid,
            round=flush.round,
            members=new_members,
            vector=final,
        )

    # ------------------------------------------------------------------
    # Install
    # ------------------------------------------------------------------

    def _on_install(self, header: Dict[str, Any]) -> None:
        if self.state == "left":
            return
        new_vid = header["new_vid"]
        vector = dict(header["vector"])
        if new_vid == 0:
            # Quiesce-only install (pre-merge or blocked minority).
            if self.view is not None and header["vid"] == self.view.view_id.epoch:
                self._premerge_vector = vector
                if self.state in ("normal", "flushing"):
                    self.state = "blocked"
                self._check_install()
            return
        members = header["members"]
        if self.endpoint not in members:
            if (
                self.view is not None
                and header["vid"] == self.view.view_id.epoch
                and self.endpoint in self.leavers
            ):
                # Our graceful leave completed.
                self._exit()
            return
        if self.view is not None and new_vid <= self.view.view_id.epoch:
            return  # stale install
        new_view = View(
            group=self.group,
            view_id=ViewId(epoch=new_vid, coordinator=members[0]),
            members=tuple(members),
        )
        if self.view is not None and header["vid"] == self.view.view_id.epoch:
            wait_vector = vector
        else:
            # Foreign install (we are a joiner or an absorbed view); we
            # owe deliveries only against our own quiesce vector.
            wait_vector = self._premerge_vector or {}
        self._pending_install = (new_view, wait_vector)
        self._check_install()

    def _check_install(self) -> None:
        if self._pending_install is None:
            return
        new_view, wait_vector = self._pending_install
        own_members = set(self.view.members) if self.view is not None else set()
        for origin, needed in wait_vector.items():
            if origin not in own_members and origin != self.endpoint:
                continue
            if self.delivered.get(origin, 0) < needed:
                return  # still catching up; NAK/relays will close the gap
        if self._premerge_vector is not None:
            for origin, needed in self._premerge_vector.items():
                if origin not in own_members and origin != self.endpoint:
                    continue
                if self.delivered.get(origin, 0) < needed:
                    return
        self._pending_install = None
        self._install_view(new_view)

    def _install_view(self, new_view: View) -> None:
        previous = self.view
        self.view = new_view
        self.views_installed += 1
        epoch = new_view.view_id.epoch
        # Reset per-view machinery.
        self.my_seq = 0
        self.delivered = {}
        self.store = {}
        self.pending = {}
        self._peer_vectors = {}  # stability restarts with the view
        self.flush = None
        self._responded = (epoch, 0)
        self._premerge_vector = None
        self._pending_install = None
        self._merge_target = None
        self._merge_candidate = None
        self._policy_blocked = False
        self.absorb_vids = []
        self._flush_timer.cancel()
        self._join_timer.cancel()
        self._merge_timer.stop()
        member_set = set(new_view.members)
        # Installing a view asserts its members are alive: suspicions
        # from the previous view (e.g. across a healed partition) must
        # not carry over, or a rejoined member would immediately flush
        # the others out again.  Real deaths are re-detected promptly.
        self.suspected = set()
        self.leavers = {l for l in self.leavers if l in member_set}
        self.joiners = [j for j in self.joiners if j not in member_set]
        self.state = "normal"
        self.trace(
            "view",
            vid=epoch,
            members=[str(m) for m in new_view.members],
        )
        # Tell the layers below (destination set + era) and above.
        self.pass_down(
            Downcall(
                DowncallType.VIEW,
                members=list(new_view.members),
                extra={"epoch": epoch},
            )
        )
        if previous is not None:
            self.pass_up(Upcall(UpcallType.FLUSH_OK, view=new_view))
        for leaver in set(previous.members) - member_set if previous else set():
            self.pass_up(Upcall(UpcallType.LEAVE, source=leaver))
        self.pass_up(
            Upcall(
                UpcallType.VIEW, view=new_view, members=list(new_view.members)
            )
        )
        # Replay data that raced ahead of this install.
        for precopy, origin, utype in self._future.pop(epoch, []):
            self._dispatch(Upcall(utype, message=precopy, source=origin))
        for vid in list(self._future):
            if vid <= epoch:
                del self._future[vid]
        # Casts queued while the view was in motion go out in this view.
        queued, self.queued_casts = self.queued_casts, []
        for downcall in queued:
            self._cast_now(downcall)
        # More work pending (e.g. joiners who arrived mid-flush)?
        if self._am_coordinator() and (
            self.suspected or self.joiners or (self.leavers & member_set)
        ):
            self._schedule_flush()

    # ------------------------------------------------------------------
    # Leaving
    # ------------------------------------------------------------------

    # ------------------------------------------------------------------
    # Stability gossip and store pruning
    # ------------------------------------------------------------------

    def _stability_tick(self) -> None:
        if self.view is None or self.state != "normal" or self.view.size < 2:
            return
        if not self.store:
            return
        vector = dict(self.delivered)
        vector[self.endpoint] = self.my_seq
        self._control(
            _STABILITY,
            [m for m in self.view.members if m != self.endpoint],
            origin=self.endpoint,
            vid=self.view.view_id.epoch,
            vector=vector,
        )
        self._prune_store()

    def _on_stability(self, header: Dict[str, Any]) -> None:
        if self.view is None or header["vid"] != self.view.view_id.epoch:
            return
        self._peer_vectors[header["origin"]] = dict(header["vector"])
        self._prune_store()

    def _prune_store(self) -> None:
        """Drop stored messages every view member is known to have.

        A message delivered everywhere can never be needed by a flush
        relay, so logging it serves nobody (the paper's point that only
        *unstable* messages need logging).
        """
        if self.view is None or not self.store:
            return
        members = list(self.view.members)
        vectors = []
        for member in members:
            if member == self.endpoint:
                own = dict(self.delivered)
                own[self.endpoint] = self.my_seq
                vectors.append(own)
            else:
                vector = self._peer_vectors.get(member)
                if vector is None:
                    return  # no full picture yet; keep everything
                vectors.append(vector)
        stable: Dict[EndpointAddress, int] = {}
        origins = {origin for (origin, _seq) in self.store}
        for origin in origins:
            stable[origin] = min(v.get(origin, 0) for v in vectors)
        before = len(self.store)
        self.store = {
            (origin, seq): message
            for (origin, seq), message in self.store.items()
            if seq > stable.get(origin, 0)
        }
        self.store_pruned += before - len(self.store)

    def _exit(self) -> None:
        if self.state == "left":
            return
        self.state = "left"
        self._flush_timer.cancel()
        self._join_timer.cancel()
        self._merge_timer.stop()
        self.trace("exit")
        # COM unregisters us and raises the EXIT upcall.
        self.pass_down(Downcall(DowncallType.LEAVE))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _control(
        self,
        kind: int,
        targets: List[EndpointAddress],
        **fields: Any,
    ) -> None:
        """Send one control message reliably to each target (self included:
        the COM loopback path delivers it like any other message)."""
        if not targets:
            return
        message = Message()
        header = {"kind": kind}
        header.update(fields)
        message.push_header(self.name, header)
        self.pass_down(
            Downcall(DowncallType.SEND, message=message, members=list(targets))
        )

    def dump(self):
        info = super().dump()
        info.update(
            state=self.state,
            view=str(self.view) if self.view else None,
            my_seq=self.my_seq,
            views_installed=self.views_installed,
            flushes_started=self.flushes_started,
            relays_sent=self.relays_sent,
            suspected=[str(s) for s in sorted(self.suspected)],
            joiners=[str(j) for j in self.joiners],
            stale_dropped=self.stale_dropped,
            store_size=len(self.store),
            store_pruned=self.store_pruned,
        )
        return info
