"""SYNC — clock synchronization (Figure 1: "synchronization, e.g. of clocks").

Every simulated process has its own drifting wall clock
(:meth:`repro.core.process.Process.local_time`).  The SYNC layer runs
Cristian's algorithm against the group coordinator: members
periodically ask the coordinator for its time, halve the measured round
trip, and maintain a smoothed offset estimate.  Applications read
:meth:`SyncClockLayer.synchronized_time` for a group-consistent clock.

Accuracy is bounded by round-trip asymmetry — on the simulated LAN
(symmetric sub-millisecond links) the residual error is microseconds,
which the tests assert.
"""

from __future__ import annotations

from typing import Optional

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.message import Message
from repro.core.stack import register_layer
from repro.core.view import View

_REQ = 0
_RESP = 1

hdr.register(
    "SYNC",
    fields=[
        ("kind", hdr.U8),
        ("t0", hdr.F64),  # requester's clock at send (echoed back)
        ("server", hdr.F64),  # coordinator's clock at reply
    ],
    defaults={"t0": 0.0, "server": 0.0},
)


@register_layer
class SyncClockLayer(Layer):
    """Cristian's algorithm against the view coordinator.

    Config:
        period (float): synchronization round period (default 0.5 s).
        smoothing (float): EMA factor for the offset estimate, 0..1,
            higher = snappier (default 0.4).
    """

    name = "SYNC"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.period = float(config.get("period", 0.5))
        self.smoothing = float(config.get("smoothing", 0.4))
        self.view: Optional[View] = None
        #: Current estimate of (coordinator clock - local clock).
        self.offset = 0.0
        self.synchronized = False
        self.rounds_completed = 0
        self._timer = None

    def start(self) -> None:
        self._timer = self.periodic(self.period, self._sync_round)
        self._timer.start()

    # ------------------------------------------------------------------

    def local_time(self) -> float:
        """This process's raw (drifting) clock."""
        process = self.context.process
        if process is None:
            return self.now
        return process.local_time()

    def synchronized_time(self) -> float:
        """The group-consistent clock: local time plus learned offset."""
        return self.local_time() + self.offset

    # ------------------------------------------------------------------

    def _coordinator(self):
        if self.view is None:
            return None
        return self.view.members[0]

    def _sync_round(self) -> None:
        coordinator = self._coordinator()
        if coordinator is None or coordinator == self.endpoint:
            # The coordinator is the time source by definition.
            self.offset = 0.0
            self.synchronized = self.view is not None
            return
        request = Message()
        request.push_header(
            self.name, {"kind": _REQ, "t0": self.local_time()}
        )
        self.pass_down(
            Downcall(DowncallType.SEND, message=request, members=[coordinator])
        )

    def handle_up(self, upcall: Upcall) -> None:
        if upcall.type is UpcallType.VIEW and upcall.view is not None:
            self.view = upcall.view
            self.pass_up(upcall)
            return
        message = upcall.message
        if (
            upcall.type is not UpcallType.SEND
            or message is None
            or message.peek_header(self.name) is None
        ):
            self.pass_up(upcall)
            return
        header = message.pop_header(self.name)
        if header["kind"] == _REQ:
            reply = Message()
            reply.push_header(
                self.name,
                {"kind": _RESP, "t0": header["t0"], "server": self.local_time()},
            )
            self.pass_down(
                Downcall(DowncallType.SEND, message=reply, members=[upcall.source])
            )
            return
        # A response: Cristian's estimate.
        t2 = self.local_time()
        rtt = t2 - header["t0"]
        if rtt < 0:
            return  # clock stepped mid-round; discard the sample
        estimate = header["server"] + rtt / 2.0 - t2
        if self.synchronized:
            self.offset += self.smoothing * (estimate - self.offset)
        else:
            self.offset = estimate
            self.synchronized = True
        self.rounds_completed += 1

    def dump(self):
        info = super().dump()
        info.update(
            offset=self.offset,
            synchronized=self.synchronized,
            rounds_completed=self.rounds_completed,
        )
        return info
