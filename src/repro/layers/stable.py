"""STABLE — application-defined message stability (Section 9).

"A message is called stable if it has been processed by all its
surviving destination processes. ... Horus provides a downcall,
horus_ack(m), with which the application process informs Horus when it
has processed the message m.  Eventually, this information propagates
back to the sender of the message, and onwards to other receivers.  It
is reported using a STABLE upcall.  The upcall contains detailed
information about the stability of the messages ... in the form of a
so-called stability matrix."

The *meaning* of "processed" is entirely the application's — displayed,
logged to disk, safe to delete — which is the paper's answer to the
end-to-end argument: the mechanism is generic, the semantics are
end-to-end.

Properties (Table 3): requires P3, P4, P8, P9, P10, P11, P12, P15;
provides P14 (stability information).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.message import Message
from repro.core.stack import register_layer
from repro.core.view import View
from repro.net.address import EndpointAddress

_DATA = 0  # data carrying a stability id
_ACKVEC = 1  # gossip: my contiguous-ack frontier per origin

hdr.register(
    "STABLE",
    fields=[
        ("kind", hdr.U8),
        ("sid", hdr.U64),
        ("vector", hdr.MapOf(hdr.ADDRESS, hdr.U64)),
    ],
    defaults={"sid": 0, "vector": {}},
)


class _AckTracker:
    """Turns possibly out-of-order acks into a contiguous frontier."""

    __slots__ = ("frontier", "out_of_order")

    def __init__(self) -> None:
        self.frontier = 0  # every sid <= frontier is acked
        self.out_of_order: Set[int] = set()

    def ack(self, sid: int) -> None:
        if sid <= self.frontier:
            return
        self.out_of_order.add(sid)
        while self.frontier + 1 in self.out_of_order:
            self.frontier += 1
            self.out_of_order.discard(self.frontier)


@register_layer
class StableLayer(Layer):
    """Tracks which messages every member has *processed*.

    Each data cast gets a per-sender stability id; receivers learn it
    via ``DeliveredMessage.info["stable_id"]`` and acknowledge with the
    ``ack`` downcall (``horus_ack``).  Ack frontiers are gossiped
    periodically; the resulting stability matrix rises to the
    application in STABLE upcalls.

    Config:
        gossip_period (float): ack-vector broadcast period (default 0.2 s).
        auto_ack (bool): acknowledge on delivery automatically — i.e.
            define "processed" as "received" (default False).
    """

    name = "STABLE"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.gossip_period = float(config.get("gossip_period", 0.2))
        self.auto_ack = bool(config.get("auto_ack", False))
        self.view: Optional[View] = None
        self.my_sid = 0
        #: acks[member][origin] = member's contiguous ack frontier.
        self.acks: Dict[EndpointAddress, Dict[EndpointAddress, int]] = {}
        self._local: Dict[EndpointAddress, _AckTracker] = {}
        self._gossip = None
        self._last_frontier: Dict[EndpointAddress, int] = {}
        self.stable_upcalls = 0

    def start(self) -> None:
        self._gossip = self.periodic(self.gossip_period, self._gossip_tick)
        self._gossip.start()

    # ------------------------------------------------------------------
    # Downcalls
    # ------------------------------------------------------------------

    def handle_down(self, downcall: Downcall) -> None:
        if downcall.type is DowncallType.CAST and downcall.message is not None:
            self.my_sid += 1
            downcall.message.push_header(
                self.name, {"kind": _DATA, "sid": self.my_sid}
            )
            self.pass_down(downcall)
        elif downcall.type in (DowncallType.ACK, DowncallType.STABLE):
            stable_id = downcall.extra.get("stable_id")
            if stable_id is not None:
                origin, sid = stable_id
                self._record_local_ack(origin, sid)
        else:
            self.pass_down(downcall)

    def _record_local_ack(self, origin: EndpointAddress, sid: int) -> None:
        tracker = self._local.setdefault(origin, _AckTracker())
        tracker.ack(sid)

    # ------------------------------------------------------------------
    # Upcalls
    # ------------------------------------------------------------------

    def handle_up(self, upcall: Upcall) -> None:
        if upcall.type is UpcallType.VIEW and upcall.view is not None:
            self._new_view(upcall.view)
            self.pass_up(upcall)
            return
        if upcall.type is not UpcallType.CAST or upcall.message is None:
            self.pass_up(upcall)
            return
        header = upcall.message.peek_header(self.name)
        if header is None:
            self.pass_up(upcall)
            return
        upcall.message.pop_header(self.name)
        if header["kind"] == _ACKVEC:
            self._on_ackvec(upcall.source, header["vector"])
            return
        stable_id = (upcall.source, header["sid"])
        if self.auto_ack:
            self._record_local_ack(*stable_id)
        upcall.extra["stable_id"] = stable_id
        self.pass_up(upcall)

    def _new_view(self, view: View) -> None:
        # Stability is a per-view notion: the cut restarts with the view.
        self.view = view
        self.my_sid = 0
        self.acks = {}
        self._local = {}
        self._last_frontier = {}

    # ------------------------------------------------------------------
    # Gossip and the stability matrix
    # ------------------------------------------------------------------

    def _gossip_tick(self) -> None:
        if self.view is None:
            return
        vector = {origin: t.frontier for origin, t in self._local.items()}
        message = Message()
        message.push_header(self.name, {"kind": _ACKVEC, "vector": vector})
        self.pass_down(Downcall(DowncallType.CAST, message=message))

    def _on_ackvec(
        self, member: EndpointAddress, vector: Dict[EndpointAddress, int]
    ) -> None:
        self.acks[member] = dict(vector)
        frontier = self.stability_frontier()
        if frontier != self._last_frontier:
            self._last_frontier = frontier
            self.stable_upcalls += 1
            self.pass_up(
                Upcall(
                    UpcallType.STABLE,
                    extra={"matrix": self.matrix(), "frontier": frontier},
                )
            )

    def matrix(self) -> Dict[EndpointAddress, Dict[EndpointAddress, int]]:
        """The stability matrix: per member, per origin, acked frontier."""
        snapshot = {m: dict(v) for m, v in self.acks.items()}
        snapshot[self.endpoint] = {
            origin: t.frontier for origin, t in self._local.items()
        }
        return snapshot

    def stability_frontier(self) -> Dict[EndpointAddress, int]:
        """Per origin: the highest sid processed by *every* member."""
        if self.view is None:
            return {}
        matrix = self.matrix()
        frontier: Dict[EndpointAddress, int] = {}
        origins = set()
        for vector in matrix.values():
            origins.update(vector)
        for origin in origins:
            frontier[origin] = min(
                matrix.get(member, {}).get(origin, 0)
                for member in self.view.members
            )
        return frontier

    def is_stable(self, stable_id: Tuple[EndpointAddress, int]) -> bool:
        """Whether the message with this id is known stable everywhere."""
        origin, sid = stable_id
        return self.stability_frontier().get(origin, 0) >= sid

    def dump(self):
        info = super().dump()
        info.update(
            my_sid=self.my_sid,
            stable_upcalls=self.stable_upcalls,
            frontier={str(k): v for k, v in self.stability_frontier().items()},
            auto_ack=self.auto_ack,
        )
        return info
