"""KEYDIST — group key distribution (Figure 1: "key distribution, security").

Section 11: "A security architecture for Horus provides for
authentication and encryption of messages, using a novel approach that
combines security features with fault-tolerance."  The combination here
is exactly that: key distribution rides the membership machinery — the
*coordinator* of each view generates a fresh group key and unicasts it
to every member, wrapped under that member's individual key.  A member
excluded from a view never learns later keys (forward secrecy across
membership changes), and a joiner never learns earlier ones.

Composes with the CRYPT layer below: KEYDIST publishes a key source in
the stack's shared context, and CRYPT encrypts under the current view
key (falling back to its static key until the first view key arrives).
Stack as ``KEYDIST:MBRSHIP:...:CRYPT:COM``? No — CRYPT must be *below*
the membership control traffic it protects:
``KEYDIST:MBRSHIP:FRAG:NAK:CRYPT:COM``.

Per-member wrapping keys are derived from a deployment master secret
(config ``master_secret``), standing in for the per-member PKI a real
deployment would use.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, Optional

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.message import Message
from repro.core.stack import register_layer
from repro.core.view import View
from repro.net.address import EndpointAddress

_KEY = 0  # coordinator -> member: the wrapped view key

hdr.register(
    "KEYDIST",
    fields=[
        ("kind", hdr.U8),
        ("kid", hdr.U32),
        ("wrapped", hdr.VARBYTES),
    ],
)

_KEY_BYTES = 32


def _member_key(master: bytes, member: EndpointAddress) -> bytes:
    """The per-member wrapping key (PKI stand-in)."""
    return hmac.new(master, member.marshal(), hashlib.sha256).digest()


def _wrap(wrapping_key: bytes, key: bytes, kid: int) -> bytes:
    pad = hashlib.sha256(wrapping_key + kid.to_bytes(4, "big")).digest()
    return bytes(a ^ b for a, b in zip(key, pad))


class GroupKeySource:
    """What KEYDIST publishes for CRYPT: kid-indexed view keys."""

    def __init__(self) -> None:
        self._keys: Dict[int, bytes] = {}
        self._current_kid = 0

    def install(self, kid: int, key: bytes) -> None:
        self._keys[kid] = key
        self._current_kid = max(self._current_kid, kid)

    def current(self) -> Optional[tuple]:
        """``(kid, key)`` for encryption, or None before the first key."""
        if not self._current_kid:
            return None
        return self._current_kid, self._keys[self._current_kid]

    def key_for(self, kid: int) -> Optional[bytes]:
        """Decryption lookup; None if we never learned this view's key."""
        return self._keys.get(kid)


@register_layer
class KeyDistributionLayer(Layer):
    """Per-view group keys, distributed by the coordinator.

    Config:
        master_secret (str|bytes): deployment secret from which per-member
            wrapping keys derive (default "horus-master"; configure it).
    """

    name = "KEYDIST"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        secret = config.get("master_secret", "horus-master")
        self.master = (
            secret.encode("utf-8") if isinstance(secret, str) else bytes(secret)
        )
        self.key_source = GroupKeySource()
        self.view: Optional[View] = None
        self.keys_generated = 0
        self.keys_installed = 0

    def start(self) -> None:
        # Publish for a CRYPT layer anywhere below (it looks this up lazily).
        self.context.shared["group_key_source"] = self.key_source

    def handle_up(self, upcall: Upcall) -> None:
        if upcall.type is UpcallType.VIEW and upcall.view is not None:
            self.view = upcall.view
            if upcall.view.members[0] == self.endpoint:
                self._distribute(upcall.view)
            self.pass_up(upcall)
            return
        message = upcall.message
        if (
            upcall.type is not UpcallType.SEND
            or message is None
            or message.peek_header(self.name) is None
        ):
            self.pass_up(upcall)
            return
        header = message.pop_header(self.name)
        if header["kind"] == _KEY:
            wrapping = _member_key(self.master, self.endpoint)
            key = _wrap(wrapping, bytes(header["wrapped"]), header["kid"])
            self.key_source.install(header["kid"], key)
            self.keys_installed += 1

    def _distribute(self, view: View) -> None:
        """Coordinator: fresh key for this view, wrapped per member."""
        kid = view.view_id.epoch
        key = bytes(
            self.context.rng.getrandbits(8) for _ in range(_KEY_BYTES)
        )
        self.key_source.install(kid, key)
        self.keys_generated += 1
        self.keys_installed += 1
        for member in view.members:
            if member == self.endpoint:
                continue
            wrapped = _wrap(_member_key(self.master, member), key, kid)
            message = Message()
            message.push_header(
                self.name, {"kind": _KEY, "kid": kid, "wrapped": wrapped}
            )
            self.pass_down(
                Downcall(DowncallType.SEND, message=message, members=[member])
            )

    def dump(self):
        info = super().dump()
        current = self.key_source.current()
        info.update(
            current_kid=current[0] if current else None,
            keys_generated=self.keys_generated,
            keys_installed=self.keys_installed,
        )
        return info
