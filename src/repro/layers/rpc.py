"""RPC — client/server interactions over a group (Figure 1).

The x-kernel comparison in Section 12 notes that "even simple
request-response style communication is not always easy to map down" to
a point-to-point composition framework; in Horus it is just another
layer.  RPCL matches requests to replies with correlation ids over the
group's reliable subset sends, adds timeout/retry, and — because the
group is the addressing unit — supports *anycast* calls served by
whichever member currently owns the role.

Application interface (via ``focus("RPC")``)::

    rpc = handle.focus("RPC")
    rpc.register_handler(lambda method, body, caller: body.upper())
    rpc.call(server_address, "echo", b"hi", on_reply=print)
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.message import Message
from repro.core.stack import register_layer
from repro.net.address import EndpointAddress

_REQUEST = 0
_REPLY = 1
_ERROR = 2

hdr.register(
    "RPC",
    fields=[
        ("kind", hdr.U8),
        ("call_id", hdr.U64),
        ("method", hdr.TEXT),
    ],
    defaults={"method": ""},
)

#: handler(method, body, caller) -> bytes (reply body) or raises.
RpcHandler = Callable[[str, bytes, EndpointAddress], bytes]
ReplyCallback = Callable[[Optional[bytes], Optional[str]], Any]


class _PendingCall:
    __slots__ = (
        "on_reply", "timer", "target", "method", "body", "retries", "anycast"
    )

    def __init__(
        self, on_reply, timer, target, method, body, retries, anycast=False
    ) -> None:
        self.on_reply = on_reply
        self.timer = timer
        self.target = target
        self.method = method
        self.body = body
        self.retries = retries
        self.anycast = anycast


@register_layer
class RpcLayer(Layer):
    """Correlated request/reply with timeout and retry.

    Config:
        timeout (float): per-attempt reply deadline (default 1.0 s).
        retries (int): re-sends before reporting failure (default 2).
    """

    name = "RPC"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.timeout = float(config.get("timeout", 1.0))
        self.retries = int(config.get("retries", 2))
        self._next_call_id = 0
        self._pending: Dict[int, _PendingCall] = {}
        self._handler: Optional[RpcHandler] = None
        self._view = None
        self.calls_sent = 0
        self.replies_served = 0
        self.timeouts = 0

    # ------------------------------------------------------------------
    # Application surface (reached via the focus downcall)
    # ------------------------------------------------------------------

    def register_handler(self, handler: RpcHandler) -> None:
        """Install the server-side request handler for this member."""
        self._handler = handler

    def call(
        self,
        target: EndpointAddress,
        method: str,
        body: bytes,
        on_reply: ReplyCallback,
        _anycast: bool = False,
    ) -> int:
        """Invoke ``method`` on ``target``; ``on_reply(body, error)``
        fires exactly once (reply, error string, or ``'timeout'``)."""
        self._next_call_id += 1
        call_id = self._next_call_id
        timer = self.one_shot(self.timeout, self._on_timeout, call_id)
        self._pending[call_id] = _PendingCall(
            on_reply, timer, target, method, bytes(body), self.retries,
            anycast=_anycast,
        )
        self._transmit(call_id)
        return call_id

    def call_anycast(
        self, method: str, body: bytes, on_reply: ReplyCallback
    ) -> Optional[int]:
        """Invoke ``method`` on whichever member currently serves it.

        The server is the view member whose rank is ``hash(method)``
        modulo the group size — every member computes the same owner
        (consistent views, P15), so role assignment needs no directory.
        When the owner crashes, the next view re-maps the role and the
        retry machinery redirects automatically.
        """
        target = self.anycast_owner(method)
        if target is None:
            on_reply(None, "no view yet")
            return None
        return self.call(target, method, body, on_reply, _anycast=True)

    def anycast_owner(self, method: str):
        """The member currently responsible for ``method`` (or None)."""
        if self._view is None or self._view.size == 0:
            return None
        rank = zlib.crc32(method.encode("utf-8")) % self._view.size
        return self._view.members[rank]

    def _transmit(self, call_id: int) -> None:
        pending = self._pending.get(call_id)
        if pending is None:
            return
        request = Message(pending.body)
        request.push_header(
            self.name,
            {"kind": _REQUEST, "call_id": call_id, "method": pending.method},
        )
        self.calls_sent += 1
        self.pass_down(
            Downcall(DowncallType.SEND, message=request, members=[pending.target])
        )
        pending.timer.start()

    def _on_timeout(self, call_id: int) -> None:
        pending = self._pending.get(call_id)
        if pending is None:
            return
        if pending.retries > 0:
            pending.retries -= 1
            # Anycast calls re-map to the method's current owner when
            # the original target left the view; direct-addressed calls
            # keep their target (the caller chose it explicitly).
            if (
                pending.anycast
                and self._view is not None
                and not self._view.contains(pending.target)
            ):
                owner = self.anycast_owner(pending.method)
                if owner is not None:
                    pending.target = owner
            self._transmit(call_id)
            return
        del self._pending[call_id]
        self.timeouts += 1
        pending.on_reply(None, "timeout")

    # ------------------------------------------------------------------
    # Wire handling
    # ------------------------------------------------------------------

    def handle_up(self, upcall: Upcall) -> None:
        if upcall.type is UpcallType.VIEW and upcall.view is not None:
            self._view = upcall.view
            self.pass_up(upcall)
            return
        message = upcall.message
        if (
            upcall.type is not UpcallType.SEND
            or message is None
            or message.peek_header(self.name) is None
        ):
            self.pass_up(upcall)
            return
        header = message.pop_header(self.name)
        kind = header["kind"]
        if kind == _REQUEST:
            self._serve(header, message, upcall.source)
        else:
            self._complete(header, message, kind)

    def _serve(self, header: Dict[str, Any], message: Message,
               caller: EndpointAddress) -> None:
        if self._handler is None:
            self._respond(caller, header["call_id"], _ERROR, b"no handler")
            return
        try:
            reply_body = self._handler(
                header["method"], message.body_bytes(), caller
            )
            self.replies_served += 1
            self._respond(caller, header["call_id"], _REPLY, bytes(reply_body))
        except Exception as exc:  # the error crosses the wire, typed
            self._respond(
                caller, header["call_id"], _ERROR, str(exc).encode("utf-8")
            )

    def _respond(self, caller, call_id: int, kind: int, body: bytes) -> None:
        reply = Message(body)
        reply.push_header(self.name, {"kind": kind, "call_id": call_id})
        self.pass_down(
            Downcall(DowncallType.SEND, message=reply, members=[caller])
        )

    def _complete(self, header: Dict[str, Any], message: Message, kind: int) -> None:
        pending = self._pending.pop(header["call_id"], None)
        if pending is None:
            return  # duplicate reply after a retry — already answered
        pending.timer.cancel()
        if kind == _REPLY:
            pending.on_reply(message.body_bytes(), None)
        else:
            pending.on_reply(None, message.body_bytes().decode("utf-8"))

    def dump(self):
        info = super().dump()
        info.update(
            pending=len(self._pending),
            calls_sent=self.calls_sent,
            replies_served=self.replies_served,
            timeouts=self.timeouts,
        )
        return info
