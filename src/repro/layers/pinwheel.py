"""PINWHEEL — rotating stability aggregation.

Section 10: "an application can decide whether or not it needs
end-to-end guarantees, and, if so, whether STABLE or PINWHEEL will be
optimal."  Where STABLE has every member gossip its ack vector every
period (N messages per period), PINWHEEL rotates: in each period
exactly *one* member — chosen by rank from the virtual clock, no token
messages needed — broadcasts its vector.  Background traffic drops from
N to 1 message per period, at the price of stability information that
is up to N periods staler; the Section 10 benchmark quantifies exactly
this trade.

Properties (Table 3): requires P3, P8, P9, P10, P15; provides P14.
"""

from __future__ import annotations

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType
from repro.core.layer import Layer
from repro.core.message import Message
from repro.core.stack import register_layer
from repro.layers.stable import StableLayer

hdr.register(
    "PINWHEEL",
    fields=[
        ("kind", hdr.U8),
        ("sid", hdr.U64),
        ("vector", hdr.MapOf(hdr.ADDRESS, hdr.U64)),
    ],
    defaults={"sid": 0, "vector": {}},
)

_ACKVEC = 1


@register_layer
class PinwheelLayer(StableLayer):
    """STABLE's bookkeeping with a rotating single-broadcaster schedule.

    Config:
        gossip_period (float): slot length; one member broadcasts per
            slot (default 0.2 s).
        auto_ack (bool): as in STABLE.
    """

    name = "PINWHEEL"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self._slot = 0
        self.broadcasts_sent = 0

    def _gossip_tick(self) -> None:
        """Broadcast only when the pinwheel points at us."""
        if self.view is None:
            return
        self._slot += 1
        turn = self._slot % self.view.size
        if self.view.rank_of(self.endpoint) != turn:
            return
        vector = {origin: t.frontier for origin, t in self._local.items()}
        message = Message()
        message.push_header(self.name, {"kind": _ACKVEC, "vector": vector})
        self.broadcasts_sent += 1
        self.pass_down(Downcall(DowncallType.CAST, message=message))

    def dump(self):
        info = super().dump()
        info.update(broadcasts_sent=self.broadcasts_sent, slot=self._slot)
        return info
