"""XFER — coordinator-driven state transfer to joiners (Section 9).

"It is straightforward to implement replicated data ... a member that
joins mid-life receives a snapshot from the coordinator (the paper's
'joining a group and obtaining its state') before applying updates."
This layer generalizes the piggyback logic that used to live privately
in :mod:`repro.toolkit.replicated_data` into a stackable protocol:

* the application (or toolkit client) binds a ``provider`` (serialize
  my state) and an ``installer`` (adopt an authoritative state) via
  :meth:`StateTransferLayer.bind`;
* on every view with more than one member, a *synced* coordinator
  streams ``(snapshot_epoch, chunks…, done)`` as subset sends to the
  other members — only unsynced joiners act on it;
* a joiner buffers ordered application traffic until the snapshot
  lands, installs it, then flushes the buffer in order, so the app
  never sees an update against pre-transfer state mid-view.

Founders (first view of size one) are trivially synced.  A member that
finds itself alone while unsynced becomes synced with its local state —
there is nobody left to transfer from, which is exactly the
total-failure case the store WAL covers (the first re-joiner founds a
singleton view and serves everyone else).

When a view gains members, every synced non-coordinator also re-syncs
from the coordinator's stream.  Virtual synchrony keeps the members of
one *continuing* component identical, but a merge joins components
whose states may have drifted (a node isolated in a minority still
applies its own casts), and the layer cannot distinguish a fresh
joiner from a returning component — so the coordinator's state wins
for everyone.  This trades some redundant streaming on plain joins for
guaranteed post-merge convergence.

Sits at the top of the stack, above TOTAL/MBRSHIP.  Requires virtual
synchrony below (Table 3 row: requires P3, P4, P8, P9, P10, P11, P12,
P15; provides nothing — state transfer is a service, not a delivery
property).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.message import Message
from repro.core.stack import register_layer
from repro.core.view import View

_BEGIN = 0  # snapshot announcement: epoch, chunk count, total bytes
_CHUNK = 1  # one chunk: index, body = chunk bytes
_DONE = 2  # end of stream: install and flush

hdr.register(
    "XFER",
    fields=[
        ("kind", hdr.U8),
        ("epoch", hdr.U32),
        ("index", hdr.U32),
        ("count", hdr.U32),
        ("total", hdr.U32),
    ],
    defaults={"epoch": 0, "index": 0, "count": 0, "total": 0},
)


class _Assembly:
    """One in-flight incoming snapshot stream."""

    __slots__ = ("epoch", "count", "total", "chunks", "started")

    def __init__(self, epoch: int, count: int, total: int, started: float) -> None:
        self.epoch = epoch
        self.count = count
        self.total = total
        self.chunks: Dict[int, bytes] = {}
        self.started = started

    def complete(self) -> bool:
        return len(self.chunks) == self.count

    def state(self) -> bytes:
        return b"".join(self.chunks[i] for i in range(self.count))


@register_layer
class StateTransferLayer(Layer):
    """State transfer: snapshot streaming to joiners, buffered catch-up.

    Config:
        chunk_size (int): snapshot chunk payload size (default 1024).
        ack ("enqueue" | "durable"): when a joiner counts an installed
            snapshot as synced.  ``enqueue`` (default) syncs as soon as
            the installer returns.  ``durable`` inspects the
            installer's return value: when it is ticket-like (a
            :class:`~repro.store.CommitTicket` — has ``done()`` and
            ``add_done_callback``), the member stays unsynced and keeps
            buffering until the ticket completes, i.e. until the
            installed snapshot is on stable storage.

    Application surface (via ``handle.focus("XFER")``):
        :meth:`bind` — install the provider/installer callbacks;
        :attr:`synced` — whether this member holds authoritative state.
    """

    name = "XFER"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.chunk_size = int(config.get("chunk_size", 1024))
        self.ack = str(config.get("ack", "enqueue"))
        if self.ack not in ("enqueue", "durable"):
            raise ValueError(f"unknown XFER ack mode {self.ack!r}")
        #: Serialize local state for a joiner; bound by the client.
        self.provider: Optional[Callable[[], bytes]] = None
        #: Adopt an authoritative state at an epoch; bound by the client.
        self.installer: Optional[Callable[[bytes, int], None]] = None
        self._synced: Optional[bool] = None  # unknown until the first view
        self._buffer: List[Upcall] = []
        self._assembly: Optional[_Assembly] = None
        self._view: Optional[View] = None
        #: Bumped on every view change; a deferred durable-install sync
        #: from a superseded view must not fire (the coordinator will
        #: re-stream in the new view).
        self._sync_generation = 0
        self.snapshots_sent = 0
        self.snapshots_installed = 0
        self.resyncs = 0

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------

    def bind(
        self,
        provider: Optional[Callable[[], bytes]] = None,
        installer: Optional[Callable[[bytes, int], None]] = None,
    ) -> None:
        """Install the state callbacks (either may be ``None``)."""
        if provider is not None:
            self.provider = provider
        if installer is not None:
            self.installer = installer

    @property
    def synced(self) -> bool:
        """Whether this member holds the group's authoritative state."""
        return bool(self._synced)

    # ------------------------------------------------------------------
    # Upcalls
    # ------------------------------------------------------------------

    def handle_up(self, upcall: Upcall) -> None:
        if upcall.type is UpcallType.VIEW and upcall.view is not None:
            self._on_view(upcall)
            return
        if upcall.type in (UpcallType.CAST, UpcallType.SEND) and upcall.message:
            header = upcall.message.peek_header(self.name)
            if header is not None:
                upcall.message.pop_header(self.name)
                self._on_control(header, upcall)
                return
            if self._synced is False:
                self._buffer.append(upcall)
                return
        self.pass_up(upcall)

    def _on_view(self, upcall: Upcall) -> None:
        view = upcall.view
        # Attribute anything still buffered to the view it arrived in —
        # the verify checkers group deliveries by view, and a flush
        # after the new view installs would misfile them.
        self._flush_buffer()
        previous, self._view = self._view, view
        if self._synced is None:
            # First view: a singleton founder holds the state trivially;
            # a joiner must wait for the coordinator's snapshot.
            self._synced = view.size == 1
        elif not self._synced and view.size == 1:
            # Alone and unsynced: nobody left to transfer from.  Local
            # (WAL-replayed) state *is* the group state now — the
            # total-failure recovery case.
            self._become_synced()
        elif (
            self._synced
            and view.size > 1
            and view.coordinator != self.endpoint
            and previous is not None
            and (
                set(view.members) - set(previous.members)
                or view.view_id.epoch > previous.view_id.epoch + 1
            )
        ):
            # The view gained members this stack has not seen, or the
            # epoch sequence has a gap (this member missed views — it
            # sat outside the primary component).  Virtual synchrony
            # makes members of one *continuing* component identical,
            # but says nothing across a merge — and from here a plain
            # joiner is indistinguishable from a component that wrote
            # while partitioned away.  Adopt the coordinator's state:
            # unsynced until its stream lands.
            self._synced = False
            self.resyncs += 1
            self._count("xfer_resyncs_total",
                        "Members re-syncing after a merge or missed view")
        # A view change invalidates any half-assembled stream; the
        # coordinator re-streams in the new view.
        self._assembly = None
        self._sync_generation += 1
        self.pass_up(upcall)
        if self._synced and view.coordinator == self.endpoint and view.size > 1:
            self._stream_snapshot(view)

    # ------------------------------------------------------------------
    # Coordinator side: streaming
    # ------------------------------------------------------------------

    def _stream_snapshot(self, view: View) -> None:
        state = self.provider() if self.provider is not None else b""
        epoch = view.view_id.epoch
        others = [m for m in view.members if m != self.endpoint]
        chunks = [
            state[i:i + self.chunk_size]
            for i in range(0, len(state), self.chunk_size)
        ]
        self.snapshots_sent += 1
        self._count("xfer_snapshots_sent_total",
                    "Snapshot streams sent by coordinators")
        self._send(others, {"kind": _BEGIN, "epoch": epoch,
                            "count": len(chunks), "total": len(state)})
        for index, chunk in enumerate(chunks):
            self._send(others, {"kind": _CHUNK, "epoch": epoch,
                                "index": index}, body=chunk)
            self._count("xfer_chunks_sent_total",
                        "Snapshot chunks sent by coordinators")
        self._send(others, {"kind": _DONE, "epoch": epoch})
        self.trace("xfer_stream", epoch=epoch, chunks=len(chunks),
                   bytes=len(state), to=len(others))

    def _send(self, members, fields: Dict[str, Any], body: bytes = b"") -> None:
        message = Message(body)
        message.push_header(self.name, fields)
        self.pass_down(
            Downcall(DowncallType.SEND, message=message, members=list(members))
        )

    # ------------------------------------------------------------------
    # Joiner side: assembly
    # ------------------------------------------------------------------

    def _on_control(self, header: Dict[str, Any], upcall: Upcall) -> None:
        if self._synced:
            return  # synced members ignore snapshot streams
        kind = header["kind"]
        if kind == _BEGIN:
            self._assembly = _Assembly(
                epoch=header["epoch"], count=header["count"],
                total=header["total"], started=self.now,
            )
            return
        assembly = self._assembly
        if assembly is None or header["epoch"] != assembly.epoch:
            return  # stale stream from a superseded view
        if kind == _CHUNK:
            assembly.chunks[header["index"]] = (
                upcall.message.body_bytes() if upcall.message else b""
            )
        elif kind == _DONE and assembly.complete():
            state = assembly.state()
            ticket = None
            if self.installer is not None:
                ticket = self.installer(state, assembly.epoch)
            self.snapshots_installed += 1
            self._count("xfer_snapshots_installed_total",
                        "Snapshots installed by joiners")
            if self.context.metrics is not None:
                self.context.metrics.histogram(
                    "xfer_transfer_seconds",
                    "Snapshot transfer duration, BEGIN to install",
                ).observe(max(0.0, self.now - assembly.started))
            self.trace("xfer_install", epoch=assembly.epoch,
                       bytes=len(state))
            self._assembly = None
            if (
                self.ack == "durable"
                and callable(getattr(ticket, "done", None))
                and callable(getattr(ticket, "add_done_callback", None))
                and not ticket.done()
            ):
                # Stay unsynced (keep buffering) until the installed
                # snapshot is on stable storage; a view change in the
                # meantime supersedes this install.
                generation = self._sync_generation
                self._count("xfer_durable_acks_total",
                            "Installs whose sync waited for durability")

                def _on_durable(_ticket, self=self, generation=generation):
                    if (
                        self._sync_generation == generation
                        and self._synced is False
                    ):
                        self._become_synced()

                ticket.add_done_callback(_on_durable)
                return
            self._become_synced()

    def _become_synced(self) -> None:
        self._synced = True
        self._flush_buffer()

    def _flush_buffer(self) -> None:
        if not self._buffer:
            return
        buffered, self._buffer = self._buffer, []
        for upcall in buffered:
            self.pass_up(upcall)

    def _count(self, name: str, help_text: str) -> None:
        if self.context.metrics is not None:
            self.context.metrics.counter(name, help_text).inc()

    def dump(self):
        info = super().dump()
        info.update(
            synced=self.synced,
            buffered=len(self._buffer),
            snapshots_sent=self.snapshots_sent,
            snapshots_installed=self.snapshots_installed,
            resyncs=self.resyncs,
        )
        return info
