"""CHKSUM — checksumming for garbling detection (Figure 1, Section 2).

"A simple protocol that adds a (large enough) checksum to each message
could be used to reduce the garbling problem to a statistically
insignificant rate.  Such a protocol has functionality on both the
sending side, where it adds the checksum, and on the receive side,
where it drops the message if the checksum does not match the contents
of the message."

The checksum covers everything the layer can see: the body plus every
header pushed above it, canonically encoded with each owner name
length-prefixed so distinct (owner, header) stacks can never collapse
to the same covered bytes.  Stack it directly above COM so as much of
the packet as possible is protected.
"""

from __future__ import annotations

import zlib

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.headers import canonical_content
from repro.core.layer import Layer
from repro.core.stack import register_layer

hdr.register("CHKSUM", fields=[("sum", hdr.U32)])


@register_layer
class ChecksumLayer(Layer):
    """CRC-32 over headers-above plus body; mismatches are dropped."""

    name = "CHKSUM"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.garbled_dropped = 0
        self.verified = 0

    def handle_down(self, downcall: Downcall) -> None:
        if (
            downcall.type in (DowncallType.CAST, DowncallType.SEND)
            and downcall.message is not None
        ):
            content = canonical_content(self.context.registry, downcall.message)
            downcall.message.push_header(
                self.name, {"sum": zlib.crc32(content) & 0xFFFFFFFF}
            )
        self.pass_down(downcall)

    def handle_up(self, upcall: Upcall) -> None:
        message = upcall.message
        if (
            upcall.type not in (UpcallType.CAST, UpcallType.SEND)
            or message is None
            or message.peek_header(self.name) is None
        ):
            self.pass_up(upcall)
            return
        header = message.pop_header(self.name)
        content = canonical_content(self.context.registry, message)
        if zlib.crc32(content) & 0xFFFFFFFF != header["sum"]:
            self.garbled_dropped += 1
            self.trace("garbled_dropped", source=str(upcall.source))
            return  # "drops the message if the checksum does not match"
        self.verified += 1
        self.pass_up(upcall)

    def dump(self):
        info = super().dump()
        info.update(garbled_dropped=self.garbled_dropped, verified=self.verified)
        return info
