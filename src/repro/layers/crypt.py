"""CRYPT — body encryption for private communication (Figure 1).

Encrypts the message *body* with a keystream derived from a shared
group key and a per-message nonce (SHA-256 in counter mode).  Headers
pushed by layers below remain in the clear, like any layered transport
encryption; stack SIGN above CRYPT for authenticated encryption.

The cipher here demonstrates the code path (key handling, nonce
management, exact-length keystreams) — a production system would slot
an AEAD in the same place.
"""

from __future__ import annotations

import hashlib
import zlib

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.stack import register_layer

hdr.register(
    "CRYPT",
    fields=[("nonce", hdr.U64), ("kid", hdr.U32)],
    defaults={"kid": 0},
)


def _keystream(key: bytes, nonce: int, length: int) -> bytes:
    """SHA-256 counter-mode keystream of exactly ``length`` bytes."""
    out = bytearray()
    counter = 0
    seed = key + nonce.to_bytes(8, "big")
    while len(out) < length:
        out += hashlib.sha256(seed + counter.to_bytes(4, "big")).digest()
        counter += 1
    return bytes(out[:length])


@register_layer
class EncryptionLayer(Layer):
    """XOR-keystream body encryption with per-message nonces.

    When a KEYDIST layer above publishes a group key source in the
    stack's shared context, bodies are encrypted under the *current
    view key* (key id in the header); otherwise — and before the first
    view key arrives — the static config key (key id 0) is used.
    Messages arriving under a view key we have not yet received are
    held briefly and retried.

    Config:
        key (str|bytes): static shared secret (default "horus-demo-key").
    """

    name = "CRYPT"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        key = config.get("key", "horus-demo-key")
        self.key = key.encode("utf-8") if isinstance(key, str) else bytes(key)
        self._nonce = 0
        self.encrypted = 0
        self.decrypted = 0
        self.dropped_no_key = 0

    def _key_for(self, kid: int):
        if kid == 0:
            return self.key
        source = self.context.shared.get("group_key_source")
        if source is None:
            return None
        return source.key_for(kid)

    def _current_key(self):
        source = self.context.shared.get("group_key_source")
        if source is not None:
            current = source.current()
            if current is not None:
                return current
        return 0, self.key

    def _apply(self, message, key: bytes, nonce: int) -> None:
        body = message.body_bytes()
        if not body:
            return
        stream = _keystream(key, nonce, len(body))
        transformed = bytes(b ^ s for b, s in zip(body, stream))
        message._segments[:] = [transformed]

    def handle_down(self, downcall: Downcall) -> None:
        if (
            downcall.type in (DowncallType.CAST, DowncallType.SEND)
            and downcall.message is not None
        ):
            # Derive distinct nonces per endpoint so concurrent senders
            # sharing a key never reuse a (key, nonce) pair.
            self._nonce += 1
            endpoint_tag = zlib.crc32(str(self.endpoint).encode()) & 0xFFFFFF
            nonce = endpoint_tag << 32 | self._nonce
            if downcall.type is DowncallType.CAST:
                kid, key = self._current_key()
            else:
                # Unicast control traffic (joins, installs, the wrapped
                # view keys themselves, retransmissions) must stay
                # readable by endpoints that do not hold the view key
                # yet — it uses the static/pairwise key.
                kid, key = 0, self.key
            self._apply(downcall.message, key, nonce)
            downcall.message.push_header(self.name, {"nonce": nonce, "kid": kid})
            self.encrypted += 1
        self.pass_down(downcall)

    def handle_up(self, upcall: Upcall) -> None:
        message = upcall.message
        if (
            upcall.type not in (UpcallType.CAST, UpcallType.SEND)
            or message is None
            or message.peek_header(self.name) is None
        ):
            self.pass_up(upcall)
            return
        header = message.pop_header(self.name)
        self._decrypt_or_hold(upcall, header, attempts_left=20)

    def _decrypt_or_hold(self, upcall: Upcall, header, attempts_left: int) -> None:
        key = self._key_for(header["kid"])
        if key is None:
            if attempts_left <= 0:
                self.dropped_no_key += 1
                self.trace("crypt_no_key", kid=header["kid"])
                return
            # The view key may still be in flight from the coordinator.
            self.context.scheduler.call_after(
                0.05, self._decrypt_or_hold, upcall, header, attempts_left - 1
            )
            return
        self._apply(upcall.message, key, header["nonce"])
        self.decrypted += 1
        self.pass_up(upcall)

    def dump(self):
        info = super().dump()
        info.update(
            encrypted=self.encrypted,
            decrypted=self.decrypted,
            dropped_no_key=self.dropped_no_key,
        )
        return info
