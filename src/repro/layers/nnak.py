"""NNAK — reliable FIFO *unicast* only (Table 3).

The cheaper sibling of NAK for request/response traffic: subset sends
get per-peer sequencing, retransmission, and placeholder handling, but
casts pass through unsequenced (still best effort).  Per Table 3 it
provides only P3; applications that never multicast data pay nothing
for multicast reliability — "an application pays only for properties it
uses" (Section 1).
"""

from __future__ import annotations

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType
from repro.core.message import Message
from repro.core.stack import register_layer
from repro.layers.nak import NakLayer, _USTATUS

# NNAK shares NAK's machinery but speaks under its own header tag so the
# two can coexist in one stack without colliding.
hdr.register(
    "NNAK",
    fields=[
        ("kind", hdr.U8),
        ("era", hdr.U32),
        ("seq", hdr.U64),
        ("lo", hdr.U64),
        ("hi", hdr.U64),
    ],
    defaults={"era": 0, "seq": 0, "lo": 0, "hi": 0},
)


@register_layer
class UnicastNakLayer(NakLayer):
    """NAK's unicast half: sequenced sends, pass-through casts."""

    name = "NNAK"

    def _cast_data(self, downcall: Downcall) -> None:
        # Casts are not this layer's business: no header, no buffering.
        self.pass_down(downcall)

    def _status_tick(self) -> None:
        # No multicast sequence space to advertise; keep the per-peer
        # unicast advertisements and the silence check.
        for dest, seq in self._usend_seq.items():
            ustatus = Message()
            ustatus.push_header(self.name, {"kind": _USTATUS, "seq": seq})
            self.pass_down(
                Downcall(DowncallType.SEND, message=ustatus, members=[dest])
            )
        self._check_silence()
