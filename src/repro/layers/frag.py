"""FRAG — fragmentation and reassembly of large messages.

Section 7: "When a user of the FRAG layer attempts to send a message
that is larger than that maximum size, the FRAG layer splits the
message into multiple fragments.  On each fragment the FRAG layer
pushes a boolean value that indicates whether it is the last one or
not.  The FRAG layer depends on FIFO ordering for reassembly.  When the
last fragment is received, it delivers the message."

Faithfully to the paper, the header is a single boolean — the layer
whose one bit of real information motivates the Section 10 discussion
of word-aligned header waste.  Correctness therefore *requires* FIFO
delivery from below (properties P3/P4, per Table 3).

Zero-copy note: non-final fragments are fresh messages carrying body
*slices* (segment references); the final fragment is the original
message object, so headers pushed by layers above FRAG travel exactly
once, on the last fragment.

Properties (Table 3): requires P3, P4, P10, P11; provides P12 (large
messages).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.message import Message
from repro.core.stack import register_layer
from repro.net.address import EndpointAddress

hdr.register("FRAG", fields=[("last", hdr.BOOL)])

#: Reassembly buffers are keyed by (source, was_cast) — FIFO from below
#: guarantees fragments of one message are contiguous per source and
#: per sequence space, but casts and subset sends use different spaces.
_BufferKey = Tuple[EndpointAddress, bool]


@register_layer
class FragLayer(Layer):
    """Splits big bodies going down; reassembles going up.

    Config:
        max_size (int): maximum fragment body size in bytes
            (default 1024).
    """

    name = "FRAG"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.max_size = int(config.get("max_size", 1024))
        if self.max_size <= 0:
            raise ValueError(f"max_size must be positive, got {self.max_size}")
        self._reassembly: Dict[_BufferKey, List[bytes]] = {}
        self.fragments_sent = 0
        self.messages_reassembled = 0

    # ------------------------------------------------------------------
    # Downcalls
    # ------------------------------------------------------------------

    def handle_down(self, downcall: Downcall) -> None:
        if (
            downcall.type in (DowncallType.CAST, DowncallType.SEND)
            and downcall.message is not None
        ):
            self._fragment(downcall)
        else:
            self.pass_down(downcall)

    def _fragment(self, downcall: Downcall) -> None:
        message = downcall.message
        size = message.body_size
        if size <= self.max_size:
            message.push_owned_header(self.name, {"last": True})
            self.pass_down(downcall)
            return
        # Emit all-but-last fragments as bare slice carriers...
        offset = 0
        while size - offset > self.max_size:
            fragment = Message()
            for segment in message.slice_body(offset, offset + self.max_size):
                fragment.add_segment(segment)
            fragment.push_owned_header(self.name, {"last": False})
            self.fragments_sent += 1
            self.pass_down(self._like(downcall, fragment))
            offset += self.max_size
        # ...and ship the original message (with every header pushed by
        # the layers above) as the final fragment, body trimmed to the tail.
        tail = message.slice_body(offset, size)
        message._segments[:] = tail
        message.push_owned_header(self.name, {"last": True})
        self.fragments_sent += 1
        self.pass_down(downcall)

    @staticmethod
    def _like(downcall: Downcall, message: Message) -> Downcall:
        """A downcall of the same type/destination carrying ``message``."""
        return Downcall(
            type=downcall.type, message=message, members=downcall.members
        )

    # ------------------------------------------------------------------
    # Upcalls
    # ------------------------------------------------------------------

    def handle_up(self, upcall: Upcall) -> None:
        if upcall.type is UpcallType.LOST_MESSAGE and upcall.source is not None:
            # A hole in the FIFO stream poisons any partial reassembly.
            self._reassembly.pop((upcall.source, True), None)
            self._reassembly.pop((upcall.source, False), None)
            self.pass_up(upcall)
            return
        message = upcall.message
        if (
            upcall.type not in (UpcallType.CAST, UpcallType.SEND)
            or message is None
            or message.top_owner() != self.name
        ):
            self.pass_up(upcall)
            return
        header = message.pop_header(self.name)
        key = (upcall.source, upcall.type is UpcallType.CAST)
        if not header["last"]:
            self._reassembly.setdefault(key, []).extend(message.segments)
            return
        prefix = self._reassembly.pop(key, None)
        if prefix:
            message._segments[:0] = prefix
            self.messages_reassembled += 1
        self.pass_up(upcall)

    def dump(self):
        info = super().dump()
        info.update(
            max_size=self.max_size,
            fragments_sent=self.fragments_sent,
            messages_reassembled=self.messages_reassembled,
            partial_buffers=len(self._reassembly),
        )
        return info
