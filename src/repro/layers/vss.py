"""VSS — virtually semi-synchronous delivery (Table 3).

A microprotocol over a consistent-views layer (BMS): it tags every cast
with the view it was sent in and (a) drops deliveries whose view tag
does not match the receiver's current view, and (b) holds new casts
while a flush is in progress, releasing them into the next view.  The
result is property P8 — messages are delivered only in the view they
were sent in — without the full same-set guarantee (that is the FLUSH
layer's job).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.stack import register_layer
from repro.core.view import View

hdr.register("VSS", fields=[("vid", hdr.U32)])


@register_layer
class ViewSemiSyncLayer(Layer):
    """View-scoped delivery plus send-blocking during flushes (P8)."""

    name = "VSS"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.view: Optional[View] = None
        self.blocked = False
        self._queued: List[Downcall] = []
        self.cross_view_dropped = 0

    def handle_down(self, downcall: Downcall) -> None:
        if downcall.type is DowncallType.CAST and downcall.message is not None:
            if self.view is None or self.blocked:
                self._queued.append(downcall)
                return
            downcall.message.push_header(
                self.name, {"vid": self.view.view_id.epoch}
            )
        self.pass_down(downcall)

    def handle_up(self, upcall: Upcall) -> None:
        if upcall.type is UpcallType.FLUSH:
            self.blocked = True  # a view change is in motion
            self.pass_up(upcall)
            return
        if upcall.type is UpcallType.VIEW and upcall.view is not None:
            self.view = upcall.view
            self.blocked = False
            self.pass_up(upcall)
            queued, self._queued = self._queued, []
            for downcall in queued:
                self.handle_down(downcall)
            return
        if upcall.type is UpcallType.CAST and upcall.message is not None:
            header = upcall.message.peek_header(self.name)
            if header is not None:
                upcall.message.pop_header(self.name)
                if self.view is None or header["vid"] != self.view.view_id.epoch:
                    self.cross_view_dropped += 1
                    return
        self.pass_up(upcall)

    def dump(self):
        info = super().dump()
        info.update(
            blocked=self.blocked,
            queued=len(self._queued),
            cross_view_dropped=self.cross_view_dropped,
        )
        return info
