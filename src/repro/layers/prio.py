"""PRIO — prioritized effort delivery (property P2).

Reorders *deliveries* by priority: incoming messages are held for one
short batching window and released highest-priority-first.  Senders tag
casts via ``handle.cast(data, priority=5)``; untagged traffic gets the
default priority.

Note the property algebra consequence (Table 3 row): PRIO *destroys*
every ordering property (P3-P7) — by design, priority and FIFO are
mutually exclusive.  The well-formedness checker will flag stacks that
put ordering consumers above PRIO.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Tuple

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.stack import register_layer

hdr.register("PRIO", fields=[("priority", hdr.U8)])


@register_layer
class PriorityLayer(Layer):
    """Priority-ordered delivery with a small batching window.

    Config:
        default_priority (int): used when the sender gives none (default 4).
        window (float): batching delay in seconds (default 0.002).
            Larger windows reorder more aggressively at more latency.
    """

    name = "PRIO"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.default_priority = int(config.get("default_priority", 4))
        self.window = float(config.get("window", 0.002))
        self._heap: List[Tuple[int, int, Upcall]] = []
        self._tiebreak = itertools.count()
        self._release_scheduled = False
        self.reordered = 0

    def handle_down(self, downcall: Downcall) -> None:
        if (
            downcall.type in (DowncallType.CAST, DowncallType.SEND)
            and downcall.message is not None
        ):
            priority = int(downcall.extra.get("priority", self.default_priority))
            downcall.message.push_header(
                self.name, {"priority": max(0, min(priority, 255))}
            )
        self.pass_down(downcall)

    def handle_up(self, upcall: Upcall) -> None:
        message = upcall.message
        if (
            upcall.type not in (UpcallType.CAST, UpcallType.SEND)
            or message is None
            or message.peek_header(self.name) is None
        ):
            self.pass_up(upcall)
            return
        header = message.pop_header(self.name)
        upcall.extra["priority"] = header["priority"]
        # Lower number = higher priority (heapq pops smallest first).
        heapq.heappush(
            self._heap, (header["priority"], next(self._tiebreak), upcall)
        )
        if not self._release_scheduled:
            self._release_scheduled = True
            self.context.scheduler.call_after(self.window, self._release)

    def _release(self) -> None:
        self._release_scheduled = False
        batch = len(self._heap)
        if batch > 1:
            self.reordered += batch
        while self._heap:
            _, _, upcall = heapq.heappop(self._heap)
            self.pass_up(upcall)

    def dump(self):
        info = super().dump()
        info.update(
            window=self.window, held=len(self._heap), reordered=self.reordered
        )
        return info
