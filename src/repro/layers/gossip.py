"""GOSSIP — SWIM failure detection as a protocol layer.

The scalable waist of the hourglass: where MBRSHIP's own detection
(per-member timeout scans plus flush-protocol eviction) costs O(n) per
view change, GOSSIP runs the SWIM protocol — randomized round-robin
ping, k-indirect ping-req, incarnation-refutable suspicion, and
infection-style dissemination — at constant per-member message load
regardless of group size.

The layer owns a :class:`~repro.gossip.swim.SwimCore` whose node ids
are endpoint addresses of the group's members (learned from VIEW
traffic crossing the layer in either direction).  SWIM verdicts leave
the layer two ways:

* with an ``external_fd``
  (:class:`~repro.membership.ExternalFailureDetector`) configured, each
  confirmed failure is filed as a problem report, so *every* subscribed
  MBRSHIP instance hears the same verdicts in the same order — the
  Section 5 consistency property, now fed by SWIM;
* otherwise the verdict surfaces as a ``PROBLEM`` upcall, which a
  stacked MBRSHIP above converts into suspicion directly.

Placement: just above COM (e.g. ``"MBRSHIP:FRAG:NAK:GOSSIP:COM"``), so
SWIM's probes travel best-effort — a failure detector that rode a
reliable layer would have its pings retransmitted to a corpse forever,
and its timeouts would measure the retransmission budget, not the
peer.  MBRSHIP instances consuming GOSSIP verdicts should disable
their own scan (``suspect_timeout=0`` via the deprecated knob, or
simply rely on the external service path).

All timing runs on the stack's Clock and all randomness on the stack's
seeded rng stream, so DES runs remain digest-deterministic.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.message import Message
from repro.core.stack import register_layer
from repro.errors import ConfigurationError
from repro.gossip.detector import GossipFailureDetector
from repro.gossip.swim import SwimConfig, SwimCore
from repro.net.address import EndpointAddress

_NOBODY = EndpointAddress("", 0)

hdr.register(
    "GOSSIP",
    fields=[
        ("kind", hdr.U8),
        ("inc", hdr.U32),
        ("origin", hdr.ADDRESS),
        ("subject", hdr.ADDRESS),
        ("subject_inc", hdr.U32),
        # One membership update per index: parallel lists keep the
        # codec declarative (no nested tuple field type needed).
        ("upd_nodes", hdr.ListOf(hdr.ADDRESS)),
        ("upd_states", hdr.ListOf(hdr.U8)),
        ("upd_incs", hdr.ListOf(hdr.U32)),
    ],
    defaults={
        "inc": 0,
        "subject": _NOBODY,
        "subject_inc": 0,
        "upd_nodes": [],
        "upd_states": [],
        "upd_incs": [],
    },
)


@register_layer
class GossipLayer(Layer):
    """SWIM failure detection over the stack's unreliable send path.

    Config:
        period (float): protocol period in seconds (default 1.0).
        ping_timeout (float): direct-ack deadline (default 0.25).
        indirect_timeout (float): indirect-ack deadline (default 0.5).
        k_indirect (int): proxies per indirect probe (default 3).
        suspect_timeout (float): suspicion-to-confirmation deadline
            (default 6.0).
        piggyback (int): max updates carried per message (default 12).
        retransmit_mult (int): per-update transmit budget multiplier
            (default 3).
        sync_period (float): anti-entropy pull cadence; 0 disables
            (default 20.0).
        notify (str): which SWIM transition becomes a verdict —
            ``confirm`` (default) or ``suspect``.
        external_fd: optional
            :class:`~repro.membership.ExternalFailureDetector`; when
            given, verdicts are filed as problem reports there instead
            of surfacing as PROBLEM upcalls.
    """

    name = "GOSSIP"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.swim_config = SwimConfig(
            period=float(config.get("period", 1.0)),
            ping_timeout=float(config.get("ping_timeout", 0.25)),
            indirect_timeout=float(config.get("indirect_timeout", 0.5)),
            k_indirect=int(config.get("k_indirect", 3)),
            suspect_timeout=float(config.get("suspect_timeout", 6.0)),
            piggyback=int(config.get("piggyback", 12)),
            retransmit_mult=int(config.get("retransmit_mult", 3)),
            sync_period=float(config.get("sync_period", 20.0)),
        )
        self.notify = str(config.get("notify", "confirm"))
        if self.notify not in ("confirm", "suspect"):
            raise ConfigurationError(
                f"notify must be confirm|suspect, got {self.notify!r}"
            )
        self.external_fd = config.get("external_fd")
        self.core = SwimCore(
            self.endpoint,
            (self.endpoint,),
            context.scheduler,
            context.rng,
            self._ship,
            self.swim_config,
            on_confirm=self._verdict if self.notify == "confirm" else None,
            on_suspect=self._verdict if self.notify == "suspect" else None,
        )
        self._tick_timer = self.periodic(self.swim_config.period, self._tick)
        self._known: List[EndpointAddress] = [self.endpoint]
        self._last_stats: Dict[str, int] = dict(self.core.stats)
        self._init_metrics()

    def _init_metrics(self) -> None:
        metrics = self.context.metrics
        self._m = None
        if metrics is None:
            return
        self._m = {
            "pings": metrics.counter(
                "gossip_pings_total", "SWIM pings sent"),
            "acks": metrics.counter(
                "gossip_acks_total", "SWIM acks sent"),
            "ping_reqs": metrics.counter(
                "gossip_ping_reqs_total", "Indirect ping requests sent"),
            "suspects": metrics.counter(
                "gossip_suspects_total", "Suspicion transitions applied"),
            "confirms": metrics.counter(
                "gossip_confirms_total", "Confirmed-dead transitions applied"),
            "refutes": metrics.counter(
                "gossip_refutes_total", "Incarnation-bump refutations"),
            "resurrections": metrics.counter(
                "gossip_resurrections_total",
                "Dead records overridden by higher incarnations"),
            "updates_sent": metrics.counter(
                "gossip_updates_piggybacked_total",
                "Membership updates piggybacked on messages"),
            "syncs": metrics.counter(
                "gossip_syncs_total", "Anti-entropy state snapshots served"),
        }

    def _flush_stats(self) -> None:
        if self._m is None:
            return
        stats = self.core.stats
        last = self._last_stats
        for key, family in self._m.items():
            delta = stats[key] - last[key]
            if delta:
                family.inc(delta)
                last[key] = stats[key]

    # ------------------------------------------------------------------
    # Lifecycle and timing
    # ------------------------------------------------------------------

    def start(self) -> None:
        # Stagger the first period so group members do not probe in
        # lock-step (they all start at join time).
        stagger = self.context.rng.uniform(0, self.swim_config.period)
        kickoff = self.one_shot(max(stagger, 1e-9), self._begin)
        kickoff.start()

    def _begin(self) -> None:
        self._tick()
        self._tick_timer.start()

    def _tick(self) -> None:
        process = self.context.process
        if process is not None and not process.alive:
            return
        self.core.tick()
        self._flush_stats()

    # ------------------------------------------------------------------
    # Peer tracking
    # ------------------------------------------------------------------

    def _learn_members(self, members: Optional[List[EndpointAddress]]) -> None:
        if not members:
            return
        known = set(self._known)
        grew = False
        for member in members:
            if member not in known:
                known.add(member)
                self._known.append(member)
                grew = True
        if grew:
            self.core.set_peers(tuple(self._known))

    # ------------------------------------------------------------------
    # HCPI edges
    # ------------------------------------------------------------------

    def handle_down(self, downcall: Downcall) -> None:
        if downcall.type is DowncallType.VIEW and downcall.members:
            self._learn_members(downcall.members)
        self.pass_down(downcall)

    def handle_up(self, upcall: Upcall) -> None:
        if upcall.type is UpcallType.VIEW:
            self._learn_members(upcall.members)
            self.pass_up(upcall)
            return
        message = upcall.message
        if (
            upcall.type in (UpcallType.CAST, UpcallType.SEND)
            and message is not None
            and message.top_owner() == self.name
        ):
            self._dispatch(message.pop_header(self.name))
            return
        self.pass_up(upcall)

    # ------------------------------------------------------------------
    # Wire adaptation (header dict <-> SwimCore message dict)
    # ------------------------------------------------------------------

    def _ship(self, target: EndpointAddress, msg: Dict[str, Any]) -> None:
        header: Dict[str, Any] = {
            "kind": msg["k"],
            "origin": msg["f"],
            "inc": msg.get("i", 0),
        }
        subject = msg.get("s")
        if subject is not None:
            header["subject"] = subject
            header["subject_inc"] = msg.get("si", 0)
        updates = msg.get("u")
        if updates:
            header["upd_nodes"] = [node for node, _, _ in updates]
            header["upd_states"] = [state for _, state, _ in updates]
            header["upd_incs"] = [inc for _, _, inc in updates]
        message = Message()
        message.push_header(self.name, header)
        self.pass_down(
            Downcall(DowncallType.SEND, message=message, members=[target])
        )

    def _dispatch(self, header: Dict[str, Any]) -> None:
        msg: Dict[str, Any] = {
            "k": header["kind"],
            "f": header["origin"],
            "i": header.get("inc", 0),
        }
        subject = header.get("subject", _NOBODY)
        if subject != _NOBODY:
            msg["s"] = subject
            msg["si"] = header.get("subject_inc", 0)
        nodes = header.get("upd_nodes") or []
        if nodes:
            msg["u"] = list(
                zip(nodes, header.get("upd_states", []),
                    header.get("upd_incs", []))
            )
        self._learn_members([msg["f"]])
        self.core.on_message(msg)
        self._flush_stats()

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------

    def _verdict(self, node: EndpointAddress) -> None:
        self.trace("verdict", member=str(node), notify=self.notify)
        if self.external_fd is not None:
            self.external_fd.report_problem(self.endpoint, node)
            return
        self.pass_up(
            Upcall(
                UpcallType.PROBLEM,
                source=node,
                extra={"reason": "gossip", "layer": self.name},
            )
        )

    # ------------------------------------------------------------------
    # Application surface (via ``handle.focus("GOSSIP")``)
    # ------------------------------------------------------------------

    def detector(self, notify_on: str = "confirm") -> GossipFailureDetector:
        """This member's SWIM core behind the FailureDetector protocol."""
        return GossipFailureDetector(self.core, notify_on=notify_on)

    def dump(self) -> Dict[str, Any]:
        info = super().dump()
        info.update(
            incarnation=self.core.incarnation,
            known=len(self._known),
            suspects=self.core.suspect_count,
            deads=self.core.dead_count,
            stats=dict(self.core.stats),
        )
        return info
