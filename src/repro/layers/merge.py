"""MERGE — automatic view merging (property P16, Section 9).

Sits above a membership layer and removes the one manual step left
after a partition heals: noticing the other component exists.  The
layer periodically consults the group directory; when it sees a
registered endpoint outside the current view, it issues the ``merge``
downcall toward it (the membership layer does the actual absorbing, or
asks to be absorbed, per its own older-view rule).

Only the coordinator probes, so a healed two-component group generates
one merge request per probe period, not N².

Properties (Table 3): requires P3, P4, P8, P9, P10, P11, P12, P15;
provides P16.
"""

from __future__ import annotations

from typing import Optional

from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.stack import register_layer
from repro.core.view import View


@register_layer
class AutoMergeLayer(Layer):
    """Directory-driven automatic merging after partitions heal.

    Config:
        probe_period (float): directory check period (default 1.0 s).
    """

    name = "MERGE"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.probe_period = float(config.get("probe_period", 1.0))
        self.view: Optional[View] = None
        self._probe = None
        self.merges_initiated = 0

    def start(self) -> None:
        self._probe = self.periodic(self.probe_period, self._probe_tick)
        self._probe.start()

    def handle_up(self, upcall: Upcall) -> None:
        if upcall.type is UpcallType.VIEW and upcall.view is not None:
            self.view = upcall.view
        self.pass_up(upcall)

    def _probe_tick(self) -> None:
        directory = self.context.directory
        if (
            directory is None
            or self.view is None
            or self.view.members[0] != self.endpoint
        ):
            return
        for candidate in directory.lookup(self.group):
            if candidate == self.endpoint or self.view.contains(candidate):
                continue
            self.merges_initiated += 1
            self.trace("auto_merge", contact=str(candidate))
            self.pass_down(
                Downcall(DowncallType.MERGE, extra={"contact": candidate})
            )
            return  # one probe per tick is enough

    def dump(self):
        info = super().dump()
        info.update(
            probe_period=self.probe_period,
            merges_initiated=self.merges_initiated,
        )
        return info
