"""NAK — reliable FIFO delivery via negative acknowledgements.

Section 7: "The NAK layer provides FIFO ordering of messages.  For this
it pushes a sequence number on each outgoing message, that the receiver
can check.  If the receiver detects message loss, it sends back a
negative acknowledgement (NAK).  The NAK layer buffers some messages
for retransmission, and will retransmit if the message is still
buffered.  If not, it will send a place holder that will result in a
LOST_MESSAGE event when received.  Each endpoint will occasionally
multicast its protocol status ... It also allows the detection of
failures or disconnections (in case a status update is not received in
time)."

Properties (Table 3): requires P1, P10, P11; provides P3 (FIFO unicast)
and P4 (FIFO multicast).

Design notes
------------

Two independent sequence spaces are kept: a multicast space for casts
and a per-peer unicast space for subset sends, so subset sends do not
punch holes in the multicast sequence.

The multicast space is *era-scoped*: when a membership layer above
installs a view it passes the view epoch down in the VIEW downcall, and
the multicast sequence space restarts at 1 for that era.  This is what
lets members join a long-running group without NAK-ing years of
history, and it is safe precisely because the membership layer
guarantees that all old-view messages are delivered before the new view
is installed (virtual synchrony).  The send buffer of the previous era
is retained for one more view change so that slower members can still
recover old-era messages from it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Set, Tuple

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.message import Message
from repro.core.stack import register_layer
from repro.net.address import EndpointAddress

_DATA_M = 0  # sequenced multicast data
_DATA_U = 1  # sequenced unicast (subset send) data
_NAK_M = 2  # negative ack for the multicast space
_NAK_U = 3  # negative ack for the unicast space
_STATUS = 4  # periodic status: highest multicast seq sent this era
_GONE_M = 5  # placeholder: multicast message no longer buffered
_GONE_U = 6  # placeholder: unicast message no longer buffered
_USTATUS = 7  # per-peer status: highest unicast seq sent to the receiver

#: Sanity bound for sequence fields: an honest peer can run far ahead of
#: a receiver (window eviction), but a garbled 64-bit field is random —
#: astronomically beyond any real backlog.
_SEQ_SANITY = 1 << 20

hdr.register(
    "NAK",
    fields=[
        ("kind", hdr.U8),
        ("era", hdr.U32),
        ("seq", hdr.U64),
        ("lo", hdr.U64),
        ("hi", hdr.U64),
    ],
    defaults={"era": 0, "seq": 0, "lo": 0, "hi": 0},
)


class _RecvState:
    """Per-(source, era) receive state for one sequence space."""

    __slots__ = ("expected", "pending", "known_max")

    def __init__(self) -> None:
        self.expected = 1  # next sequence number to deliver
        self.pending: Dict[int, Tuple[int, Message]] = {}  # seq -> (kind, msg)
        self.known_max = 0  # highest seq known to exist (from data/status)

    @property
    def has_gap(self) -> bool:
        return self.expected <= self.known_max


@register_layer
class NakLayer(Layer):
    """Reliable FIFO multicast and unicast over best-effort delivery.

    Config:
        window (int): retransmission buffer size per space (default 4096).
        nak_delay (float): gap-detection to NAK-send delay (default 0.02 s).
        status_period (float): status multicast period (default 0.25 s).
        problem_timeout (float): silence before a PROBLEM upcall (default 1.5 s).
    """

    name = "NAK"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.window = int(config.get("window", 4096))
        self.nak_delay = float(config.get("nak_delay", 0.02))
        self.status_period = float(config.get("status_period", 0.25))
        self.problem_timeout = float(config.get("problem_timeout", 1.5))
        # Multicast send side, era-scoped.
        self._era = 0
        self._send_seq = 0  # last multicast seq used in the current era
        self._sent: Dict[int, "OrderedDict[int, Message]"] = {0: OrderedDict()}
        self._era_high: Dict[int, int] = {}  # retained eras: last seq sent
        # Unicast send side (continuous; endpoints are incarnation-unique).
        self._usend_seq: Dict[EndpointAddress, int] = {}
        self._usent: Dict[EndpointAddress, "OrderedDict[int, Message]"] = {}
        # Receive side.
        self._mcast: Dict[Tuple[EndpointAddress, int], _RecvState] = {}
        self._ucast: Dict[EndpointAddress, _RecvState] = {}
        self._nak_timers: Dict[Tuple[EndpointAddress, int, int], object] = {}
        # Liveness observation.
        self._peers: Set[EndpointAddress] = set()
        self._last_heard: Dict[EndpointAddress, float] = {}
        self._reported: Set[EndpointAddress] = set()
        self._status_timer = None
        # Statistics.
        self.naks_sent = 0
        self.retransmissions = 0
        self.placeholders_sent = 0
        self.duplicates_dropped = 0
        self.stale_era_dropped = 0
        self.bogus_dropped = 0
        self.lost_reported = 0

    def start(self) -> None:
        self._status_timer = self.periodic(self.status_period, self._status_tick)
        self._status_timer.start()

    # ------------------------------------------------------------------
    # Downcalls
    # ------------------------------------------------------------------

    def handle_down(self, downcall: Downcall) -> None:
        dtype = downcall.type
        if dtype is DowncallType.CAST and downcall.message is not None:
            self._cast_data(downcall)
        elif dtype is DowncallType.SEND and downcall.message is not None:
            self._send_data(downcall)
        elif dtype is DowncallType.VIEW:
            if downcall.members is not None:
                # A membership layer installing a view asserts these
                # peers are alive right now; restart their silence clocks.
                self._set_peers(downcall.members, fresh=True)
            epoch = downcall.extra.get("epoch")
            if epoch is not None and epoch > self._era:
                self._advance_era(epoch)
            self.pass_down(downcall)
        else:
            self.pass_down(downcall)

    def _cast_data(self, downcall: Downcall) -> None:
        self._send_seq += 1
        message = downcall.message
        message.push_owned_header(
            self.name, {"kind": _DATA_M, "era": self._era, "seq": self._send_seq}
        )
        self._buffer(self._sent[self._era], self._send_seq, message.shallow_copy())
        self.pass_down(downcall)

    def _send_data(self, downcall: Downcall) -> None:
        # Each destination gets its own reliably sequenced copy.
        for dest in downcall.members or []:
            seq = self._usend_seq.get(dest, 0) + 1
            self._usend_seq[dest] = seq
            message = downcall.message.copy()
            message.push_owned_header(self.name, {"kind": _DATA_U, "seq": seq})
            buffer = self._usent.setdefault(dest, OrderedDict())
            self._buffer(buffer, seq, message.shallow_copy())
            self.pass_down(
                Downcall(DowncallType.SEND, message=message, members=[dest])
            )

    def _buffer(self, buffer: "OrderedDict[int, Message]", seq: int, msg: Message) -> None:
        buffer[seq] = msg
        while len(buffer) > self.window:
            buffer.popitem(last=False)

    def _set_peers(self, members, fresh: bool = False) -> None:
        self._peers = set(members)
        now = self.now
        for peer in self._peers:
            if fresh:
                self._last_heard[peer] = now
            else:
                self._last_heard.setdefault(peer, now)
        if fresh:
            self._reported.clear()
        self._reported &= self._peers

    def _advance_era(self, epoch: int) -> None:
        """Start a fresh multicast sequence space for the new view.

        Safe because the membership layer has already ensured all
        old-era messages are delivered locally; the previous era's send
        buffer is retained so stragglers can still recover from us.
        """
        old_era = self._era
        self._era_high[old_era] = self._send_seq
        self._era = epoch
        self._send_seq = 0
        self._sent[epoch] = OrderedDict()
        for era in list(self._sent):
            if era not in (old_era, epoch):
                del self._sent[era]
        for era in list(self._era_high):
            if era not in self._sent:
                del self._era_high[era]
        # Purge receive state older than the new era and drain anything
        # that arrived early for it.
        for (source, era) in list(self._mcast):
            if era < epoch:
                del self._mcast[(source, era)]
        for (source, era), state in list(self._mcast.items()):
            if era == epoch:
                self._drain(state, source, space=0)
                self._maybe_schedule_nak(state, source, space=0, era=era)

    # ------------------------------------------------------------------
    # Upcalls
    # ------------------------------------------------------------------

    def handle_up(self, upcall: Upcall) -> None:
        if upcall.type is UpcallType.VIEW:
            if upcall.members is not None:
                self._set_peers(upcall.members)
            self.pass_up(upcall)
            return
        message = upcall.message
        if message is None or message.top_owner() != self.name:
            self.pass_up(upcall)
            return
        header = message.pop_header(self.name)
        source = upcall.source
        self._heard(source)
        kind = header["kind"]
        if kind in (_DATA_M, _GONE_M):
            self._arrived_mcast(
                source, header["era"], header["seq"], kind, message, upcall
            )
        elif kind in (_DATA_U, _GONE_U):
            self._arrived_ucast(source, header["seq"], kind, message, upcall)
        elif kind == _STATUS:
            self._on_status(source, header["era"], header["seq"])
        elif kind == _USTATUS:
            self._on_ustatus(source, header["seq"])
        elif kind == _NAK_M:
            self._on_nak(source, header["era"], header["lo"], header["hi"], unicast=False)
        elif kind == _NAK_U:
            self._on_nak(source, 0, header["lo"], header["hi"], unicast=True)

    def _heard(self, source: Optional[EndpointAddress]) -> None:
        if source is None:
            return
        self._last_heard[source] = self.now
        self._reported.discard(source)

    # -- arrival, ordering, and gap handling -------------------------------

    def _arrived_mcast(
        self,
        source: EndpointAddress,
        era: int,
        seq: int,
        kind: int,
        message: Message,
        upcall: Optional[Upcall] = None,
    ) -> None:
        if era < self._era:
            # Message from a view we already left; the flush protocol
            # accounted for it before the view was installed.
            self.stale_era_dropped += 1
            return
        state = self._mcast.setdefault((source, era), _RecvState())
        if seq > state.expected + _SEQ_SANITY:
            self.bogus_dropped += 1  # garbled sequence number
            return
        # In-order fast path (the steady state): the next expected data
        # message arrives as the CAST it will leave as — forward the
        # incoming upcall itself instead of round-tripping through the
        # pending dict and allocating a fresh event.
        if (
            era == self._era
            and seq == state.expected
            and kind == _DATA_M
            and upcall is not None
            and upcall.type is UpcallType.CAST
        ):
            state.expected = seq + 1
            if seq > state.known_max:
                state.known_max = seq
            self.pass_up(upcall)
            if state.pending:
                self._drain(state, source, space=0)
            self._maybe_schedule_nak(state, source, space=0, era=era)
            return
        if seq > state.known_max:
            state.known_max = seq
        if seq < state.expected or seq in state.pending:
            self.duplicates_dropped += 1
        else:
            state.pending[seq] = (kind, message)
        if era == self._era:
            self._drain(state, source, space=0)
            self._maybe_schedule_nak(state, source, space=0, era=era)
        # era > self._era: hold until our membership layer installs the
        # view; _advance_era will drain.

    def _arrived_ucast(
        self,
        source: EndpointAddress,
        seq: int,
        kind: int,
        message: Message,
        upcall: Optional[Upcall] = None,
    ) -> None:
        state = self._ucast.setdefault(source, _RecvState())
        if seq > state.expected + _SEQ_SANITY:
            self.bogus_dropped += 1
            return
        # In-order fast path, mirroring _arrived_mcast.
        if (
            seq == state.expected
            and kind == _DATA_U
            and upcall is not None
            and upcall.type is UpcallType.SEND
        ):
            state.expected = seq + 1
            if seq > state.known_max:
                state.known_max = seq
            self.pass_up(upcall)
            if state.pending:
                self._drain(state, source, space=1)
            self._maybe_schedule_nak(state, source, space=1, era=0)
            return
        if seq > state.known_max:
            state.known_max = seq
        if seq < state.expected or seq in state.pending:
            self.duplicates_dropped += 1
        else:
            state.pending[seq] = (kind, message)
        self._drain(state, source, space=1)
        self._maybe_schedule_nak(state, source, space=1, era=0)

    def _drain(self, state: _RecvState, source: EndpointAddress, space: int) -> None:
        while state.expected in state.pending:
            kind, message = state.pending.pop(state.expected)
            state.expected += 1
            if kind == _DATA_M:
                self.pass_up(Upcall(UpcallType.CAST, message=message, source=source))
            elif kind == _DATA_U:
                self.pass_up(Upcall(UpcallType.SEND, message=message, source=source))
            else:  # a GONE placeholder: the data is unrecoverable
                self.lost_reported += 1
                self.pass_up(
                    Upcall(
                        UpcallType.LOST_MESSAGE,
                        source=source,
                        extra={"seq": state.expected - 1, "space": space},
                    )
                )

    def _maybe_schedule_nak(
        self, state: _RecvState, source: EndpointAddress, space: int, era: int
    ) -> None:
        if not state.has_gap:
            return
        key = (source, space, era)
        if key in self._nak_timers:
            return  # a NAK is already pending for this gap
        handle = self.context.scheduler.call_after(
            self.nak_delay, self._fire_nak, source, space, era
        )
        self._nak_timers[key] = handle

    def _fire_nak(self, source: EndpointAddress, space: int, era: int) -> None:
        self._nak_timers.pop((source, space, era), None)
        if space == 0:
            if era < self._era:
                return  # old era: no longer our problem
            state = self._mcast.get((source, era))
        else:
            state = self._ucast.get(source)
        if state is None or not state.has_gap:
            return  # gap closed in the meantime
        kind = _NAK_M if space == 0 else _NAK_U
        for lo, hi in self._missing_runs(state, limit=8):
            nak = Message()
            nak.push_header(self.name, {"kind": kind, "era": era, "lo": lo, "hi": hi})
            self.naks_sent += 1
            self.pass_down(Downcall(DowncallType.SEND, message=nak, members=[source]))
        # Re-arm: if the retransmission is lost too, ask again.
        self._maybe_schedule_nak(state, source, space, era)

    @staticmethod
    def _missing_runs(state: _RecvState, limit: int):
        """Contiguous runs of sequence numbers we lack, oldest first.

        Requesting only the holes (not the whole [expected, known_max]
        range) keeps retransmission traffic proportional to actual loss.
        """
        runs = []
        seq = state.expected
        while seq <= state.known_max and len(runs) < limit:
            if seq in state.pending:
                seq += 1
                continue
            start = seq
            while seq <= state.known_max and seq not in state.pending:
                seq += 1
            runs.append((start, seq - 1))
        return runs

    # -- retransmission ------------------------------------------------------

    def _on_nak(
        self,
        requester: EndpointAddress,
        era: int,
        lo: int,
        hi: int,
        unicast: bool,
    ) -> None:
        if hi < lo or hi - lo >= self.window:
            # No honest receiver requests more than a window at once;
            # this is a garbled packet that happened to parse (without a
            # CHKSUM layer below, garbling detection is nobody's job).
            self.bogus_dropped += 1
            return
        if unicast:
            buffer = self._usent.get(requester, OrderedDict())
            gone_kind = _GONE_U
        else:
            buffer = self._sent.get(era, OrderedDict())
            gone_kind = _GONE_M
        for seq in range(lo, hi + 1):
            buffered = buffer.get(seq)
            if buffered is not None:
                self.retransmissions += 1
                self.pass_down(
                    Downcall(
                        DowncallType.SEND,
                        message=buffered.copy(),
                        members=[requester],
                    )
                )
            else:
                self.placeholders_sent += 1
                placeholder = Message()
                placeholder.push_header(
                    self.name, {"kind": gone_kind, "era": era, "seq": seq}
                )
                self.pass_down(
                    Downcall(
                        DowncallType.SEND, message=placeholder, members=[requester]
                    )
                )

    # -- status and failure suspicion ----------------------------------------

    def _status_tick(self) -> None:
        status = Message()
        status.push_header(
            self.name, {"kind": _STATUS, "era": self._era, "seq": self._send_seq}
        )
        self.pass_down(Downcall(DowncallType.CAST, message=status))
        # Keep advertising the previous era while its buffer is retained
        # so a peer still catching up can discover tail losses there.
        for era, high in self._era_high.items():
            if era == self._era or high == 0:
                continue
            old_status = Message()
            old_status.push_header(
                self.name, {"kind": _STATUS, "era": era, "seq": high}
            )
            self.pass_down(Downcall(DowncallType.CAST, message=old_status))
        # Unicast streams need sender-side advertisement too: a lost
        # *final* unicast would otherwise never be missed by anyone.
        for dest, seq in self._usend_seq.items():
            ustatus = Message()
            ustatus.push_header(self.name, {"kind": _USTATUS, "seq": seq})
            self.pass_down(
                Downcall(DowncallType.SEND, message=ustatus, members=[dest])
            )
        self._check_silence()

    def _on_status(self, source: EndpointAddress, era: int, high_seq: int) -> None:
        if era < self._era:
            return
        state = self._mcast.setdefault((source, era), _RecvState())
        if high_seq > state.expected + _SEQ_SANITY:
            self.bogus_dropped += 1
            return
        state.known_max = max(state.known_max, high_seq)
        if era == self._era:
            self._maybe_schedule_nak(state, source, space=0, era=era)

    def _on_ustatus(self, source: EndpointAddress, high_seq: int) -> None:
        state = self._ucast.setdefault(source, _RecvState())
        if high_seq > state.expected + _SEQ_SANITY:
            self.bogus_dropped += 1
            return
        state.known_max = max(state.known_max, high_seq)
        self._maybe_schedule_nak(state, source, space=1, era=0)

    def _check_silence(self) -> None:
        now = self.now
        for peer in self._peers:
            if peer == self.endpoint or peer in self._reported:
                continue
            heard = self._last_heard.get(peer, now)
            if now - heard > self.problem_timeout:
                self._reported.add(peer)
                self.trace("problem", peer=str(peer))
                self.pass_up(Upcall(UpcallType.PROBLEM, source=peer))

    def stop(self) -> None:
        for handle in self._nak_timers.values():
            handle.cancel()
        self._nak_timers.clear()
        super().stop()

    def dump(self):
        info = super().dump()
        info.update(
            era=self._era,
            send_seq=self._send_seq,
            buffered=sum(len(b) for b in self._sent.values()),
            naks_sent=self.naks_sent,
            retransmissions=self.retransmissions,
            placeholders_sent=self.placeholders_sent,
            duplicates_dropped=self.duplicates_dropped,
            stale_era_dropped=self.stale_era_dropped,
            bogus_dropped=self.bogus_dropped,
            lost_reported=self.lost_reported,
            peers=[str(p) for p in sorted(self._peers)],
        )
        return info
