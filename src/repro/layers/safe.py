"""SAFE — ORDER(safe): deliver only stable messages (Table 3).

"Safe delivery" (property P7) hands a message to the application only
once every member of the view holds a copy — so no delivered message
can ever be lost to a minority of crashes.  The layer composes with a
stability layer below (STABLE or PINWHEEL, property P14): it
acknowledges each message on receipt, waits for the stability frontier
to cover it, and releases messages in deterministic (origin rank,
stability id) order.

The price is latency (at least one stability-gossip round trip), which
is exactly the STABLE-vs-PINWHEEL trade Section 10 invites applications
to make.

Properties (Table 3): requires P3, P8, P9, P14, P15; provides P5, P7.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.stack import register_layer
from repro.core.view import View
from repro.net.address import EndpointAddress


@register_layer
class SafeOrderLayer(Layer):
    """Holds deliveries until the stability layer confirms every member
    has the message (safe delivery, P7)."""

    name = "SAFE"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.view: Optional[View] = None
        #: Held messages: (origin, sid) -> upcall.
        self._held: Dict[Tuple[EndpointAddress, int], Upcall] = {}
        self._released: Dict[EndpointAddress, int] = {}
        self.delivered_safe = 0

    def handle_up(self, upcall: Upcall) -> None:
        utype = upcall.type
        if utype is UpcallType.VIEW and upcall.view is not None:
            self._release_all()  # VS below: every survivor holds the same set
            self.view = upcall.view
            self._released = {}
            self.pass_up(upcall)
            return
        if utype is UpcallType.STABLE:
            frontier = upcall.extra.get("frontier", {})
            self._release_stable(frontier)
            self.pass_up(upcall)
            return
        if utype is UpcallType.CAST and "stable_id" in upcall.extra:
            origin, sid = upcall.extra["stable_id"]
            self._held[(origin, sid)] = upcall
            # "Processed" here means "safely received": ack immediately
            # so the frontier can advance without application help.
            self.pass_down(
                Downcall(
                    DowncallType.ACK, extra={"stable_id": (origin, sid)}
                )
            )
            return
        self.pass_up(upcall)

    def _release_stable(self, frontier: Dict[EndpointAddress, int]) -> None:
        """Release held messages covered by the frontier, in order."""
        ready: List[Tuple[int, int, Tuple[EndpointAddress, int]]] = []
        for (origin, sid) in self._held:
            if frontier.get(origin, 0) >= sid:
                rank = self.view.rank_of(origin) if self.view else 0
                ready.append((rank, sid, (origin, sid)))
        for _, _, key in sorted(ready):
            upcall = self._held.pop(key)
            origin, sid = key
            self._released[origin] = max(self._released.get(origin, 0), sid)
            self.delivered_safe += 1
            upcall.extra["safe"] = True
            self.pass_up(upcall)

    def _release_all(self) -> None:
        """View change: everything still held is now safe by VS."""
        ready = sorted(
            self._held,
            key=lambda key: (
                self.view.rank_of(key[0]) if self.view and self.view.contains(key[0]) else 999,
                key[1],
            ),
        )
        for key in ready:
            upcall = self._held.pop(key)
            upcall.extra["safe"] = True
            self.delivered_safe += 1
            self.pass_up(upcall)

    def dump(self):
        info = super().dump()
        info.update(held=len(self._held), delivered_safe=self.delivered_safe)
        return info
