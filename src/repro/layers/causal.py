"""Causal ordering as two microprotocols (Table 3's ORDER(causal)).

Table 3 splits causality in two, and so do we, because it showcases the
paper's thesis that complex protocols decompose into stackable
microprotocols:

* :class:`CausalTimestampLayer` (``CAUSAL_TS``) stamps every cast with
  a vector timestamp — it *provides* property P13 (causal timestamps)
  and orders nothing.
* :class:`CausalOrderLayer` (``CAUSAL``) *requires* P13 from below and
  delays deliveries until their causal predecessors have been
  delivered — providing P5 (causal delivery).

Stack them as ``CAUSAL:CAUSAL_TS:MBRSHIP:...``.  Virtual synchrony
underneath makes the buffers safe: causality never crosses a view
boundary, and every causal predecessor of a delivered message is
guaranteed to arrive within the same view.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.message import Message
from repro.core.stack import register_layer
from repro.core.view import View
from repro.net.address import EndpointAddress

hdr.register(
    "CAUSAL_TS",
    fields=[("vc", hdr.MapOf(hdr.ADDRESS, hdr.U64))],
    defaults={"vc": {}},
)


@register_layer
class CausalTimestampLayer(Layer):
    """Pushes a vector timestamp on each cast (provides P13).

    The vector counts, per member, the casts this endpoint had received
    (or sent) when the message departed.  Over-approximation relative to
    what the application truly "saw" is safe: it can only strengthen the
    ordering the layer above enforces.
    """

    name = "CAUSAL_TS"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.vc: Dict[EndpointAddress, int] = {}

    def handle_down(self, downcall: Downcall) -> None:
        if downcall.type is DowncallType.CAST and downcall.message is not None:
            self.vc[self.endpoint] = self.vc.get(self.endpoint, 0) + 1
            downcall.message.push_header(self.name, {"vc": dict(self.vc)})
        self.pass_down(downcall)

    def handle_up(self, upcall: Upcall) -> None:
        if upcall.type is UpcallType.VIEW and upcall.view is not None:
            self.vc = {}  # causality does not cross view boundaries
            self.pass_up(upcall)
            return
        if upcall.type is UpcallType.CAST and upcall.message is not None:
            header = upcall.message.peek_header(self.name)
            if header is not None:
                upcall.message.pop_header(self.name)
                source = upcall.source
                if source != self.endpoint:
                    self.vc[source] = self.vc.get(source, 0) + 1
                upcall.extra["vc"] = header["vc"]
        self.pass_up(upcall)

    def dump(self):
        info = super().dump()
        info.update(vc={str(k): v for k, v in self.vc.items()})
        return info


@register_layer
class CausalOrderLayer(Layer):
    """Delays deliveries until causal predecessors arrive (provides P5).

    Uses the P13 timestamps attached by a CAUSAL_TS layer below.  A
    message m from s is deliverable when ``vc_m[s] == delivered[s] + 1``
    and ``vc_m[t] <= delivered[t]`` for every other member t.
    """

    name = "CAUSAL"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.view: Optional[View] = None
        self.delivered: Dict[EndpointAddress, int] = {}
        self._held: List[Tuple[Upcall, Dict[EndpointAddress, int]]] = []
        self.causally_delayed = 0

    def handle_up(self, upcall: Upcall) -> None:
        if upcall.type is UpcallType.VIEW and upcall.view is not None:
            self._flush_holds()
            self.view = upcall.view
            self.delivered = {}
            self.pass_up(upcall)
            return
        if upcall.type is not UpcallType.CAST or "vc" not in upcall.extra:
            self.pass_up(upcall)
            return
        vc = upcall.extra["vc"]
        if self._deliverable(upcall.source, vc):
            self._deliver(upcall, vc)
            self._retry_held()
        else:
            self.causally_delayed += 1
            self._held.append((upcall, vc))

    def _deliverable(
        self, source: EndpointAddress, vc: Dict[EndpointAddress, int]
    ) -> bool:
        for member, count in vc.items():
            if member == source:
                if count != self.delivered.get(member, 0) + 1:
                    return False
            elif count > self.delivered.get(member, 0):
                return False
        return True

    def _deliver(self, upcall: Upcall, vc: Dict[EndpointAddress, int]) -> None:
        source = upcall.source
        self.delivered[source] = self.delivered.get(source, 0) + 1
        self.pass_up(upcall)

    def _retry_held(self) -> None:
        progress = True
        while progress:
            progress = False
            for index, (upcall, vc) in enumerate(self._held):
                if self._deliverable(upcall.source, vc):
                    del self._held[index]
                    self._deliver(upcall, vc)
                    progress = True
                    break

    def _flush_holds(self) -> None:
        """Before a view change, release anything still held.

        With virtual synchrony below this cannot normally trigger; it
        defends against mis-stacked configurations, delivering in a
        deterministic order rather than dropping messages.
        """
        if not self._held:
            return
        self.trace("causal_flush_on_view", held=len(self._held))
        self._held.sort(key=lambda item: (str(item[0].source), sorted(item[1].values())))
        for upcall, vc in self._held:
            self.pass_up(upcall)
        self._held = []

    def dump(self):
        info = super().dump()
        info.update(
            held=len(self._held),
            causally_delayed=self.causally_delayed,
            delivered={str(k): v for k, v in self.delivered.items()},
        )
        return info
