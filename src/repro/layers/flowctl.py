"""FLOW — flow control "preventing network congestion" (Figure 1).

.. deprecated::
    FLOW is a *one-sided* token bucket: the sender paces itself with an
    **unbounded** FIFO, so a fan-in storm or a slow receiver balloons
    this queue and the NAK retransmission buffers below it.  Use the
    credit-based :class:`~repro.layers.credit.CreditLayer` (``CREDIT``)
    instead — receiver-granted windows, bounded queues, and real
    backpressure.  This layer remains for compatibility and emits a
    :class:`DeprecationWarning` on construction.

A token-bucket pacer on outgoing casts and sends: up to ``burst``
messages may leave back-to-back; sustained throughput is capped at
``rate`` messages per second, with the excess queued in FIFO order.
Layers above never block — backpressure shows up as added latency and
an observable queue depth (the ``dump`` downcall reports it).
"""

from __future__ import annotations

import warnings
from collections import deque
from typing import Deque, Optional

from repro.core.events import Downcall, DowncallType
from repro.core.layer import Layer
from repro.core.stack import register_layer


@register_layer
class FlowControlLayer(Layer):
    """Token-bucket pacing of outgoing traffic (deprecated; see CREDIT).

    Config:
        rate (float): sustained messages/second (default 1000.0).
        burst (int): bucket capacity in messages (default 32).
    """

    name = "FLOW"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        warnings.warn(
            "the FLOW layer (one-sided token bucket, unbounded queue) is "
            "deprecated; stack CREDIT for receiver-granted credit flow "
            "control with bounded queues and backpressure",
            DeprecationWarning,
            stacklevel=2,
        )
        self.rate = float(config.get("rate", 1000.0))
        self.burst = int(config.get("burst", 32))
        if self.rate <= 0 or self.burst < 1:
            raise ValueError("rate must be positive and burst at least 1")
        self._tokens = float(self.burst)
        # Lazy epoch: ``None`` until the first refill reads ``self.now``.
        # Starting at 0.0 made the first refill on the realtime substrate
        # measure time since the *clock's* epoch, silently refilling the
        # bucket by (rate x uptime) tokens.
        self._last_refill: Optional[float] = None
        self._queue: Deque[Downcall] = deque()
        self._drain_scheduled = False
        self.paced = 0
        self.max_queue_depth = 0

    #: Tolerance for float accumulation in the bucket: a token short by
    #: less than this still counts, or the drain loop would reschedule
    #: itself with a ~1e-17 s wait forever.
    _EPSILON = 1e-9

    def handle_down(self, downcall: Downcall) -> None:
        if downcall.type not in (DowncallType.CAST, DowncallType.SEND):
            self.pass_down(downcall)
            return
        self._refill()
        if self._tokens >= 1.0 - self._EPSILON and not self._queue:
            self._tokens = max(self._tokens - 1.0, 0.0)
            self.pass_down(downcall)
            return
        self.paced += 1
        self._queue.append(downcall)
        self.max_queue_depth = max(self.max_queue_depth, len(self._queue))
        self._schedule_drain()

    def _refill(self) -> None:
        now = self.now
        if self._last_refill is None:
            self._last_refill = now
        self._tokens = min(
            float(self.burst), self._tokens + (now - self._last_refill) * self.rate
        )
        self._last_refill = now

    def _schedule_drain(self) -> None:
        if self._drain_scheduled:
            return
        self._drain_scheduled = True
        wait = max((1.0 - self._tokens) / self.rate, 1.0 / (1000.0 * self.rate))
        self.context.scheduler.call_after(wait, self._drain)

    def _drain(self) -> None:
        self._drain_scheduled = False
        self._refill()
        while self._queue and self._tokens >= 1.0 - self._EPSILON:
            self._tokens = max(self._tokens - 1.0, 0.0)
            self.pass_down(self._queue.popleft())
        if self._queue:
            self._schedule_drain()

    def dump(self):
        info = super().dump()
        info.update(
            rate=self.rate,
            burst=self.burst,
            queued=len(self._queue),
            paced=self.paced,
            max_queue_depth=self.max_queue_depth,
        )
        return info
