"""LOCATE — resource location (Figure 1: "resource location, in the internet").

Members advertise named resources ("printer", "db-primary", ...); any
member resolves a name to the endpoints currently offering it.  The
registry replicates by multicast, re-synchronizes joiners at each view
change, and prunes offers from departed members — so resolution
reflects the live membership, not stale registrations (the advantage
over a plain name server).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.message import Message
from repro.core.stack import register_layer
from repro.core.view import View
from repro.net.address import EndpointAddress

_OFFER = 0  # member -> group: I provide <name>
_WITHDRAW = 1  # member -> group: I no longer provide <name>

_NOBODY = EndpointAddress("", 0)

hdr.register(
    "LOCATE",
    fields=[
        ("kind", hdr.U8),
        ("resource", hdr.TEXT),
        ("provider", hdr.ADDRESS),
    ],
    defaults={"resource": "", "provider": _NOBODY},
)


@register_layer
class ResourceLocationLayer(Layer):
    """Replicated resource offers with membership-aware resolution.

    Application surface (via ``focus("LOCATE")``)::

        locate = handle.focus("LOCATE")
        locate.offer("printer")
        locate.resolve("printer")   # -> [EndpointAddress, ...]
    """

    name = "LOCATE"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.view: Optional[View] = None
        #: resource name -> providers, in offer order.
        self._providers: Dict[str, List[EndpointAddress]] = {}
        self._my_offers: Set[str] = set()
        self.offers_seen = 0

    # ------------------------------------------------------------------
    # Application surface
    # ------------------------------------------------------------------

    def offer(self, resource: str) -> None:
        """Advertise that this endpoint provides ``resource``."""
        self._my_offers.add(resource)
        self._announce(_OFFER, resource)

    def withdraw(self, resource: str) -> None:
        """Stop advertising ``resource``."""
        self._my_offers.discard(resource)
        self._announce(_WITHDRAW, resource)

    def resolve(self, resource: str) -> List[EndpointAddress]:
        """Current live providers of ``resource``, oldest offer first."""
        return list(self._providers.get(resource, []))

    def resources(self) -> List[str]:
        """All resource names with at least one live provider."""
        return sorted(name for name, p in self._providers.items() if p)

    # ------------------------------------------------------------------

    def _announce(self, kind: int, resource: str) -> None:
        message = Message()
        message.push_header(
            self.name,
            {"kind": kind, "resource": resource, "provider": self.endpoint},
        )
        self.pass_down(Downcall(DowncallType.CAST, message=message))

    def handle_up(self, upcall: Upcall) -> None:
        if upcall.type is UpcallType.VIEW and upcall.view is not None:
            self._on_view(upcall.view)
            self.pass_up(upcall)
            return
        message = upcall.message
        if (
            upcall.type is not UpcallType.CAST
            or message is None
            or message.peek_header(self.name) is None
        ):
            self.pass_up(upcall)
            return
        header = message.pop_header(self.name)
        providers = self._providers.setdefault(header["resource"], [])
        provider = header["provider"]
        if header["kind"] == _OFFER:
            self.offers_seen += 1
            if provider not in providers:
                providers.append(provider)
        else:
            if provider in providers:
                providers.remove(provider)

    def _on_view(self, view: View) -> None:
        """Prune dead providers; re-announce ours for any joiners."""
        self.view = view
        member_set = set(view.members)
        for providers in self._providers.values():
            providers[:] = [p for p in providers if p in member_set]
        for resource in sorted(self._my_offers):
            self._announce(_OFFER, resource)

    def dump(self):
        info = super().dump()
        info.update(
            my_offers=sorted(self._my_offers),
            resources={
                name: [str(p) for p in providers]
                for name, providers in self._providers.items()
                if providers
            },
            offers_seen=self.offers_seen,
        )
        return info
