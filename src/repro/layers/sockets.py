"""SOCKETS — the UNIX-socket-style facade (Sections 2 and 11).

"Horus can present a process group through a standard UNIX sockets
interface (e.g. a UNIX sendto operation will be mapped to a multicast,
and a recvfrom will receive the next incoming message)."

The facade is the paper's "top-most module [which] is the only one to
deviate from the Horus interface standard": it adapts the HCPI to an
interface users already know.  It therefore wraps a
:class:`~repro.core.group.GroupHandle` rather than registering as a
stackable layer.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.endpoint import DEFAULT_STACK, Endpoint
from repro.core.group import GroupHandle
from repro.errors import GroupError
from repro.net.address import EndpointAddress


class HorusSocket:
    """A datagram-socket look-alike over a Horus process group.

    >>> sock = HorusSocket(endpoint)
    >>> sock.bind("chatroom")                 # join the group
    >>> sock.sendto(b"hello", "chatroom")     # multicast
    >>> data, addr = sock.recvfrom()          # next delivery (or None)
    """

    def __init__(self, endpoint: Endpoint, stack: str = DEFAULT_STACK) -> None:
        self._endpoint = endpoint
        self._stack = stack
        self._handle: Optional[GroupHandle] = None

    def bind(self, group: str) -> None:
        """Join ``group`` (maps to the HCPI ``join`` downcall)."""
        if self._handle is not None:
            raise GroupError("socket is already bound")
        self._handle = self._endpoint.join(group, stack=self._stack)

    def sendto(self, data: bytes, group: str) -> int:
        """Multicast ``data`` to the bound group; returns bytes queued."""
        handle = self._bound()
        if group != str(handle.group):
            raise GroupError(
                f"socket is bound to {handle.group}, cannot send to {group!r}"
            )
        handle.cast(data)
        return len(data)

    def recvfrom(
        self, timeout: Optional[float] = None
    ) -> Optional[Tuple[bytes, EndpointAddress]]:
        """The next delivered message as ``(data, source)``, or ``None``.

        Without ``timeout`` the call is a non-blocking poll: the world
        must be run between calls.  With ``timeout`` the call *drives
        the world itself* until a message arrives or the deadline
        passes — a bounded virtual-time wait on the simulation engine,
        a genuine blocking-with-deadline on the realtime engine.  Only
        call the blocking form from outside the event loop (top-level
        application code), never from inside a delivered callback.
        """
        handle = self._bound()
        delivered = handle.receive()
        if delivered is None and timeout is not None and timeout > 0:
            world = self._endpoint.process.world
            deadline = world.now + timeout
            slice_len = max(min(timeout / 20.0, 0.05), 1e-4)
            while delivered is None and world.now < deadline:
                world.run(min(slice_len, deadline - world.now))
                delivered = handle.receive()
        if delivered is None:
            return None
        return delivered.data, delivered.source

    def getsockname(self) -> EndpointAddress:
        """This socket's endpoint address."""
        return self._endpoint.address

    def close(self) -> None:
        """Leave the group (idempotent)."""
        if self._handle is not None and not self._handle.left:
            self._handle.leave()

    @property
    def handle(self) -> GroupHandle:
        """Escape hatch to the full Horus interface underneath."""
        return self._bound()

    def _bound(self) -> GroupHandle:
        if self._handle is None:
            raise GroupError("socket is not bound to a group")
        return self._handle
