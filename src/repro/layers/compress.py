"""COMPRESS — body compression "to improve bandwidth use" (Figure 1).

Compresses the body with zlib when doing so actually shrinks it; tiny
or incompressible bodies travel untouched (one header bit records the
choice, so the receive side never guesses).
"""

from __future__ import annotations

import zlib

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.stack import register_layer

hdr.register("COMPRESS", fields=[("packed", hdr.BOOL)])


@register_layer
class CompressionLayer(Layer):
    """zlib body compression with an incompressibility escape hatch.

    Config:
        level (int): zlib compression level 1-9 (default 6).
        min_size (int): bodies smaller than this skip compression
            (default 64 bytes).
    """

    name = "COMPRESS"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.level = int(config.get("level", 6))
        self.min_size = int(config.get("min_size", 64))
        self.bytes_in = 0
        self.bytes_out = 0

    def handle_down(self, downcall: Downcall) -> None:
        message = downcall.message
        if (
            downcall.type in (DowncallType.CAST, DowncallType.SEND)
            and message is not None
        ):
            body = message.body_bytes()
            packed = False
            if len(body) >= self.min_size:
                squeezed = zlib.compress(body, self.level)
                if len(squeezed) < len(body):
                    message._segments[:] = [squeezed]
                    packed = True
            self.bytes_in += len(body)
            self.bytes_out += message.body_size
            message.push_header(self.name, {"packed": packed})
        self.pass_down(downcall)

    def handle_up(self, upcall: Upcall) -> None:
        message = upcall.message
        if (
            upcall.type not in (UpcallType.CAST, UpcallType.SEND)
            or message is None
            or message.peek_header(self.name) is None
        ):
            self.pass_up(upcall)
            return
        header = message.pop_header(self.name)
        if header["packed"]:
            message._segments[:] = [zlib.decompress(message.body_bytes())]
        self.pass_up(upcall)

    @property
    def ratio(self) -> float:
        """Compressed-to-original byte ratio so far (1.0 = no gain)."""
        if self.bytes_in == 0:
            return 1.0
        return self.bytes_out / self.bytes_in

    def dump(self):
        info = super().dump()
        info.update(
            bytes_in=self.bytes_in, bytes_out=self.bytes_out, ratio=self.ratio
        )
        return info
