"""COM — the bottom-most layer: network ↔ HCPI adapter.

Section 7: "The COM layer translates the low-level network interface
into the Common Protocol Interface.  If necessary, COM keeps track of
the source of messages (by pushing the address of the source endpoint
on each outgoing message), and filters out spurious messages from
endpoints not in its view."

Properties (Table 3): requires P1 from the network; provides P10 (byte
re-ordering detection — the wire format is self-describing, so a
reassembled/NAK layer above can trust field boundaries) and P11 (source
address).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.message import Message
from repro.core.stack import register_layer
from repro.core.view import View, ViewId
from repro.errors import MessageError
from repro.net.address import EndpointAddress

_KIND_CAST = 0
_KIND_SEND = 1

hdr.register(
    "COM",
    fields=[
        ("group", hdr.GROUP),
        ("source", hdr.ADDRESS),
        ("kind", hdr.U8),
    ],
)


@register_layer
class ComLayer(Layer):
    """Bottom adapter between the stack and a simulated network.

    Config:
        filter_sources (bool): drop incoming messages whose source is
            not in the installed destination view (default ``False`` —
            membership layers do their own, stronger filtering).
    """

    name = "COM"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.filter_sources = bool(config.get("filter_sources", False))
        #: Current destination set for casts (the "view" at this level).
        self.dests: List[EndpointAddress] = []
        self._remote: List[EndpointAddress] = []
        self._self_in_dests = False
        #: Spurious messages dropped by the source filter.
        self.filtered = 0
        #: Messages sent/received, for the dump downcall.
        self.casts_sent = 0
        self.sends_sent = 0
        self.delivered = 0
        #: Reused marshalling scratch buffer (send-path buffer reuse).
        self._send_buf = bytearray()
        #: Table-mode wire state: COM owns the sender-side channel
        #: encoders.  Casts share one channel (this endpoint's stream
        #: into the group); each unicast peer gets its own channel,
        #: because installs drained into a unicast would otherwise be
        #: invisible to the rest of the group.  The epoch draws from the
        #: stack's seeded stream so a rejoined sender gets a fresh epoch
        #: and receivers drop the stale channel table.
        self._table_mode = context.wire_mode == "table"
        if self._table_mode:
            self._channel = hdr.make_channel_encoder(
                self.endpoint, self.group, epoch=context.rng.randrange(1 << 16)
            )
        else:
            self._channel = None
        self._peer_channels = {}

    # ------------------------------------------------------------------
    # Downcalls
    # ------------------------------------------------------------------

    def handle_down(self, downcall: Downcall) -> None:
        dtype = downcall.type
        if dtype is DowncallType.CAST:
            self._cast(downcall.message)
        elif dtype is DowncallType.SEND:
            self._send(downcall.message, downcall.members or [])
        elif dtype is DowncallType.JOIN:
            self._join()
        elif dtype is DowncallType.VIEW:
            if downcall.members is not None:
                self._set_dests(downcall.members)
        elif dtype is DowncallType.LEAVE:
            self._leave()
        elif dtype is DowncallType.DESTROY:
            self.stop()
        # ACK, STABLE, FLUSH, FLUSH_OK, MERGE and friends terminate
        # here: with nothing below, there is nobody left to tell.

    def _join(self) -> None:
        directory = self.context.directory
        if directory is not None:
            directory.register(self.group, self.endpoint)
            snapshot = directory.lookup(self.group)
        else:
            snapshot = [self.endpoint]
        self._set_dests(snapshot)
        # Report initial connectivity.  At this level a view "is nothing
        # but the set of destination endpoints" (Section 7) — epoch 0
        # marks it as connectivity, not agreed membership.
        view = View(
            group=self.group,
            view_id=ViewId(epoch=0, coordinator=snapshot[0]),
            members=tuple(snapshot),
        )
        self.pass_up(Upcall(UpcallType.VIEW, view=view, members=list(snapshot)))

    def _set_dests(self, members) -> None:
        new_dests = list(members)
        if self._table_mode and set(new_dests) - set(self.dests):
            # The cast channel gained listeners who missed every earlier
            # install: make the next multicast self-contained.
            self._channel.refresh_all()
        self.dests = new_dests
        # Per-cast derived views, recomputed only on view changes.
        self._remote = [d for d in new_dests if d != self.endpoint]
        self._self_in_dests = self.endpoint in new_dests

    def _peer_channel(self, member: EndpointAddress):
        """The per-peer channel encoder for unicast sends to ``member``."""
        channel = self._peer_channels.get(member)
        if channel is None:
            channel = hdr.make_channel_encoder(
                self.endpoint, member,
                epoch=self.context.rng.randrange(1 << 16),
            )
            self._peer_channels[member] = channel
        return channel

    def _leave(self) -> None:
        directory = self.context.directory
        if directory is not None:
            directory.unregister(self.group, self.endpoint)
        self.pass_up(Upcall(UpcallType.EXIT))

    def _cast(self, message: Optional[Message]) -> None:
        if message is None:
            return
        message.push_owned_header(
            self.name,
            {"group": self.group, "source": self.endpoint, "kind": _KIND_CAST},
        )
        data = self.context.registry.marshal(
            message, self.context.wire_mode,
            channel=self._channel, into=self._send_buf,
        )
        self.casts_sent += 1
        remote = self._remote
        if self._self_in_dests:
            # A member delivers its own casts.  Loopback never hits the
            # wire, so it skips marshal/unmarshal entirely — and skips
            # copying too: once marshalled, the sent message is owned by
            # nobody (layers that retransmit buffered their own copy on
            # the way down), so the object itself ascends the stack.
            # The wire encoding is exercised by every remote receiver
            # and by the round-trip/fuzz suites.
            self.context.scheduler.call_soon(self._loopback_copy, message)
        if remote and self._alive():
            self.context.network.multicast(self.endpoint, remote, data)

    def _send(self, message: Optional[Message], members: List[EndpointAddress]) -> None:
        if message is None or not members:
            return
        message.push_owned_header(
            self.name,
            {"group": self.group, "source": self.endpoint, "kind": _KIND_SEND},
        )
        self.sends_sent += 1
        if not self._table_mode:
            data = self.context.registry.marshal(
                message, self.context.wire_mode, into=self._send_buf,
            )
            for member in members:
                if member == self.endpoint:
                    self.context.scheduler.call_soon(self._loopback_copy, message)
                elif self._alive():
                    self.context.network.unicast(self.endpoint, member, data)
            return
        # Table mode marshals once per peer: each unicast channel tracks
        # what its one receiver has installed, so pending installs drain
        # into the datagram that actually reaches that receiver.
        for member in members:
            if member == self.endpoint:
                # Deferred past the loop by call_soon, so the per-peer
                # marshals below still see the untouched header stack.
                self.context.scheduler.call_soon(self._loopback_copy, message)
                continue
            data = self.context.registry.marshal(
                message, self.context.wire_mode,
                channel=self._peer_channel(member), into=self._send_buf,
            )
            if self._alive():
                self.context.network.unicast(self.endpoint, member, data)

    def _loopback_copy(self, message: Message) -> None:
        # Self-delivery without the wire codec: the very header dicts
        # the sending layers pushed come back up, and upper layers pop
        # exactly what they pushed.
        self._receive(message)

    def _alive(self) -> bool:
        process = self.context.process
        return process is None or process.alive

    # ------------------------------------------------------------------
    # Upcalls (messages handed in by the endpoint demultiplexer)
    # ------------------------------------------------------------------

    def handle_up(self, upcall: Upcall) -> None:
        message = upcall.message
        if message is None:
            self.pass_up(upcall)
            return
        # Inline _receive, retagging and forwarding the incoming upcall
        # itself — one event object rides the whole up traversal.
        try:
            header = message.pop_header(self.name)
        except MessageError:
            # Not ours — garbled or mis-stacked; drop rather than crash.
            self.filtered += 1
            return
        source = header["source"]
        if self.filter_sources and source not in self.dests:
            self.filtered += 1
            return
        self.delivered += 1
        upcall.type = (
            UpcallType.CAST if header["kind"] == _KIND_CAST else UpcallType.SEND
        )
        upcall.source = source
        self.pass_up(upcall)

    def _receive(self, message: Message) -> None:
        try:
            header = message.pop_header(self.name)
        except MessageError:
            # Not ours — garbled or mis-stacked; drop rather than crash.
            self.filtered += 1
            return
        source = header["source"]
        if self.filter_sources and source not in self.dests:
            self.filtered += 1
            return
        self.delivered += 1
        if header["kind"] == _KIND_CAST:
            self.pass_up(Upcall(UpcallType.CAST, message=message, source=source))
        else:
            self.pass_up(Upcall(UpcallType.SEND, message=message, source=source))

    def dump(self):
        info = super().dump()
        info.update(
            dests=[str(d) for d in self.dests],
            casts_sent=self.casts_sent,
            sends_sent=self.sends_sent,
            delivered=self.delivered,
            filtered=self.filtered,
        )
        return info
