"""COM — the bottom-most layer: network ↔ HCPI adapter.

Section 7: "The COM layer translates the low-level network interface
into the Common Protocol Interface.  If necessary, COM keeps track of
the source of messages (by pushing the address of the source endpoint
on each outgoing message), and filters out spurious messages from
endpoints not in its view."

Properties (Table 3): requires P1 from the network; provides P10 (byte
re-ordering detection — the wire format is self-describing, so a
reassembled/NAK layer above can trust field boundaries) and P11 (source
address).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.message import Message
from repro.core.stack import register_layer
from repro.core.view import View, ViewId
from repro.errors import MessageError
from repro.net.address import EndpointAddress

_KIND_CAST = 0
_KIND_SEND = 1

hdr.register(
    "COM",
    fields=[
        ("group", hdr.GROUP),
        ("source", hdr.ADDRESS),
        ("kind", hdr.U8),
    ],
)


@register_layer
class ComLayer(Layer):
    """Bottom adapter between the stack and a simulated network.

    Config:
        filter_sources (bool): drop incoming messages whose source is
            not in the installed destination view (default ``False`` —
            membership layers do their own, stronger filtering).
    """

    name = "COM"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.filter_sources = bool(config.get("filter_sources", False))
        #: Current destination set for casts (the "view" at this level).
        self.dests: List[EndpointAddress] = []
        #: Spurious messages dropped by the source filter.
        self.filtered = 0
        #: Messages sent/received, for the dump downcall.
        self.casts_sent = 0
        self.sends_sent = 0
        self.delivered = 0

    # ------------------------------------------------------------------
    # Downcalls
    # ------------------------------------------------------------------

    def handle_down(self, downcall: Downcall) -> None:
        dtype = downcall.type
        if dtype is DowncallType.CAST:
            self._cast(downcall.message)
        elif dtype is DowncallType.SEND:
            self._send(downcall.message, downcall.members or [])
        elif dtype is DowncallType.JOIN:
            self._join()
        elif dtype is DowncallType.VIEW:
            if downcall.members is not None:
                self.dests = list(downcall.members)
        elif dtype is DowncallType.LEAVE:
            self._leave()
        elif dtype is DowncallType.DESTROY:
            self.stop()
        # ACK, STABLE, FLUSH, FLUSH_OK, MERGE and friends terminate
        # here: with nothing below, there is nobody left to tell.

    def _join(self) -> None:
        directory = self.context.directory
        if directory is not None:
            directory.register(self.group, self.endpoint)
            snapshot = directory.lookup(self.group)
        else:
            snapshot = [self.endpoint]
        self.dests = list(snapshot)
        # Report initial connectivity.  At this level a view "is nothing
        # but the set of destination endpoints" (Section 7) — epoch 0
        # marks it as connectivity, not agreed membership.
        view = View(
            group=self.group,
            view_id=ViewId(epoch=0, coordinator=snapshot[0]),
            members=tuple(snapshot),
        )
        self.pass_up(Upcall(UpcallType.VIEW, view=view, members=list(snapshot)))

    def _leave(self) -> None:
        directory = self.context.directory
        if directory is not None:
            directory.unregister(self.group, self.endpoint)
        self.pass_up(Upcall(UpcallType.EXIT))

    def _cast(self, message: Optional[Message]) -> None:
        if message is None:
            return
        message.push_header(
            self.name,
            {"group": self.group, "source": self.endpoint, "kind": _KIND_CAST},
        )
        data = self.context.registry.marshal(message, self.context.wire_mode)
        self.casts_sent += 1
        remote = [d for d in self.dests if d != self.endpoint]
        if self.endpoint in self.dests:
            # A member delivers its own casts (loopback never hits the
            # wire, but takes the same unmarshal path for fidelity).
            self.context.scheduler.call_soon(self._loopback, data)
        if remote and self._alive():
            self.context.network.multicast(self.endpoint, remote, data)

    def _send(self, message: Optional[Message], members: List[EndpointAddress]) -> None:
        if message is None or not members:
            return
        message.push_header(
            self.name,
            {"group": self.group, "source": self.endpoint, "kind": _KIND_SEND},
        )
        data = self.context.registry.marshal(message, self.context.wire_mode)
        self.sends_sent += 1
        for member in members:
            if member == self.endpoint:
                self.context.scheduler.call_soon(self._loopback, data)
            elif self._alive():
                self.context.network.unicast(self.endpoint, member, data)

    def _loopback(self, data: bytes) -> None:
        message = self.context.registry.unmarshal(data)
        self._receive(message)

    def _alive(self) -> bool:
        process = self.context.process
        return process is None or process.alive

    # ------------------------------------------------------------------
    # Upcalls (messages handed in by the endpoint demultiplexer)
    # ------------------------------------------------------------------

    def handle_up(self, upcall: Upcall) -> None:
        if upcall.message is None:
            self.pass_up(upcall)
            return
        self._receive(upcall.message)

    def _receive(self, message: Message) -> None:
        try:
            header = message.pop_header(self.name)
        except MessageError:
            # Not ours — garbled or mis-stacked; drop rather than crash.
            self.filtered += 1
            return
        source = header["source"]
        if self.filter_sources and source not in self.dests:
            self.filtered += 1
            return
        self.delivered += 1
        if header["kind"] == _KIND_CAST:
            self.pass_up(Upcall(UpcallType.CAST, message=message, source=source))
        else:
            self.pass_up(Upcall(UpcallType.SEND, message=message, source=source))

    def dump(self):
        info = super().dump()
        info.update(
            dests=[str(d) for d in self.dests],
            casts_sent=self.casts_sent,
            sends_sent=self.sends_sent,
            delivered=self.delivered,
            filtered=self.filtered,
        )
        return info
