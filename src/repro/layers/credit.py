"""CREDIT — windowed, receiver-granted flow control with backpressure.

The Figure 1 FLOW slot, rebuilt in the HTTP/2 style: instead of the old
one-sided token bucket (:mod:`repro.layers.flowctl`, now deprecated),
each *receiver* extends byte credit to each sender and replenishes it
with WINDOW_UPDATE-style grants as its application consumes deliveries.
A sender may only pass traffic down while it holds credit on every
destination; when credit runs out the excess lands in a *bounded* queue
with a configurable shed policy, and the overload verdict propagates
back up the HCPI (``Downcall.extra["flow_verdict"]``) so the layer
above — ultimately the application — can block or shed instead of
queueing unboundedly.

Two credit spaces per peer, mirroring NAK's two sequence spaces:

* space 0 — the **multicast flow**: casts charge every current view
  member's account, so the slowest receiver gates the group (the
  per-group window of the ROADMAP item is the min over members);
* space 1 — the **unicast flow**: subset sends charge only their
  destinations (the per-endpoint window).

Accounting is cumulative and idempotent: the receiver advertises
``granted_total = consumed_total + window`` and the sender computes
``available = granted_total - charged_total``, so duplicated,
reordered, or superseded grants are harmless (the sender takes the
max).  Both sides start a fresh peer at ``window``, which is the
implicit initial grant (the HTTP/2 SETTINGS handshake collapsed into a
shared config — stacks in one group are homogeneous).

Placement: **above** the membership/reliability layers (e.g.
``CREDIT:MBRSHIP:FRAG:NAK:COM``).  That way only application traffic is
charged — membership flushes, NAK control, and TOTAL tokens originate
below and can never deadlock on exhausted credit — and a throttled cast
never even reaches NAK, which is what keeps NAK's retransmission buffer
bounded by the credit window rather than by the offered load.

Receiver slowness is first-class: ``consume_rate`` (bytes/second,
``None`` = consume instantly on delivery) meters how fast deliveries
turn into consumed credit, so tests and the chaos ``slow_receiver`` op
can model an application that cannot keep up without touching delivery
itself.

Grant sizing and timing are delegated to a pluggable
:class:`~repro.flow.window.WindowManager` (``fixed``, ``aimd``,
``paced``); AIMD's congestion signal is end-to-end — a sender that shed
piggybacks a congestion bit on its next data message.

Known limit: credit charged for a message the stack *permanently*
loses (a NAK ``GONE`` placeholder) is never returned.  With CREDIT
above NAK this is self-preventing — bounded senders stop NAK's buffer
evictions, which are the only source of GONEs — but on bare best-effort
stacks (``CREDIT:COM`` under loss) windows can leak; size them
generously there.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.core import headers as hdr
from repro.core.events import (
    Downcall,
    DowncallType,
    FlowVerdict,
    Upcall,
    UpcallType,
)
from repro.core.layer import Layer
from repro.core.message import Message
from repro.core.stack import register_layer
from repro.errors import ConfigurationError
from repro.flow.window import DEFAULT_WINDOW, WindowManager, make_window_manager
from repro.net.address import EndpointAddress

_DATA = 0  # charged data message
_DATA_CONGESTED = 1  # charged data + "I shed since my last send" bit
_GRANT = 2  # WINDOW_UPDATE: credit_delta = cumulative granted total

#: The multicast (cast) and unicast (subset send) credit spaces.
MCAST_SPACE = 0
UCAST_SPACE = 1

hdr.register(
    "CREDIT",
    fields=[
        ("kind", hdr.U8),
        ("flow_id", hdr.U8),
        ("credit_delta", hdr.U64),
    ],
    defaults={"flow_id": 0, "credit_delta": 0},
)

_SHED_POLICIES = ("block", "drop_newest", "drop_oldest")

FlowKey = Tuple[int, EndpointAddress]  # (space, peer)


class _Pending:
    """One queued downcall awaiting credit."""

    __slots__ = ("downcall", "space", "cost", "peers", "enqueued")

    def __init__(self, downcall, space, cost, peers, enqueued) -> None:
        self.downcall = downcall
        self.space = space
        self.cost = cost
        self.peers = peers
        self.enqueued = enqueued


class _RecvFlow:
    """Receiver-side state for one (space, peer) flow."""

    __slots__ = ("consumed", "advertised", "manager", "congested")

    def __init__(self, window: int, manager: WindowManager) -> None:
        self.consumed = 0
        self.advertised = window  # the implicit initial grant
        self.manager = manager
        self.congested = False  # shed bit seen since the last grant


@register_layer
class CreditLayer(Layer):
    """Credit-based flow control with end-to-end backpressure.

    Config:
        window (int): initial per-flow credit window in bytes
            (default 65536).
        manager (str): window-manager kind — ``fixed`` | ``aimd`` |
            ``paced`` (default ``fixed``).
        max_queue (int): bounded send-queue capacity in messages
            (default 128).
        shed_policy (str): what to do when the queue is full —
            ``block`` (refuse the new message, verdict BLOCKED),
            ``drop_newest`` (shed the new message), ``drop_oldest``
            (shed the queue head to admit the new message; forfeits
            FIFO completeness).  Default ``block``.
        grant_period (float): grant/maintenance tick period in seconds
            (default 0.05).
        consume_rate (float | None): receiver consumption rate in
            bytes/second; ``None`` consumes instantly on delivery.
        min_window / max_window / increment: AIMD manager parameters.
        rate (float): paced manager grant rate in bytes/second.
    """

    name = "CREDIT"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.window = int(config.get("window", DEFAULT_WINDOW))
        if self.window < 1:
            raise ConfigurationError("window must be at least 1")
        self.manager_kind = str(config.get("manager", "fixed"))
        self._manager_config = {
            key: config[key]
            for key in ("min_window", "max_window", "increment", "rate")
            if key in config
        }
        # Fail fast on a bad manager kind/config (not at first delivery).
        make_window_manager(
            self.manager_kind, window=self.window, **self._manager_config
        )
        self.max_queue = int(config.get("max_queue", 128))
        if self.max_queue < 1:
            raise ConfigurationError("max_queue must be at least 1")
        self.shed_policy = str(config.get("shed_policy", "block"))
        if self.shed_policy not in _SHED_POLICIES:
            raise ConfigurationError(
                f"unknown shed_policy {self.shed_policy!r}; "
                f"known: {', '.join(_SHED_POLICIES)}"
            )
        self.grant_period = float(config.get("grant_period", 0.05))
        self.consume_rate: Optional[float] = config.get("consume_rate")
        if self.consume_rate is not None:
            self.consume_rate = float(self.consume_rate)
            if self.consume_rate <= 0:
                raise ConfigurationError("consume_rate must be positive")

        # Sender side.
        self._granted: Dict[FlowKey, int] = {}
        self._charged: Dict[FlowKey, int] = {}
        self._queue: Deque[_Pending] = deque()
        self._peers: Set[EndpointAddress] = set()
        self._congested_flag = False  # shed since my last outgoing data
        self._overloaded = False  # edge-trigger for the PROBLEM upcall

        # Receiver side.
        self._recv: Dict[FlowKey, _RecvFlow] = {}
        self._backlog: Deque[Tuple[FlowKey, int]] = deque()
        self._backlog_bytes = 0
        self._last_consume: Optional[float] = None
        self._grant_timer = None

        # Statistics (also exported as flow_* metrics).
        self.sheds = 0
        self.blocked = 0
        self.grants_sent = 0
        self.grants_received = 0
        self.data_charged = 0
        self.bytes_charged = 0
        self.max_queue_depth = 0
        self.max_backlog_bytes = 0
        self._init_metrics()

    # ------------------------------------------------------------------
    # Metrics plumbing
    # ------------------------------------------------------------------

    def _init_metrics(self) -> None:
        metrics = self.context.metrics
        self._m = None
        if metrics is None:
            return
        endpoint = str(self.endpoint)
        self._m = {
            "data": metrics.counter(
                "flow_data_messages_total",
                "Credit-charged data messages passed down, by space",
                labels=("space",),
            ),
            "bytes": metrics.counter(
                "flow_data_bytes_total",
                "Credit bytes charged for passed-down data, by space",
                labels=("space",),
            ),
            "sheds": metrics.counter(
                "flow_sheds_total",
                "Messages shed by the bounded send queue, by policy",
                labels=("policy",),
            ),
            "blocked": metrics.counter(
                "flow_blocked_total",
                "Messages refused with the BLOCKED verdict",
            ),
            "grants": metrics.counter(
                "flow_grants_total", "Credit grants sent"
            ),
            "grant_bytes": metrics.counter(
                "flow_grant_bytes_total", "Credit bytes granted"
            ),
            "queue_depth": metrics.gauge(
                "flow_queue_depth",
                "Current bounded send-queue depth",
                labels=("endpoint",),
            ).labels(endpoint=endpoint),
            "queue_high": metrics.gauge(
                "flow_queue_highwater",
                "High-water mark of the bounded send queue",
                labels=("endpoint",),
            ).labels(endpoint=endpoint),
            "outstanding": metrics.gauge(
                "flow_credit_outstanding",
                "Credit extended to peers and not yet consumed (recv role) "
                "or held against peers (send role)",
                labels=("endpoint", "role"),
            ),
            "wait": metrics.histogram(
                "flow_send_wait_seconds",
                "Time queued messages waited for credit before sending",
            ),
        }

    def _note_queue_metrics(self) -> None:
        if self._m is not None:
            self._m["queue_depth"].set(len(self._queue))
            self._m["queue_high"].set(self.max_queue_depth)

    def _note_outstanding(self) -> None:
        if self._m is None:
            return
        endpoint = str(self.endpoint)
        send_held = sum(
            self._granted[key] - self._charged.get(key, 0)
            for key in self._granted
        )
        recv_out = sum(
            flow.advertised - flow.consumed for flow in self._recv.values()
        )
        self._m["outstanding"].labels(endpoint=endpoint, role="send").set(
            send_held
        )
        self._m["outstanding"].labels(endpoint=endpoint, role="recv").set(
            recv_out
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        self._grant_timer = self.periodic(self.grant_period, self._tick)
        self._grant_timer.start()

    # ------------------------------------------------------------------
    # Sender side: charging, queueing, shedding
    # ------------------------------------------------------------------

    def handle_down(self, downcall: Downcall) -> None:
        dtype = downcall.type
        if dtype is DowncallType.VIEW:
            if downcall.members is not None:
                self._set_peers(downcall.members)
            self.pass_down(downcall)
            return
        if (
            dtype not in (DowncallType.CAST, DowncallType.SEND)
            or downcall.message is None
        ):
            self.pass_down(downcall)
            return
        space, peers = self._destinations(downcall)
        if not peers:
            # Nobody to protect (no view yet, or a self-send): pass
            # through uncharged and unheadered.
            downcall.extra["flow_verdict"] = FlowVerdict.ACCEPTED
            self.pass_down(downcall)
            return
        cost = max(1, downcall.message.body_size)
        pending = _Pending(downcall, space, cost, peers, self.now)
        if not self._queue and self._sendable(pending):
            downcall.extra["flow_verdict"] = FlowVerdict.ACCEPTED
            self._charge_and_send(pending)
            return
        self._enqueue(pending)

    def _destinations(
        self, downcall: Downcall
    ) -> Tuple[int, List[EndpointAddress]]:
        if downcall.type is DowncallType.CAST:
            peers = [p for p in self._peers if p != self.endpoint]
            return MCAST_SPACE, peers
        members = downcall.members or []
        return UCAST_SPACE, [p for p in members if p != self.endpoint]

    def _available(self, space: int, peer: EndpointAddress) -> int:
        key = (space, peer)
        if key not in self._granted:
            self._granted[key] = self.window
            self._charged[key] = 0
        return self._granted[key] - self._charged[key]

    def _sendable(self, pending: _Pending) -> bool:
        return all(
            self._available(pending.space, peer) >= pending.cost
            for peer in pending.peers
        )

    def _charge_and_send(self, pending: _Pending) -> None:
        for peer in pending.peers:
            self._charged[(pending.space, peer)] += pending.cost
        kind = _DATA_CONGESTED if self._congested_flag else _DATA
        self._congested_flag = False
        pending.downcall.message.push_header(
            self.name,
            {"kind": kind, "flow_id": pending.space,
             "credit_delta": pending.cost},
        )
        self.data_charged += 1
        self.bytes_charged += pending.cost
        if self._m is not None:
            space = str(pending.space)
            self._m["data"].labels(space=space).inc()
            self._m["bytes"].labels(space=space).inc(pending.cost)
            self._m["wait"].observe(self.now - pending.enqueued)
        self._note_outstanding()
        self.pass_down(pending.downcall)

    def _enqueue(self, pending: _Pending) -> None:
        verdict = FlowVerdict.QUEUED
        if len(self._queue) >= self.max_queue:
            if self.shed_policy == "block":
                self.blocked += 1
                self._congested_flag = True
                if self._m is not None:
                    self._m["blocked"].inc()
                verdict = FlowVerdict.BLOCKED
            elif self.shed_policy == "drop_newest":
                self.sheds += 1
                self._congested_flag = True
                if self._m is not None:
                    self._m["sheds"].labels(policy=self.shed_policy).inc()
                verdict = FlowVerdict.SHED
            else:  # drop_oldest
                self._queue.popleft()
                self._queue.append(pending)
                self.sheds += 1
                self._congested_flag = True
                if self._m is not None:
                    self._m["sheds"].labels(policy=self.shed_policy).inc()
            pending.downcall.extra["flow_verdict"] = verdict
            self._note_queue_metrics()
            self._note_overload()
            return
        self._queue.append(pending)
        self.max_queue_depth = max(self.max_queue_depth, len(self._queue))
        pending.downcall.extra["flow_verdict"] = verdict
        self._note_queue_metrics()

    def _note_overload(self) -> None:
        """Edge-triggered PROBLEM upcall when the queue first saturates."""
        if self._overloaded:
            return
        self._overloaded = True
        self.trace("overload", queue=len(self._queue), policy=self.shed_policy)
        self.pass_up(
            Upcall(
                UpcallType.PROBLEM,
                source=self.endpoint,
                extra={"reason": "overload", "layer": self.name},
            )
        )

    def _drain_queue(self) -> None:
        sent = False
        while self._queue and self._sendable(self._queue[0]):
            self._charge_and_send(self._queue.popleft())
            sent = True
        if sent:
            self._note_queue_metrics()
        if self._overloaded and len(self._queue) <= self.max_queue // 2:
            self._overloaded = False

    # ------------------------------------------------------------------
    # Receiver side: accounting, consumption, grants
    # ------------------------------------------------------------------

    def handle_up(self, upcall: Upcall) -> None:
        if upcall.type is UpcallType.VIEW:
            if upcall.members is not None:
                self._set_peers(upcall.members)
            self.pass_up(upcall)
            return
        message = upcall.message
        if message is None or message.peek_header(self.name) is None:
            self.pass_up(upcall)
            return
        header = message.pop_header(self.name)
        kind = header["kind"]
        if kind == _GRANT:
            self._on_grant(
                upcall.source, header["flow_id"], header["credit_delta"]
            )
            return  # control traffic stops here
        # DATA / DATA_CONGESTED: deliver first, account afterwards so
        # flow control never delays or reorders the delivery path.
        self.pass_up(upcall)
        if upcall.source is None or upcall.source == self.endpoint:
            return  # a local loopback copy consumes no credit
        key = (header["flow_id"], upcall.source)
        cost = int(header["credit_delta"])
        flow = self._recv_flow(key)
        if kind == _DATA_CONGESTED:
            flow.congested = True
            flow.manager.on_shed()
        if self.consume_rate is None:
            self._consume(key, cost)
        else:
            self._backlog.append((key, cost))
            self._backlog_bytes += cost
            self.max_backlog_bytes = max(
                self.max_backlog_bytes, self._backlog_bytes
            )

    def _recv_flow(self, key: FlowKey) -> _RecvFlow:
        flow = self._recv.get(key)
        if flow is None:
            flow = _RecvFlow(
                self.window,
                make_window_manager(
                    self.manager_kind,
                    window=self.window,
                    **self._manager_config,
                ),
            )
            self._recv[key] = flow
        return flow

    def _consume(self, key: FlowKey, cost: int, tail: bool = False) -> None:
        flow = self._recv_flow(key)
        flow.consumed += cost
        self._maybe_grant(key, flow, tail=tail)

    def _maybe_grant(self, key: FlowKey, flow: _RecvFlow, tail: bool) -> None:
        pending = flow.consumed + flow.manager.window - flow.advertised
        if pending <= 0:
            return
        amount = flow.manager.grant(pending, self.now, tail=tail)
        if amount <= 0:
            return
        if not flow.congested:
            flow.manager.on_ack()
        flow.congested = False
        flow.advertised += amount
        space, peer = key
        grant = Message()
        grant.push_header(
            self.name,
            {"kind": _GRANT, "flow_id": space,
             "credit_delta": flow.advertised},
        )
        self.grants_sent += 1
        if self._m is not None:
            self._m["grants"].inc()
            self._m["grant_bytes"].inc(amount)
        self._note_outstanding()
        self.pass_down(
            Downcall(DowncallType.SEND, message=grant, members=[peer])
        )

    def _on_grant(
        self, source: Optional[EndpointAddress], space: int, total: int
    ) -> None:
        if source is None:
            return
        key = (space, source)
        self._available(space, source)  # ensure the account exists
        # Cumulative totals make duplicated/reordered grants idempotent.
        if total > self._granted[key]:
            self._granted[key] = total
        self.grants_received += 1
        self._note_outstanding()
        self._drain_queue()

    # ------------------------------------------------------------------
    # The grant/consume tick
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        now = self.now
        if self.consume_rate is not None and self._backlog:
            if self._last_consume is None:
                self._last_consume = now - self.grant_period
            budget = (now - self._last_consume) * self.consume_rate
            while self._backlog and budget > 0:
                key, cost = self._backlog[0]
                if cost <= budget:
                    self._backlog.popleft()
                    self._backlog_bytes -= cost
                    budget -= cost
                    self._consume(key, cost, tail=True)
                else:
                    # Split the head: consume what the budget covers.
                    taken = int(budget)
                    if taken <= 0:
                        break
                    self._backlog[0] = (key, cost - taken)
                    self._backlog_bytes -= taken
                    budget -= taken
                    self._consume(key, taken, tail=True)
        self._last_consume = now
        # Tail-flush deferred grants on every receive flow.
        for key, flow in list(self._recv.items()):
            self._maybe_grant(key, flow, tail=True)
        self._drain_queue()

    # ------------------------------------------------------------------
    # Peer tracking
    # ------------------------------------------------------------------

    def _set_peers(self, members: List[EndpointAddress]) -> None:
        new_peers = set(members)
        departed = self._peers - new_peers
        for peer in departed:
            # Endpoints are incarnation-unique: a departed peer never
            # returns under the same address, so its accounts are dead.
            for space in (MCAST_SPACE, UCAST_SPACE):
                self._granted.pop((space, peer), None)
                self._charged.pop((space, peer), None)
                self._recv.pop((space, peer), None)
        self._peers = new_peers
        if departed:
            # Slow departed members no longer gate the multicast flow.
            self._drain_queue()

    # ------------------------------------------------------------------
    # Application surface (via ``handle.focus("CREDIT")``)
    # ------------------------------------------------------------------

    def set_consume_rate(self, rate: Optional[float]) -> None:
        """Change the modeled consumption rate at runtime.

        ``None`` restores instant consumption and flushes any backlog —
        the knob the chaos ``slow_receiver`` op turns.
        """
        if rate is not None and rate <= 0:
            raise ConfigurationError("consume_rate must be positive")
        self.consume_rate = rate
        if rate is None:
            while self._backlog:
                key, cost = self._backlog.popleft()
                self._backlog_bytes -= cost
                self._consume(key, cost, tail=True)

    def available(self, space: int, peer: EndpointAddress) -> int:
        """Sender-side credit currently available toward ``peer``."""
        return self._available(space, peer)

    def min_available(self, space: int = MCAST_SPACE) -> Optional[int]:
        """The group window: min credit over current peers (None = no peers)."""
        peers = [p for p in self._peers if p != self.endpoint]
        if not peers:
            return None
        return min(self._available(space, p) for p in peers)

    @property
    def queue_depth(self) -> int:
        """Current bounded send-queue depth."""
        return len(self._queue)

    def dump(self) -> Dict[str, Any]:
        info = super().dump()
        info.update(
            window=self.window,
            manager=self.manager_kind,
            shed_policy=self.shed_policy,
            queued=len(self._queue),
            max_queue_depth=self.max_queue_depth,
            sheds=self.sheds,
            blocked=self.blocked,
            grants_sent=self.grants_sent,
            grants_received=self.grants_received,
            data_charged=self.data_charged,
            bytes_charged=self.bytes_charged,
            backlog_bytes=self._backlog_bytes,
            max_backlog_bytes=self.max_backlog_bytes,
            min_available=self.min_available(),
            recv_flows=len(self._recv),
        )
        return info
