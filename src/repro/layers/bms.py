"""BMS — the basic membership service (Table 3).

The membership half of MBRSHIP alone: the same coordinator-driven
agreement protocol produces consistent views (property P15), but no
message store, no unstable-message relay, and no delivery-cut vector —
so it provides neither semi- nor full virtual synchrony.  Stack VSS and
FLUSH above it to add P8 and P9 back as separate microprotocols, or use
MBRSHIP for the fused production version (Section 8's point about
combining reference layers into one optimized layer, in reverse).
"""

from __future__ import annotations

from repro.core import headers as hdr
from repro.core.stack import register_layer
from repro.layers.mbrship import MembershipLayer, _NOBODY

hdr.register(
    "BMS",
    fields=[
        ("kind", hdr.U8),
        ("vid", hdr.U32),
        ("new_vid", hdr.U32),
        ("round", hdr.U32),
        ("seq", hdr.U64),
        ("origin", hdr.ADDRESS),
        ("members", hdr.ListOf(hdr.ADDRESS)),
        ("joiners", hdr.ListOf(hdr.ADDRESS)),
        ("failed", hdr.ListOf(hdr.ADDRESS)),
        ("vector", hdr.MapOf(hdr.ADDRESS, hdr.U64)),
    ],
    defaults={
        "vid": 0,
        "new_vid": 0,
        "round": 0,
        "seq": 0,
        "origin": _NOBODY,
        "members": [],
        "joiners": [],
        "failed": [],
        "vector": {},
    },
)


@register_layer
class BasicMembershipLayer(MembershipLayer):
    """Consistent views without virtual synchrony (P15 only)."""

    name = "BMS"

    def __init__(self, context, **config) -> None:
        config.setdefault("vs", False)
        super().__init__(context, **config)
