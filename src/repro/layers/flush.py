"""FLUSH — the message-cut microprotocol (Table 3).

The second half of what the fused MBRSHIP layer does, expressed as an
independent layer over BMS (+VSS): it upgrades consistent views with
semi-synchrony (P8) to full virtual synchrony (P9) by enforcing the
*cut* — every survivor delivers the same per-origin prefix of messages
before accepting the next view.

Protocol (one instance per member, coordinator chosen by the membership
layer below and learned from its FLUSH upcall):

1. The layer buffers a copy of every cast delivered or sent in the
   current view.
2. On a FLUSH upcall from below, each member returns its buffered
   messages to the coordinator, followed by its delivery vector (VEC).
3. The membership layer below installs the new view on its own
   schedule; this layer *holds* the VIEW upcall.
4. The coordinator, once it has a VEC from every survivor of the held
   view, computes the final vector, relays to each member exactly the
   messages its vector lacks, and sends SYNC with the final vector.
5. A member releases the held VIEW upward only when its deliveries
   match the final vector — the cut.

This is deliberately the expensive, obviously-correct version (members
return their whole buffer): the paper's Section 8 notes that reference
microprotocols get combined and optimized into production layers, which
is exactly what MBRSHIP is relative to BMS:VSS:FLUSH.

Properties (Table 3): requires P3, P4, P8, P10, P11, P12, P15;
provides P9.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.message import Message
from repro.core.stack import register_layer
from repro.core.view import View
from repro.net.address import EndpointAddress

_DATA = 0  # a cast with (vid, seq, origin); relays are re-sent copies
_VEC = 1  # member -> coordinator: delivery vector for the ending view
_SYNC = 2  # coordinator -> member: the final vector (the cut)

_NOBODY = EndpointAddress("", 0)

hdr.register(
    "FLUSH",
    fields=[
        ("kind", hdr.U8),
        ("vid", hdr.U32),
        ("seq", hdr.U64),
        ("origin", hdr.ADDRESS),
        ("vector", hdr.MapOf(hdr.ADDRESS, hdr.U64)),
    ],
    defaults={"vid": 0, "seq": 0, "origin": _NOBODY, "vector": {}},
)


@register_layer
class FlushLayer(Layer):
    """Virtual synchrony's delivery cut as a standalone microprotocol.

    Config:
        release_timeout (float): how long to hold a new view waiting for
            the cut before releasing it anyway (default 3.0 s) — a
            missing coordinator is repaired by the membership layer
            below, so this is a last-resort valve.
    """

    name = "FLUSH"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.release_timeout = float(config.get("release_timeout", 3.0))
        self.view: Optional[View] = None
        self.my_seq = 0
        self.delivered: Dict[EndpointAddress, int] = {}
        self.pending: Dict[EndpointAddress, Dict[int, Upcall]] = {}
        self.store: Dict[Tuple[EndpointAddress, int], Message] = {}
        self.coordinator: Optional[EndpointAddress] = None
        self.flush_seen = False
        self.vectors: Dict[EndpointAddress, Dict[EndpointAddress, int]] = {}
        self.wait_vector: Optional[Dict[EndpointAddress, int]] = None
        self._held_view: Optional[Upcall] = None
        self._release_timer = self.one_shot(self.release_timeout, self._force_release)
        self.cuts_completed = 0
        self.relays_sent = 0
        self.stale_dropped = 0

    # ------------------------------------------------------------------
    # Down: tag and buffer casts
    # ------------------------------------------------------------------

    def handle_down(self, downcall: Downcall) -> None:
        if (
            downcall.type is DowncallType.CAST
            and downcall.message is not None
            and self.view is not None
        ):
            self.my_seq += 1
            downcall.message.push_header(
                self.name,
                {
                    "kind": _DATA,
                    "vid": self.view.view_id.epoch,
                    "seq": self.my_seq,
                    "origin": self.endpoint,
                },
            )
            self.store[(self.endpoint, self.my_seq)] = downcall.message.shallow_copy()
        self.pass_down(downcall)

    # ------------------------------------------------------------------
    # Up: data, flush choreography, held views
    # ------------------------------------------------------------------

    def handle_up(self, upcall: Upcall) -> None:
        utype = upcall.type
        if utype is UpcallType.FLUSH:
            self._on_flush(upcall)
            return
        if utype is UpcallType.VIEW and upcall.view is not None:
            self._on_view(upcall)
            return
        if utype in (UpcallType.CAST, UpcallType.SEND) and upcall.message is not None:
            header = upcall.message.peek_header(self.name)
            if header is None:
                self.pass_up(upcall)
                return
            upcall.message.pop_header(self.name)
            kind = header["kind"]
            if kind == _DATA:
                self._on_data(header, upcall)
            elif kind == _VEC:
                self._on_vec(header)
            elif kind == _SYNC:
                self._on_sync(header)
            return
        self.pass_up(upcall)

    def _on_data(self, header: Dict, upcall: Upcall) -> None:
        if self.view is None or header["vid"] != self.view.view_id.epoch:
            self.stale_dropped += 1
            return
        origin, seq = header["origin"], header["seq"]
        if seq <= self.delivered.get(origin, 0):
            return  # duplicate (direct + relay)
        slot = self.pending.setdefault(origin, {})
        if seq in slot:
            return
        # Rebuild a storable copy (header re-pushed) for future relays.
        copy = upcall.message.copy()
        copy.push_header(self.name, dict(header))
        slot[seq] = (upcall, copy)
        self._drain(origin)
        self._try_release()

    def _drain(self, origin: EndpointAddress) -> None:
        slot = self.pending.get(origin)
        if not slot:
            return
        next_seq = self.delivered.get(origin, 0) + 1
        while next_seq in slot:
            upcall, copy = slot.pop(next_seq)
            self.delivered[origin] = next_seq
            self.store[(origin, next_seq)] = copy
            upcall.type = UpcallType.CAST  # relays arrive as SENDs
            self.pass_up(upcall)
            next_seq += 1

    def _on_flush(self, upcall: Upcall) -> None:
        self.flush_seen = True
        self.coordinator = upcall.source
        if self.view is not None and self.coordinator is not None:
            # Return the whole buffer: the obviously-correct cut.  The
            # coordinator dedups; MBRSHIP is the optimized fusion.
            for (origin, seq) in sorted(self.store, key=lambda k: (k[0], k[1])):
                self.pass_down(
                    Downcall(
                        DowncallType.SEND,
                        message=self.store[(origin, seq)].copy(),
                        members=[self.coordinator],
                    )
                )
            vector = dict(self.delivered)
            vector[self.endpoint] = self.my_seq
            self._control(
                _VEC,
                [self.coordinator],
                vid=self.view.view_id.epoch,
                origin=self.endpoint,
                vector=vector,
            )
        self.pass_up(upcall)

    def _on_vec(self, header: Dict) -> None:
        if self.view is None or header["vid"] != self.view.view_id.epoch:
            return
        self.vectors[header["origin"]] = dict(header["vector"])
        self._maybe_complete_cut()

    def _on_view(self, upcall: Upcall) -> None:
        new_view = upcall.view
        joiner = self.view is None or not self.view.contains(self.endpoint)
        if not self.flush_seen or joiner:
            # First view, or we are joining: nothing to cut.
            self._release(upcall)
            return
        self._held_view = upcall
        self._release_timer.start()
        self._maybe_complete_cut()
        self._try_release()

    def _maybe_complete_cut(self) -> None:
        """Coordinator side: compute and distribute the final vector."""
        if self._held_view is None or self.view is None:
            return
        new_view = self._held_view.view
        if new_view.members[0] != self.endpoint:
            return  # not the coordinator of the new view
        survivors = [m for m in new_view.members if self.view.contains(m)]
        if any(m not in self.vectors for m in survivors):
            return  # still waiting for vectors
        final: Dict[EndpointAddress, int] = {}
        for vector in (self.vectors[m] for m in survivors):
            for origin, count in vector.items():
                final[origin] = max(final.get(origin, 0), count)
        for member in survivors:
            vector = self.vectors[member]
            for (origin, seq) in sorted(self.store, key=lambda k: (k[0], k[1])):
                if vector.get(origin, 0) < seq <= final.get(origin, 0):
                    self.relays_sent += 1
                    self.pass_down(
                        Downcall(
                            DowncallType.SEND,
                            message=self.store[(origin, seq)].copy(),
                            members=[member],
                        )
                    )
            self._control(
                _SYNC,
                [member],
                vid=self.view.view_id.epoch,
                origin=self.endpoint,
                vector=final,
            )

    def _on_sync(self, header: Dict) -> None:
        if self.view is None or header["vid"] != self.view.view_id.epoch:
            return
        self.wait_vector = dict(header["vector"])
        self._try_release()

    def _try_release(self) -> None:
        if self._held_view is None or self.wait_vector is None:
            return
        members = set(self.view.members) if self.view else set()
        for origin, needed in self.wait_vector.items():
            if origin not in members and origin != self.endpoint:
                continue
            if self.delivered.get(origin, 0) < needed:
                return
        self.cuts_completed += 1
        self._release(self._held_view)

    def _force_release(self) -> None:
        if self._held_view is not None:
            self.trace("flush_cut_timeout")
            self._release(self._held_view)

    def _release(self, view_upcall: Upcall) -> None:
        """Install the new view upward and reset per-view state."""
        self.view = view_upcall.view
        self.my_seq = 0
        self.delivered = {}
        self.pending = {}
        self.store = {}
        self.vectors = {}
        self.wait_vector = None
        self.flush_seen = False
        self.coordinator = None
        self._held_view = None
        self._release_timer.cancel()
        self.pass_up(view_upcall)

    def _control(self, kind: int, targets: List[EndpointAddress], **fields) -> None:
        message = Message()
        header = {"kind": kind}
        header.update(fields)
        message.push_header(self.name, header)
        self.pass_down(
            Downcall(DowncallType.SEND, message=message, members=list(targets))
        )

    def dump(self):
        info = super().dump()
        info.update(
            my_seq=self.my_seq,
            holding_view=self._held_view is not None,
            cuts_completed=self.cuts_completed,
            relays_sent=self.relays_sent,
            stale_dropped=self.stale_dropped,
            store_size=len(self.store),
        )
        return info
