"""SIGN — cryptographic message authentication (Figure 1, Section 2).

"More interestingly, the checksum could be made cryptographic (i.e.,
dependent on a secret key), making it impossible for a malignant
intruder to impersonate a member process of the application."

A keyed HMAC (SHA-256, truncated) over the canonical content — body
plus the headers above this layer, with owner names length-prefixed in
the covered bytes so no two header stacks share an encoding.  All
group members share the key (group-key distribution is the KEYDIST
protocol type of Figure 1; here the key arrives via layer config).
"""

from __future__ import annotations

import hmac
import hashlib

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.headers import canonical_content
from repro.core.layer import Layer
from repro.core.stack import register_layer

hdr.register("SIGN", fields=[("mac", hdr.VARBYTES)])

_MAC_BYTES = 8


@register_layer
class SigningLayer(Layer):
    """HMAC authentication; forged or corrupted messages are dropped.

    Config:
        key (str|bytes): the shared group secret (default "horus-demo-key";
            real deployments must configure their own).
    """

    name = "SIGN"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        key = config.get("key", "horus-demo-key")
        self.key = key.encode("utf-8") if isinstance(key, str) else bytes(key)
        self.rejected = 0
        self.verified = 0

    def _mac(self, message) -> bytes:
        content = canonical_content(self.context.registry, message)
        return hmac.new(self.key, content, hashlib.sha256).digest()[:_MAC_BYTES]

    def handle_down(self, downcall: Downcall) -> None:
        if (
            downcall.type in (DowncallType.CAST, DowncallType.SEND)
            and downcall.message is not None
        ):
            downcall.message.push_header(
                self.name, {"mac": self._mac(downcall.message)}
            )
        self.pass_down(downcall)

    def handle_up(self, upcall: Upcall) -> None:
        message = upcall.message
        if (
            upcall.type not in (UpcallType.CAST, UpcallType.SEND)
            or message is None
            or message.peek_header(self.name) is None
        ):
            self.pass_up(upcall)
            return
        header = message.pop_header(self.name)
        if not hmac.compare_digest(bytes(header["mac"]), self._mac(message)):
            self.rejected += 1
            self.trace("signature_rejected", source=str(upcall.source))
            return
        self.verified += 1
        self.pass_up(upcall)

    def dump(self):
        info = super().dump()
        info.update(rejected=self.rejected, verified=self.verified)
        return info
