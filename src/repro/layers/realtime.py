"""REALTIME — delivery deadlines (Figure 1: "real-time, guaranteed time bounds").

Senders attach a latency bound to each cast (``handle.cast(data,
deadline=0.05)`` or the layer's configured default); receivers check the
bound on delivery.  Two policies, per the two things real-time systems
do with late data:

* ``policy='drop'`` — late messages are worthless (sensor samples); they
  are discarded and counted.
* ``policy='flag'`` — late messages still matter but the application
  must know (``info["late"] = True``).

Section 11 lists "guarantees of throughput and low latency" as future
work requiring resource reservation; this layer supplies the
*observation* half (bound checking) that any such reservation scheme
needs, using the virtual clock shared by the simulation.
"""

from __future__ import annotations

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.stack import register_layer

hdr.register(
    "REALTIME",
    fields=[("deadline", hdr.F64)],
)


@register_layer
class RealTimeLayer(Layer):
    """Deadline tagging and late-delivery handling.

    Config:
        bound (float): default latency bound in seconds (default 0.1).
        policy (str): "drop" (default) or "flag".
    """

    name = "REALTIME"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.bound = float(config.get("bound", 0.1))
        self.policy = str(config.get("policy", "drop"))
        if self.policy not in ("drop", "flag"):
            raise ValueError(f"unknown policy {self.policy!r}")
        self.on_time = 0
        self.late = 0

    def handle_down(self, downcall: Downcall) -> None:
        if (
            downcall.type in (DowncallType.CAST, DowncallType.SEND)
            and downcall.message is not None
        ):
            bound = float(downcall.extra.get("deadline", self.bound))
            downcall.message.push_header(
                self.name, {"deadline": self.now + bound}
            )
        self.pass_down(downcall)

    def handle_up(self, upcall: Upcall) -> None:
        message = upcall.message
        if (
            upcall.type not in (UpcallType.CAST, UpcallType.SEND)
            or message is None
            or message.peek_header(self.name) is None
        ):
            self.pass_up(upcall)
            return
        header = message.pop_header(self.name)
        if self.now <= header["deadline"]:
            self.on_time += 1
            self.pass_up(upcall)
            return
        self.late += 1
        if self.policy == "flag":
            upcall.extra["late"] = True
            upcall.extra["lateness"] = self.now - header["deadline"]
            self.pass_up(upcall)
        else:
            self.trace("deadline_missed", lateness=self.now - header["deadline"])

    def dump(self):
        info = super().dump()
        info.update(
            bound=self.bound, policy=self.policy,
            on_time=self.on_time, late=self.late,
        )
        return info
