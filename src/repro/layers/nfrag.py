"""NFRAG — network-level fragmentation (Table 3).

Unlike FRAG, which sits above a FIFO layer and spends a single header
bit, NFRAG sits directly over best-effort delivery: fragments may
arrive in any order or not at all, so each carries a message id and an
index, and reassembly is loss-tolerant (an incomplete message times out
and is discarded — the whole layer is still best effort, which is why a
retransmission layer above recovers the *message*, not the fragment).

Properties (Table 3): requires P1, P10, P11; provides P12.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.message import Message
from repro.core.stack import register_layer
from repro.net.address import EndpointAddress

hdr.register(
    "NFRAG",
    fields=[
        ("msgid", hdr.U32),
        ("index", hdr.U16),
        ("count", hdr.U16),
    ],
)

_BufferKey = Tuple[EndpointAddress, int]


class _Reassembly:
    __slots__ = ("parts", "count", "born")

    def __init__(self, count: int, born: float) -> None:
        self.parts: Dict[int, List[bytes]] = {}
        self.count = count
        self.born = born


@register_layer
class NetworkFragLayer(Layer):
    """Indexed fragmentation over unordered best-effort delivery.

    Config:
        max_size (int): maximum fragment body size (default 1024).
        reassembly_timeout (float): partial messages older than this are
            discarded (default 2.0 s).
    """

    name = "NFRAG"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.max_size = int(config.get("max_size", 1024))
        self.reassembly_timeout = float(config.get("reassembly_timeout", 2.0))
        if self.max_size <= 0:
            raise ValueError(f"max_size must be positive, got {self.max_size}")
        self._next_msgid = 0
        self._buffers: Dict[_BufferKey, _Reassembly] = {}
        self._gc_timer = None
        self.fragments_sent = 0
        self.messages_reassembled = 0
        self.reassembly_expired = 0

    def start(self) -> None:
        self._gc_timer = self.periodic(self.reassembly_timeout, self._gc)
        self._gc_timer.start()

    # ------------------------------------------------------------------

    def handle_down(self, downcall: Downcall) -> None:
        message = downcall.message
        if (
            downcall.type not in (DowncallType.CAST, DowncallType.SEND)
            or message is None
        ):
            self.pass_down(downcall)
            return
        size = message.body_size
        count = max(1, -(-size // self.max_size)) if size else 1
        if count > 0xFFFF:
            raise ValueError(f"message of {size} bytes needs too many fragments")
        self._next_msgid = (self._next_msgid + 1) & 0xFFFFFFFF
        msgid = self._next_msgid
        # Leading fragments are bare slice carriers; the original
        # message (with all higher headers) travels as the final one.
        for index in range(count - 1):
            fragment = Message()
            lo = index * self.max_size
            for segment in message.slice_body(lo, lo + self.max_size):
                fragment.add_segment(segment)
            fragment.push_header(
                self.name, {"msgid": msgid, "index": index, "count": count}
            )
            self.fragments_sent += 1
            self.pass_down(
                Downcall(downcall.type, message=fragment, members=downcall.members)
            )
        tail = message.slice_body((count - 1) * self.max_size, size)
        message._segments[:] = tail
        message.push_header(
            self.name, {"msgid": msgid, "index": count - 1, "count": count}
        )
        self.fragments_sent += 1
        self.pass_down(downcall)

    # ------------------------------------------------------------------

    def handle_up(self, upcall: Upcall) -> None:
        message = upcall.message
        if (
            upcall.type not in (UpcallType.CAST, UpcallType.SEND)
            or message is None
            or message.peek_header(self.name) is None
        ):
            self.pass_up(upcall)
            return
        header = message.pop_header(self.name)
        msgid, index, count = header["msgid"], header["index"], header["count"]
        if count <= 1:
            self.pass_up(upcall)
            return
        key = (upcall.source, msgid)
        if index == count - 1:
            # The final fragment carries the real message object; stash
            # the upcall so the full body can be rebuilt around it.
            entry = self._buffers.setdefault(key, _Reassembly(count, self.now))
            entry.parts[index] = ("FINAL", upcall)  # type: ignore[assignment]
        else:
            entry = self._buffers.setdefault(key, _Reassembly(count, self.now))
            entry.parts[index] = list(message.segments)
        if len(entry.parts) < count:
            return
        final_marker = entry.parts.pop(count - 1)
        _, final_upcall = final_marker
        final_message = final_upcall.message
        prefix: List[bytes] = []
        for i in range(count - 1):
            prefix.extend(entry.parts[i])
        final_message._segments[:0] = prefix
        del self._buffers[key]
        self.messages_reassembled += 1
        self.pass_up(final_upcall)

    def _gc(self) -> None:
        cutoff = self.now - self.reassembly_timeout
        for key in [k for k, v in self._buffers.items() if v.born < cutoff]:
            del self._buffers[key]
            self.reassembly_expired += 1

    def dump(self):
        info = super().dump()
        info.update(
            max_size=self.max_size,
            fragments_sent=self.fragments_sent,
            messages_reassembled=self.messages_reassembled,
            reassembly_expired=self.reassembly_expired,
            partial_buffers=len(self._buffers),
        )
        return info
