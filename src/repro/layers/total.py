"""TOTAL — token-based totally ordered multicast (Section 7).

"The TOTAL layer, in turn, relies on virtually synchronous
communication.  During normal operation, it utilizes a token.  A
special 'oracle' at each member decides who should get the token next.
... In case of a failure, the token may be lost.  This, however, is not
a problem. ... When the new view is installed, each member that remains
connected to the system is guaranteed to have all messages from the
previous view, and a deterministic order can easily be constructed ...
Another deterministic rule decides who the first token holder in this
view is (e.g., the lowest ranked member), and normal operation can
continue."

Implementation notes: casts wait at the sender until it holds the
token; the holder assigns consecutive global sequence numbers, so no
message is ever on the wire without its final position.  Token loss is
repaired for free by the view change, exactly as the paper argues:
the first token holder of a view is its lowest-ranked member, and the
global sequence restarts at 1 per view.  Every TOTAL message is tagged
with its sender's view epoch: members install a view at slightly
different instants, and an untagged token crossing that boundary (a
request answered by a member still flushing the old view) would hand
out old-view sequence numbers nobody can deliver against the restarted
sequence.  Stale-epoch messages are dropped; ahead-of-epoch ones are
held until the view installs locally.

The paper also notes TOTAL "does not require direct interaction with a
failure detector" despite the FLP impossibility result — liveness comes
from the view changes MBRSHIP supplies underneath.

Properties (Table 3): requires P3, P8, P9, P15; provides P6.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.core import headers as hdr
from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.message import Message
from repro.core.stack import register_layer
from repro.core.view import View
from repro.net.address import EndpointAddress

_DATA = 0  # ordered data: carries the global sequence number
_REQ = 1  # token request (sender has pending casts)
_TOKEN = 2  # token transfer: names the new holder and the next gseq

_NOBODY = EndpointAddress("", 0)

hdr.register(
    "TOTAL",
    fields=[
        ("kind", hdr.U8),
        ("gseq", hdr.U64),
        ("epoch", hdr.U32),
        ("holder", hdr.ADDRESS),
    ],
    defaults={"gseq": 0, "epoch": 0, "holder": _NOBODY},
)


@register_layer
class TotalOrderLayer(Layer):
    """Totally ordered delivery via a rotating token.

    Config:
        max_batch (int): casts released per token possession (default 64).
        oracle (str): next-holder policy — "demand" (default: pass to the
            oldest outstanding requester) or "round_robin" (always pass
            to the next rank, whether or not it asked).
    """

    name = "TOTAL"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.max_batch = int(config.get("max_batch", 64))
        self.oracle = str(config.get("oracle", "demand"))
        if self.oracle not in ("demand", "round_robin"):
            raise ValueError(f"unknown oracle {self.oracle!r}")
        self.view: Optional[View] = None
        self.token_holder: Optional[EndpointAddress] = None
        self.next_gseq = 1  # next gseq the holder will assign
        self.next_deliver = 1
        self.pending_out: Deque[Downcall] = deque()
        self.buffer: Dict[int, Tuple[Message, EndpointAddress]] = {}
        self.requests: Deque[EndpointAddress] = deque()
        self._requested = False
        self._epoch = 0  # epoch of the installed view; tags every message
        # Messages tagged with a view we have not installed yet (a peer
        # installed it first and spoke before our install arrived).
        self._ahead: list = []
        # Statistics.
        self.token_passes = 0
        self.ordered_sent = 0
        self.delivered = 0
        self.stale_epoch_dropped = 0

    # ------------------------------------------------------------------
    # Downcalls
    # ------------------------------------------------------------------

    def handle_down(self, downcall: Downcall) -> None:
        if downcall.type is DowncallType.CAST and downcall.message is not None:
            self.pending_out.append(downcall)
            self._try_send()
        else:
            self.pass_down(downcall)

    def _holds_token(self) -> bool:
        return self.view is not None and self.token_holder == self.endpoint

    def _try_send(self) -> None:
        if self.view is None:
            return
        if not self._holds_token():
            self._request_token()
            return
        batch = 0
        while self.pending_out and batch < self.max_batch:
            downcall = self.pending_out.popleft()
            downcall.message.push_owned_header(
                self.name,
                {"kind": _DATA, "gseq": self.next_gseq, "epoch": self._epoch},
            )
            self.next_gseq += 1
            self.ordered_sent += 1
            batch += 1
            self.pass_down(downcall)
        self._maybe_pass_token()

    def _request_token(self) -> None:
        if self._requested or not self.pending_out:
            return
        self._requested = True
        request = Message()
        request.push_header(self.name, {"kind": _REQ, "epoch": self._epoch})
        self.pass_down(Downcall(DowncallType.CAST, message=request))

    def _maybe_pass_token(self) -> None:
        """The oracle: decide who gets the token next."""
        if not self._holds_token() or self.pending_out:
            return
        target: Optional[EndpointAddress] = None
        if self.oracle == "demand":
            while self.requests:
                candidate = self.requests.popleft()
                if candidate != self.endpoint and self.view.contains(candidate):
                    target = candidate
                    break
        else:  # round_robin: always hand to the next rank
            if self.view.size > 1:
                my_rank = self.view.rank_of(self.endpoint)
                target = self.view.members[(my_rank + 1) % self.view.size]
        if target is None:
            return  # keep the token until someone wants it
        self.token_holder = target
        self.token_passes += 1
        self.trace("token_pass", to=str(target), gseq=self.next_gseq)
        token = Message()
        token.push_header(
            self.name,
            {"kind": _TOKEN, "gseq": self.next_gseq, "epoch": self._epoch,
             "holder": target},
        )
        self.pass_down(Downcall(DowncallType.CAST, message=token))

    # ------------------------------------------------------------------
    # Upcalls
    # ------------------------------------------------------------------

    def handle_up(self, upcall: Upcall) -> None:
        if upcall.type is UpcallType.VIEW and upcall.view is not None:
            self._new_view(upcall)
            return
        if upcall.type is not UpcallType.CAST or upcall.message is None:
            self.pass_up(upcall)
            return
        if upcall.message.top_owner() != self.name:
            self.pass_up(upcall)
            return
        header = upcall.message.pop_header(self.name)
        epoch = header["epoch"]
        if epoch < self._epoch:
            # Sent in a view we have already left.  The view change
            # repaired the token and restarted the sequence, so a stale
            # token/request/gseq must not leak into this view (a stale
            # TOKEN would hand out old-view sequence numbers nobody can
            # deliver).
            self.stale_epoch_dropped += 1
            self.trace("total_stale_epoch", kind=header["kind"],
                       epoch=epoch, current=self._epoch)
            return
        if epoch > self._epoch:
            # A peer installed the next view first and spoke before our
            # own install arrived.  Hold the message until we catch up.
            self._ahead.append((header, upcall))
            return
        self._on_total(header, upcall)

    def _on_total(self, header, upcall: Upcall) -> None:
        kind = header["kind"]
        if kind == _DATA:
            gseq = header["gseq"]
            if gseq == self.next_deliver and not self.buffer:
                # In-order fast path (the steady state): deliver the
                # incoming upcall directly instead of round-tripping
                # through the reorder buffer and allocating a new event.
                self.next_deliver = gseq + 1
                self.delivered += 1
                if self.context.trace.enabled:
                    self.trace("total_deliver", gseq=gseq)
                upcall.extra["total_seq"] = gseq
                self.pass_up(upcall)
                return
            self.buffer[gseq] = (upcall.message, upcall.source)
            self._drain()
        elif kind == _REQ:
            if upcall.source not in self.requests:
                self.requests.append(upcall.source)
            if upcall.source == self.endpoint:
                pass  # our own request echoing back
            self._maybe_pass_token()
        elif kind == _TOKEN:
            self.token_holder = header["holder"]
            if self.token_holder == self.endpoint:
                self.next_gseq = header["gseq"]
                self._requested = False
                self._try_send()

    def _drain(self) -> None:
        while self.next_deliver in self.buffer:
            message, source = self.buffer.pop(self.next_deliver)
            upcall = Upcall(
                UpcallType.CAST,
                message=message,
                source=source,
                extra={"total_seq": self.next_deliver},
            )
            self.next_deliver += 1
            self.delivered += 1
            if self.context.trace.enabled:
                self.trace("total_deliver", gseq=self.next_deliver - 1)
            self.pass_up(upcall)

    def _new_view(self, upcall: Upcall) -> None:
        """Reset the token deterministically for the new view.

        Virtual synchrony underneath guarantees every survivor holds the
        same set of ordered messages, so the buffer drains identically
        everywhere before the reset; nothing can be pending in it
        afterwards (a gap could only mean a violated VS cut, which we
        surface rather than hide).
        """
        self._drain()
        skipped = len(self.buffer)
        if skipped:
            self.trace("total_gap", missing=self.next_deliver, buffered=skipped)
            self.buffer.clear()
        self.view = upcall.view
        self.token_holder = self.view.members[0]  # the deterministic rule
        self.next_gseq = 1
        self.next_deliver = 1
        self.requests.clear()
        self._requested = False
        self._epoch = self.view.view_id.epoch
        self.pass_up(upcall)
        # Replay messages that arrived tagged with this view before we
        # installed it; drop anything the epoch has overtaken.
        ahead, self._ahead = self._ahead, []
        for header, held in ahead:
            if header["epoch"] == self._epoch:
                self._on_total(header, held)
            elif header["epoch"] > self._epoch:
                self._ahead.append((header, held))
        if self.pending_out:
            self._try_send()

    def dump(self):
        info = super().dump()
        info.update(
            token_holder=str(self.token_holder) if self.token_holder else None,
            holds_token=self._holds_token(),
            next_gseq=self.next_gseq,
            next_deliver=self.next_deliver,
            pending_out=len(self.pending_out),
            buffered=len(self.buffer),
            token_passes=self.token_passes,
            ordered_sent=self.ordered_sent,
            delivered=self.delivered,
            stale_epoch_dropped=self.stale_epoch_dropped,
            ahead_held=len(self._ahead),
            oracle=self.oracle,
        )
        return info
