"""The Horus protocol-layer library.

Importing this package registers every layer class with the stack
composer (:func:`repro.core.stack.register_layer`) and every header
codec with the default registry, so a spec string like
``"TOTAL:MBRSHIP:FRAG:NAK:COM"`` resolves without further setup.

The library covers the paper's Figure 1 table of protocol types and the
Table 3 layer matrix; see each module's docstring for the paper section
it implements.  Layer names usable in stack specs:

====================  =================================================
``COM``               network adapter (bottom of every stack)
``NAK`` / ``NNAK``    reliable FIFO multicast / unicast-only
``FRAG`` / ``NFRAG``  fragmentation above FIFO / over best-effort
``MBRSHIP``           virtual synchrony, fused production layer
``BMS``:``VSS``:``FLUSH``  the same, decomposed into microprotocols
``TOTAL``             token-based total order
``CAUSAL``:``CAUSAL_TS``   causal order over causal timestamps
``STABLE`` / ``PINWHEEL``  stability matrix, gossip / rotating slot
``MERGE``             automatic view merging
``CHKSUM`` ``SIGN`` ``CRYPT`` ``COMPRESS``  integrity/privacy/bandwidth
``CREDIT``            credit-based flow control with backpressure
``GOSSIP``            SWIM failure detection (scalable, gossip-based)
``FLOW`` ``PRIO``     pacing (deprecated; see CREDIT) / priority delivery
``LOGGER`` ``TRACER`` ``ACCOUNT``  journaling / tracing / metering
``XFER``              state transfer to joiners (snapshot streaming)
====================  =================================================

:class:`~repro.layers.sockets.HorusSocket` is the UNIX-socket facade
(the top-most module of Section 2) and wraps a group handle rather than
stacking.
"""

from repro.layers.bms import BasicMembershipLayer
from repro.layers.causal import CausalOrderLayer, CausalTimestampLayer
from repro.layers.chksum import ChecksumLayer
from repro.layers.com import ComLayer
from repro.layers.compress import CompressionLayer
from repro.layers.credit import CreditLayer
from repro.layers.crypt import EncryptionLayer
from repro.layers.flowctl import FlowControlLayer
from repro.layers.flush import FlushLayer
from repro.layers.frag import FragLayer
from repro.layers.gossip import GossipLayer
from repro.layers.keydist import KeyDistributionLayer
from repro.layers.locate import ResourceLocationLayer
from repro.layers.logger import AccountingLayer, LoggingLayer, TracerLayer
from repro.layers.mbrship import MembershipLayer
from repro.layers.merge import AutoMergeLayer
from repro.layers.nak import NakLayer
from repro.layers.nfrag import NetworkFragLayer
from repro.layers.nnak import UnicastNakLayer
from repro.layers.pinwheel import PinwheelLayer
from repro.layers.prio import PriorityLayer
from repro.layers.realtime import RealTimeLayer
from repro.layers.rpc import RpcLayer
from repro.layers.safe import SafeOrderLayer
from repro.layers.sign import SigningLayer
from repro.layers.sockets import HorusSocket
from repro.layers.stable import StableLayer
from repro.layers.syncclock import SyncClockLayer
from repro.layers.total import TotalOrderLayer
from repro.layers.vss import ViewSemiSyncLayer
from repro.layers.xfer import StateTransferLayer

__all__ = [
    "AccountingLayer",
    "AutoMergeLayer",
    "BasicMembershipLayer",
    "CausalOrderLayer",
    "CausalTimestampLayer",
    "ChecksumLayer",
    "ComLayer",
    "CompressionLayer",
    "CreditLayer",
    "EncryptionLayer",
    "FlowControlLayer",
    "FlushLayer",
    "FragLayer",
    "GossipLayer",
    "HorusSocket",
    "KeyDistributionLayer",
    "LoggingLayer",
    "MembershipLayer",
    "NakLayer",
    "NetworkFragLayer",
    "PinwheelLayer",
    "PriorityLayer",
    "RealTimeLayer",
    "ResourceLocationLayer",
    "RpcLayer",
    "SafeOrderLayer",
    "SigningLayer",
    "StableLayer",
    "StateTransferLayer",
    "SyncClockLayer",
    "TotalOrderLayer",
    "TracerLayer",
    "UnicastNakLayer",
    "ViewSemiSyncLayer",
]
