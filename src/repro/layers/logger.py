"""LOGGER — message logging (Figure 1: "tolerance of total crash failures").

Records every delivered message and every installed view to a stable
log (in the simulation, a per-endpoint journal surviving in the world's
trace domain).  After a total failure — every member crashed — a new
generation of processes can replay a member's journal to reconstruct
the group's final state, which is exactly why Figure 1 lists logging as
a protocol type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.core.events import Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.stack import register_layer
from repro.net.address import EndpointAddress


@dataclass(frozen=True)
class LogEntry:
    """One journaled event: a delivery or a view installation."""

    kind: str  # "deliver" | "view"
    time: float
    source: Optional[EndpointAddress] = None
    body: bytes = b""
    view_members: tuple = ()
    view_epoch: int = 0


@register_layer
class LoggingLayer(Layer):
    """Journals deliveries and views on the way up (transparent otherwise).

    Config:
        capacity (int): maximum retained entries, oldest evicted
            (default 100000).
    """

    name = "LOGGER"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.capacity = int(config.get("capacity", 100_000))
        self.journal: List[LogEntry] = []

    def handle_up(self, upcall: Upcall) -> None:
        if upcall.type in (UpcallType.CAST, UpcallType.SEND) and upcall.message:
            self._append(
                LogEntry(
                    kind="deliver",
                    time=self.now,
                    source=upcall.source,
                    body=upcall.message.body_bytes(),
                )
            )
        elif upcall.type is UpcallType.VIEW and upcall.view is not None:
            self._append(
                LogEntry(
                    kind="view",
                    time=self.now,
                    view_members=tuple(str(m) for m in upcall.view.members),
                    view_epoch=upcall.view.view_id.epoch,
                )
            )
        self.pass_up(upcall)

    def _append(self, entry: LogEntry) -> None:
        self.journal.append(entry)
        if len(self.journal) > self.capacity:
            del self.journal[: len(self.journal) - self.capacity]

    def replay(self, kind: Optional[str] = None) -> List[LogEntry]:
        """The journal (optionally filtered), oldest first — the recovery
        input after a total crash failure."""
        if kind is None:
            return list(self.journal)
        return [e for e in self.journal if e.kind == kind]

    def dump(self):
        info = super().dump()
        info.update(
            journal_entries=len(self.journal),
            deliveries=sum(1 for e in self.journal if e.kind == "deliver"),
            views=sum(1 for e in self.journal if e.kind == "view"),
        )
        return info


@register_layer
class TracerLayer(Layer):
    """TRACER — per-event tracing for "debugging, statistics" (Figure 1).

    Transparent: counts every event type crossing in each direction and
    (optionally) records them to the world trace.

    Config:
        record (bool): also write each crossing to the trace recorder
            (default False; counting alone is nearly free).
    """

    name = "TRACER"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.record = bool(config.get("record", False))
        self.down_counts: dict = {}
        self.up_counts: dict = {}

    def handle_down(self, downcall) -> None:
        key = downcall.type.name
        self.down_counts[key] = self.down_counts.get(key, 0) + 1
        if self.record:
            self.trace("tracer_down", event=key)
        self.pass_down(downcall)

    def handle_up(self, upcall) -> None:
        key = upcall.type.name
        self.up_counts[key] = self.up_counts.get(key, 0) + 1
        if self.record:
            self.trace("tracer_up", event=key)
        self.pass_up(upcall)

    def dump(self):
        info = super().dump()
        info.update(down_counts=dict(self.down_counts), up_counts=dict(self.up_counts))
        return info


@register_layer
class AccountingLayer(Layer):
    """ACCOUNT — usage accounting (Figure 1: "keeping track of usage").

    Transparent: meters messages and bytes per direction and per remote
    source, the raw material for billing or quota enforcement.
    """

    name = "ACCOUNT"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.sent_messages = 0
        self.sent_bytes = 0
        self.received_messages = 0
        self.received_bytes = 0
        self.per_source: dict = {}

    def handle_down(self, downcall) -> None:
        if downcall.message is not None:
            self.sent_messages += 1
            self.sent_bytes += downcall.message.body_size
        self.pass_down(downcall)

    def handle_up(self, upcall) -> None:
        if upcall.message is not None and upcall.source is not None:
            self.received_messages += 1
            size = upcall.message.body_size
            self.received_bytes += size
            key = str(upcall.source)
            messages, total = self.per_source.get(key, (0, 0))
            self.per_source[key] = (messages + 1, total + size)
        self.pass_up(upcall)

    def dump(self):
        info = super().dump()
        info.update(
            sent_messages=self.sent_messages,
            sent_bytes=self.sent_bytes,
            received_messages=self.received_messages,
            received_bytes=self.received_bytes,
            per_source=dict(self.per_source),
        )
        return info
