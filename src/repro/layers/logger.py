"""LOGGER — message logging (Figure 1: "tolerance of total crash failures").

Records every delivered message and every installed view to a durable
journal.  When the world carries a store domain
(:attr:`~repro.core.layer.LayerContext.store` — both worlds do by
default), the journal is backed by a :class:`~repro.store.DurableStore`
write-ahead log keyed by ``(node, "logger.<group>")``, which survives
crash and ``stateful=True`` recovery on *both* substrates: after a
total failure — every member crashed — a new generation of processes
replays a member's journal to reconstruct the group's final state,
which is exactly why Figure 1 lists logging as a protocol type.  On a
bare context (no store domain) the journal is memory-only, as before.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, List, Optional, Tuple

from repro.core.events import Upcall, UpcallType
from repro.core.layer import Layer
from repro.core.stack import register_layer
from repro.net.address import EndpointAddress


@dataclass(frozen=True)
class LogEntry:
    """One journaled event: a delivery or a view installation."""

    kind: str  # "deliver" | "view"
    time: float
    source: Optional[EndpointAddress] = None
    body: bytes = b""
    view_members: tuple = ()
    view_epoch: int = 0
    #: True for entries reconstructed from the WAL of a previous
    #: incarnation (their ``time`` is the old incarnation's clock).
    recovered: bool = False

    def encode(self) -> bytes:
        """WAL record form; inverse of :meth:`decode`."""
        return json.dumps({
            "kind": self.kind,
            "time": self.time,
            "source": str(self.source) if self.source is not None else None,
            "body": self.body.hex(),
            "view_members": list(self.view_members),
            "view_epoch": self.view_epoch,
        }, sort_keys=True).encode("utf-8")

    @classmethod
    def decode(cls, data: bytes) -> "LogEntry":
        """Rebuild an entry from its WAL record."""
        raw = json.loads(data.decode("utf-8"))
        source = raw.get("source")
        return cls(
            kind=raw["kind"],
            time=float(raw["time"]),
            source=(EndpointAddress.unmarshal(source.encode("utf-8"))
                    if source else None),
            body=bytes.fromhex(raw.get("body", "")),
            view_members=tuple(raw.get("view_members", ())),
            view_epoch=int(raw.get("view_epoch", 0)),
            recovered=True,
        )


@register_layer
class LoggingLayer(Layer):
    """Journals deliveries and views on the way up (transparent otherwise).

    Config:
        capacity (int): maximum retained entries, oldest evicted
            (default 100000).
        durable (bool): back the journal with the world's store domain
            when one is present (default True; a no-op on bare
            contexts).  The WAL is keyed by ``(node, "logger.<group>")``
            so a re-incarnated process finds its own journal.
        durability (str | DurabilityPolicy): the store's durability
            policy — ``fsync_per_record`` (default), ``group``, or
            ``async`` (see :mod:`repro.store.policy`).
        ack ("enqueue" | "durable"): when to pass a journaled upcall on
            up the stack.  ``enqueue`` (default) passes it immediately —
            under a relaxed ``durability`` a crash may lose the journal
            entry for an already-delivered message.  ``durable`` holds
            each journaled upcall until its commit ticket completes and
            releases them in journal (FIFO) order — delivery implies
            the journal entry survives any crash.
    """

    name = "LOGGER"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.capacity = int(config.get("capacity", 100_000))
        self.ack = str(config.get("ack", "enqueue"))
        if self.ack not in ("enqueue", "durable"):
            raise ValueError(f"unknown LOGGER ack mode {self.ack!r}")
        self.journal: List[LogEntry] = []
        self.store = None
        #: Upcalls awaiting their journal entry's durability (ack=durable
        #: with a relaxed policy); released strictly in journal order.
        self._held: Deque[Tuple[Upcall, Any]] = deque()
        #: Entries reconstructed from a previous incarnation's WAL.
        self.recovered_entries = 0
        if bool(config.get("durable", True)) and context.store is not None:
            self.store = context.store.store(
                context.endpoint.node, f"logger.{context.group}",
                policy=config.get("durability"),
            )
            replayed = self.store.replay()
            for record in replayed.entries:
                try:
                    self.journal.append(LogEntry.decode(record))
                except (ValueError, KeyError):
                    continue  # foreign or damaged record; skip, never crash
            self.recovered_entries = len(self.journal)

    def handle_up(self, upcall: Upcall) -> None:
        entry = None
        if upcall.type in (UpcallType.CAST, UpcallType.SEND) and upcall.message:
            entry = LogEntry(
                kind="deliver",
                time=self.now,
                source=upcall.source,
                body=upcall.message.body_bytes(),
            )
        elif upcall.type is UpcallType.VIEW and upcall.view is not None:
            entry = LogEntry(
                kind="view",
                time=self.now,
                view_members=tuple(str(m) for m in upcall.view.members),
                view_epoch=upcall.view.view_id.epoch,
            )
        if entry is None:
            self.pass_up(upcall)
            return
        ticket = self._append(entry)
        if self.ack == "durable" and ticket is not None:
            # Hold behind the commit: the upcall goes up only once the
            # journal entry is on stable storage, in journal order.
            self._held.append((upcall, ticket))
            ticket.add_done_callback(self._release_durable)
            return
        self.pass_up(upcall)

    def _release_durable(self, _ticket=None) -> None:
        """Pass held upcalls up, strictly FIFO: a later record's flush
        can complete a whole batch at once, but nothing jumps an
        earlier record that is still pending."""
        while self._held and self._held[0][1].done():
            upcall, _ = self._held.popleft()
            self.pass_up(upcall)

    def _append(self, entry: LogEntry):
        self.journal.append(entry)
        ticket = None
        if self.store is not None:
            ticket = self.store.append(entry.encode())
        if len(self.journal) > self.capacity:
            del self.journal[: len(self.journal) - self.capacity]
        return ticket

    def replay(self, kind: Optional[str] = None) -> List[LogEntry]:
        """The journal (optionally filtered), oldest first — the recovery
        input after a total crash failure."""
        if kind is None:
            return list(self.journal)
        return [e for e in self.journal if e.kind == kind]

    def dump(self):
        info = super().dump()
        info.update(
            journal_entries=len(self.journal),
            deliveries=sum(1 for e in self.journal if e.kind == "deliver"),
            views=sum(1 for e in self.journal if e.kind == "view"),
            durable=self.store is not None,
            ack=self.ack,
            held_upcalls=len(self._held),
            recovered_entries=self.recovered_entries,
        )
        return info


@register_layer
class TracerLayer(Layer):
    """TRACER — per-event tracing for "debugging, statistics" (Figure 1).

    Transparent: counts every event type crossing in each direction and
    (optionally) records them to the world trace.

    Config:
        record (bool): also write each crossing to the trace recorder
            (default False; counting alone is nearly free).
    """

    name = "TRACER"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.record = bool(config.get("record", False))
        self.down_counts: dict = {}
        self.up_counts: dict = {}

    def handle_down(self, downcall) -> None:
        key = downcall.type.name
        self.down_counts[key] = self.down_counts.get(key, 0) + 1
        if self.record:
            self.trace("tracer_down", event=key)
        self.pass_down(downcall)

    def handle_up(self, upcall) -> None:
        key = upcall.type.name
        self.up_counts[key] = self.up_counts.get(key, 0) + 1
        if self.record:
            self.trace("tracer_up", event=key)
        self.pass_up(upcall)

    def dump(self):
        info = super().dump()
        info.update(down_counts=dict(self.down_counts), up_counts=dict(self.up_counts))
        return info


@register_layer
class AccountingLayer(Layer):
    """ACCOUNT — usage accounting (Figure 1: "keeping track of usage").

    Transparent: meters messages and bytes per direction and per remote
    source, the raw material for billing or quota enforcement.
    """

    name = "ACCOUNT"

    def __init__(self, context, **config) -> None:
        super().__init__(context, **config)
        self.sent_messages = 0
        self.sent_bytes = 0
        self.received_messages = 0
        self.received_bytes = 0
        self.per_source: dict = {}

    def handle_down(self, downcall) -> None:
        if downcall.message is not None:
            self.sent_messages += 1
            self.sent_bytes += downcall.message.body_size
        self.pass_down(downcall)

    def handle_up(self, upcall) -> None:
        if upcall.message is not None and upcall.source is not None:
            self.received_messages += 1
            size = upcall.message.body_size
            self.received_bytes += size
            key = str(upcall.source)
            messages, total = self.per_source.get(key, (0, 0))
            self.per_source[key] = (messages + 1, total + size)
        self.pass_up(upcall)

    def dump(self):
        info = super().dump()
        info.update(
            sent_messages=self.sent_messages,
            sent_bytes=self.sent_bytes,
            received_messages=self.received_messages,
            received_bytes=self.received_bytes,
            per_source=dict(self.per_source),
        )
        return info
