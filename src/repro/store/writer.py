"""WalWriter — the group-commit / async durability pipeline.

One :class:`WalWriter` owns all appends to one WAL blob and turns the
:class:`~repro.store.policy.DurabilityPolicy` into mechanism:

* ``fsync_per_record`` — encode, append, fsync, return a done ticket.
  No buffering, no timers: byte-for-byte the original behavior.
* ``group`` — records are buffered (payloads, not yet encoded) and
  flushed as one ``append_many`` + one ``sync`` when the batch hits
  ``max_batch_bytes`` / ``max_batch_records``, when ``max_delay``
  Clock seconds pass since the first buffered record (the Coalescer's
  bounded-latency-budget idiom, timer generations and all), or when a
  caller forces it (``flush()`` / ``ticket.wait()``).
* ``async`` — the same batching, but the encode+write+fsync pipeline
  runs off the caller: on a realtime clock a daemon writer thread
  drains a queue (record encoding overlaps the previous batch's I/O);
  on the DES (or any deterministic clock) the drain is scheduled as
  ordinary clock events, so completions land at deterministic virtual
  times and digests stay pure in the seed.  Completion callbacks are
  always delivered on the clock's thread (via
  ``loop.call_soon_threadsafe`` when a thread is involved), so layers
  may pass upcalls from them safely.

Crash semantics (what the torture suite pins): the buffer and queue
are *volatile*.  A crash loses any record whose ticket never
completed; it never loses a completed one, and because flushes append
records strictly in LSN order, replay always recovers a clean prefix
of the append sequence.  :attr:`WalWriter.fault_hook` is the chaos
injection seam: it is called around every flush (``before_write``,
``after_write``, ``after_sync``) and may raise to simulate a crash at
exactly that boundary, on either backend.

A flush also appends the new WAL byte offset to a sidecar blob
(``wal.batches``, plain big-endian u64s, never fsynced) so
``store-inspect`` can show per-batch record counts and flush
boundaries offline.  The sidecar is advisory: recovery never reads it.
"""

from __future__ import annotations

import struct
import threading
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.store import backend as backend_mod
from repro.store.policy import (
    ASYNC,
    FSYNC_PER_RECORD,
    CommitTicket,
    DurabilityPolicy,
)
from repro.store.wal import MAX_RECORD_BYTES, encode_record

#: Sidecar blob holding one big-endian u64 WAL byte offset per flush.
BATCH_INDEX_SUFFIX = ".batches"

#: Histogram buckets for flush batch sizes (1 – 4096 records).
_RECORD_BUCKETS: Tuple[float, ...] = tuple(float(1 << n) for n in range(0, 13))
#: Histogram buckets for flush batch bytes (64 B – 4 MiB).
_BYTE_BUCKETS: Tuple[float, ...] = tuple(float(1 << n) for n in range(6, 23))
#: Histogram buckets for commit latency (1 µs – 4 s).
_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    1e-6 * (4 ** n) for n in range(0, 12)
)


class WalWriter:
    """Batches appends to one WAL blob per the durability policy.

    Args:
        backend: the named-blob backend (any object with the original
            five verbs; ``append_many``/``sync`` are used when present).
        name: the WAL blob name (``wal.log``).
        policy: the :class:`DurabilityPolicy` to implement.
        clock: optional :class:`~repro.runtime.clock.Clock` for the
            ``max_delay`` flush timer and for marshalling completions.
            Without one, relaxed modes flush on the size triggers and
            on explicit ``flush()``/``wait()`` alone.
        label: ``node/namespace`` tag for metrics.
        metrics: optional :class:`~repro.obs.MetricsRegistry`.
    """

    def __init__(
        self,
        backend,
        name: str,
        policy: Optional[DurabilityPolicy] = None,
        clock=None,
        label: str = "",
        metrics=None,
    ) -> None:
        self.backend = backend
        self.name = name
        self.policy = policy or DurabilityPolicy()
        self.clock = clock
        self.label = label
        self.metrics = metrics
        #: Chaos seam: called as ``fault_hook(phase, records, bytes)``
        #: with phase in {"before_write", "after_write", "after_sync"}
        #: around every flush; may raise to crash at that boundary.
        self.fault_hook: Optional[Callable[[str, int, int], None]] = None
        #: Next record's LSN (count of records ever appended here).
        self._lsn = 0
        #: Buffered (payload, ticket, enqueue_time) triples, oldest first.
        self._pending: List[Tuple[bytes, CommitTicket, float]] = []
        self._pending_bytes = 0
        #: Timer staleness guard (same idiom as net.coalesce._Buffer).
        self._generation = 0
        self._timer_handle = None
        #: Lifetime counters (mirrored into metrics when present).
        self.flushes = 0
        self.records_written = 0
        self.batch_index_enabled = self.policy.batched
        #: WAL byte offset after the last flush — the sidecar's value.
        #: Starts at the existing WAL length so boundaries stay exact
        #: when a writer reopens a surviving log.
        self.bytes_written = (
            len(backend.read(name)) if self.batch_index_enabled else 0
        )
        # Threaded pipeline state (async mode on a realtime clock, or
        # async with no clock at all — e.g. a standalone benchmark).
        self._threaded = self.policy.mode == ASYNC and self._thread_allowed()
        self._queue: Deque[Tuple[bytes, CommitTicket, float]] = deque()
        self._cv = threading.Condition()
        self._inflight = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = False
        self._io_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Append / flush surface
    # ------------------------------------------------------------------

    def append(self, payload: bytes) -> CommitTicket:
        """Accept one record per the policy; returns its ticket."""
        if len(payload) > MAX_RECORD_BYTES:
            raise ValueError(
                f"WAL record of {len(payload)} bytes exceeds the "
                f"{MAX_RECORD_BYTES}-byte cap"
            )
        lsn = self._lsn
        self._lsn += 1
        if self.policy.mode == FSYNC_PER_RECORD:
            record = encode_record(payload)
            self._run_hook("before_write", 1, len(record))
            self.backend.append(self.name, record)
            self._run_hook("after_write", 1, len(record))
            self._run_hook("after_sync", 1, len(record))
            self.flushes += 1
            self.records_written += 1
            self.bytes_written += len(record)
            ticket = CommitTicket(lsn, done=True)
            self._observe_flush(1, len(record), "record")
            self._observe_commit(0.0)
            return ticket
        ticket = CommitTicket(lsn, waiter=self._ticket_waiter)
        entry = (payload, ticket, self._now())
        if self._threaded:
            ticket._ensure_event()
            self._start_thread()
            with self._cv:
                self._queue.append(entry)
                self._cv.notify()
            return ticket
        self._pending.append(entry)
        self._pending_bytes += len(payload) + 8  # header is 8 bytes
        if (
            self._pending_bytes >= self.policy.max_batch_bytes
            or len(self._pending) >= self.policy.max_batch_records
        ):
            self.flush("size")
        elif len(self._pending) == 1 and self.clock is not None \
                and self.policy.max_delay > 0:
            self._timer_handle = self.clock.call_after(
                self.policy.max_delay, self._timer_flush, self._generation
            )
        return ticket

    def flush(self, trigger: str = "explicit") -> None:
        """Write and fsync everything buffered (synchronous path)."""
        if self._threaded:
            self._drain_queue()
            return
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self._pending_bytes = 0
        self._generation += 1
        if self._timer_handle is not None:
            self._timer_handle.cancel()
            self._timer_handle = None
        self._write_batch(batch, trigger)

    def drain(self) -> None:
        """Flush pending work and, when threaded, wait for the queue to
        empty — afterwards every issued ticket is done."""
        if self._threaded:
            self._drain_queue()
        else:
            self.flush("drain")

    def discard_pending(self) -> int:
        """Drop buffered/queued records *without* writing them (the
        crash path: volatile buffers die with the node).  Their tickets
        never complete.  Returns how many records were dropped."""
        dropped = len(self._pending)
        self._pending = []
        self._pending_bytes = 0
        self._generation += 1
        if self._timer_handle is not None:
            self._timer_handle.cancel()
            self._timer_handle = None
        if self._threaded:
            with self._cv:
                dropped += len(self._queue)
                self._queue.clear()
        return dropped

    def close(self) -> None:
        """Drain and stop the writer thread (if any)."""
        try:
            self.drain()
        finally:
            if self._thread is not None:
                with self._cv:
                    self._stop = True
                    self._cv.notify()
                self._thread.join(timeout=5.0)
                self._thread = None

    @property
    def pending_records(self) -> int:
        """Records accepted but not yet written."""
        if self._threaded:
            with self._cv:
                return len(self._queue) + self._inflight
        return len(self._pending)

    # ------------------------------------------------------------------
    # The flush pipeline
    # ------------------------------------------------------------------

    def _write_batch(
        self, batch: List[Tuple[bytes, CommitTicket, float]], trigger: str
    ) -> None:
        records = [encode_record(payload) for payload, _, _ in batch]
        nbytes = sum(len(r) for r in records)
        self._run_hook("before_write", len(records), nbytes)
        backend_mod.append_many(self.backend, self.name, records)
        self._run_hook("after_write", len(records), nbytes)
        backend_mod.sync(self.backend, self.name)
        self._run_hook("after_sync", len(records), nbytes)
        self.flushes += 1
        self.records_written += len(records)
        self.bytes_written += nbytes
        if self.batch_index_enabled:
            self._note_batch_boundary()
        self._observe_flush(len(records), nbytes, trigger)
        now = self._now()
        for _, ticket, enqueued in batch:
            self._observe_commit(max(0.0, now - enqueued))
            self._complete(ticket)

    def _complete(self, ticket: CommitTicket) -> None:
        """Complete a ticket; its *callbacks* run on the clock's thread.

        The done flag and the cross-thread wait event always flip at
        once (the record is durable now); only callback delivery is
        rerouted: via ``call_soon`` on a deterministic clock (the ack
        becomes a scheduled event — the DES drain), via
        ``loop.call_soon_threadsafe`` from the writer thread (layers may
        pass upcalls from completion callbacks safely).
        """
        if self.policy.mode != ASYNC or self.clock is None:
            ticket._complete()
            return
        if self._threaded:
            loop = getattr(self.clock, "loop", None)
            if loop is not None and not loop.is_closed():
                try:
                    ticket._complete(dispatch=loop.call_soon_threadsafe)
                    return
                except RuntimeError:
                    pass  # loop shut down mid-flight; complete inline
            ticket._complete()
            return
        ticket._complete(dispatch=self.clock.call_soon)

    def _ticket_waiter(self, ticket: CommitTicket) -> None:
        """Progress hook for ``ticket.wait()``: force the covering flush
        (sync modes) or nudge the writer thread (threaded mode)."""
        if self._threaded:
            with self._cv:
                self._cv.notify()
        else:
            self.flush("wait")

    def _timer_flush(self, generation: int) -> None:
        self._timer_handle = None
        if generation != self._generation or not self._pending:
            return
        self.flush("timer")

    def _note_batch_boundary(self) -> None:
        """Append the post-flush WAL offset to the advisory sidecar."""
        offset = self.bytes_written
        backend_mod.append_many(
            self.backend,
            self.name + BATCH_INDEX_SUFFIX,
            [struct.pack(">Q", offset)],
        )

    def reset_batch_index(self, base_bytes: int = 0) -> None:
        """Restart the sidecar (called on WAL truncation/compaction)."""
        self.bytes_written = base_bytes
        if self.batch_index_enabled:
            self.backend.replace(self.name + BATCH_INDEX_SUFFIX, b"")

    # ------------------------------------------------------------------
    # The writer thread (async mode, realtime)
    # ------------------------------------------------------------------

    def _thread_allowed(self) -> bool:
        """Threads only where determinism cannot be harmed: a wall-clock
        engine (it has an asyncio ``loop``) or no clock at all.  A
        deterministic scheduler gets the clock-driven drain instead."""
        return self.clock is None or hasattr(self.clock, "loop")

    def _start_thread(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._stop = False
            self._thread = threading.Thread(
                target=self._thread_main,
                name=f"wal-writer:{self.label or self.name}",
                daemon=True,
            )
            self._thread.start()

    def _thread_main(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._stop:
                    self._cv.wait()
                if self._stop and not self._queue:
                    return
                batch: List[Tuple[bytes, CommitTicket, float]] = []
                size = 0
                while self._queue and len(batch) < self.policy.max_batch_records:
                    payload, ticket, enqueued = self._queue[0]
                    if batch and size + len(payload) + 8 > self.policy.max_batch_bytes:
                        break
                    self._queue.popleft()
                    batch.append((payload, ticket, enqueued))
                    size += len(payload) + 8
                self._inflight = len(batch)
            try:
                self._write_batch(batch, "queue")
            except BaseException as exc:  # noqa: BLE001 - surfaced to callers
                with self._cv:
                    self._io_error = exc
                    self._inflight = 0
                    self._cv.notify_all()
                return
            with self._cv:
                self._inflight = 0
                self._cv.notify_all()

    def _drain_queue(self) -> None:
        """Block until the writer thread has written everything queued
        (including the batch it may be mid-flush on)."""
        with self._cv:
            if self._io_error is None and (self._queue or self._inflight):
                self._start_thread()
            deadline = 60.0
            while self._io_error is None and (self._queue or self._inflight):
                self._cv.notify()
                if not self._cv.wait(timeout=1.0):
                    deadline -= 1.0
                    if deadline <= 0:
                        raise RuntimeError(
                            "WAL writer thread failed to drain"
                        )
            if self._io_error is not None:
                raise RuntimeError(
                    "WAL writer thread died"
                ) from self._io_error

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------

    def _now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    def _run_hook(self, phase: str, records: int, nbytes: int) -> None:
        if self.fault_hook is not None:
            self.fault_hook(phase, records, nbytes)

    def _observe_flush(self, records: int, nbytes: int, trigger: str) -> None:
        if self.metrics is None:
            return
        self.metrics.counter(
            "store_flush_batches_total",
            "WAL flush batches written, by trigger",
            labels=("trigger",),
        ).labels(trigger=trigger).inc()
        self.metrics.histogram(
            "store_flush_batch_records",
            "Records per WAL flush batch",
            buckets=_RECORD_BUCKETS,
        ).observe(float(records))
        self.metrics.histogram(
            "store_flush_batch_bytes",
            "Encoded bytes per WAL flush batch",
            buckets=_BYTE_BUCKETS,
        ).observe(float(nbytes))

    def _observe_commit(self, latency: float) -> None:
        if self.metrics is None:
            return
        self.metrics.counter(
            "store_commit_tickets_total",
            "Commit tickets completed, by durability mode",
            labels=("mode",),
        ).labels(mode=self.policy.mode).inc()
        if self.clock is not None:
            self.metrics.histogram(
                "store_commit_latency_seconds",
                "Append-to-durable latency per record",
                buckets=_LATENCY_BUCKETS,
            ).observe(latency)

    def __repr__(self) -> str:
        return (
            f"<WalWriter {self.label or self.name} mode={self.policy.mode} "
            f"pending={self.pending_records} flushes={self.flushes}>"
        )
