"""The write-ahead-log record codec.

One WAL is a flat byte sequence of length-prefixed, CRC'd records::

    +----------------+----------------+=================+
    | length  (u32)  | crc32   (u32)  | payload bytes   |
    +----------------+----------------+=================+

Both integers are big-endian; the CRC covers the payload only.  The
format is deliberately dumb: a record is readable iff its full header
and payload are on disk and the CRC matches, so a crash mid-append
leaves at worst one torn record at the tail.

:func:`scan` is the tolerant reader recovery leans on: it stops cleanly
at the first truncated or corrupt record and reports what it skipped —
a damaged suffix is *detected and ignored*, never replayed, because
everything after a bad record is unattributable.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import List

_HEADER = struct.Struct(">II")  # length, crc32

#: Hard cap on one record's payload (64 MiB): a corrupted length field
#: must not turn into an absurd allocation.
MAX_RECORD_BYTES = 64 * 1024 * 1024


def encode_record(payload: bytes) -> bytes:
    """One WAL record: header + payload, ready to append."""
    if len(payload) > MAX_RECORD_BYTES:
        raise ValueError(
            f"WAL record of {len(payload)} bytes exceeds the "
            f"{MAX_RECORD_BYTES}-byte cap"
        )
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class WalScan:
    """Everything a tolerant read of one WAL produced."""

    #: Payloads of every intact record, in append order.
    records: List[bytes] = field(default_factory=list)
    #: Records skipped because their CRC did not match.
    corrupt: int = 0
    #: Whether the log ended mid-record (torn tail from a crash).
    truncated: bool = False
    #: Bytes of the log consumed by intact records (the safe prefix a
    #: compaction may rewrite from).
    intact_bytes: int = 0

    @property
    def clean(self) -> bool:
        """True when every byte of the log was an intact record."""
        return not self.corrupt and not self.truncated


def scan(data: bytes) -> WalScan:
    """Read records until the data runs out or goes bad.

    The scan stops at the first problem: a torn header/payload marks the
    log ``truncated``; a CRC mismatch counts one ``corrupt`` record.  In
    either case the damaged suffix is ignored — only the intact prefix
    is ever replayed.
    """
    result = WalScan()
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < _HEADER.size:
            result.truncated = True
            break
        length, crc = _HEADER.unpack_from(data, offset)
        body_start = offset + _HEADER.size
        if length > MAX_RECORD_BYTES or total - body_start < length:
            result.truncated = True
            break
        payload = data[body_start:body_start + length]
        if zlib.crc32(payload) != crc:
            result.corrupt += 1
            break
        result.records.append(payload)
        offset = body_start + length
        result.intact_bytes = offset
    return result
