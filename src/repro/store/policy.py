"""Durability policies and commit tickets — the redesigned commit API.

The store keeps one narrow verb (``append``) and widens what happens
underneath it.  A :class:`DurabilityPolicy` names *when* an appended
record becomes durable:

* ``fsync_per_record`` — every append is written and fsynced before
  ``append`` returns (the original behavior, and the default).  The
  returned ticket is already done.
* ``group`` — appends are buffered and flushed as one write + one
  fsync when the batch reaches ``max_batch_bytes`` / ``max_batch_records``
  or when ``max_delay`` seconds of Clock time pass since the first
  buffered record (the same bounded-latency-budget idiom as
  :class:`repro.net.coalesce.Coalescer`).  ``append`` returns
  immediately; the ticket completes at the flush that covers it.
* ``async`` — like ``group``, but the write/fsync pipeline is moved off
  the caller entirely: a background writer thread on the realtime
  substrate (record encoding overlaps I/O), a deterministic
  clock-driven drain on the DES (completions are delivered as
  scheduled events, so digests stay pure functions of the seed).

Every ``append`` returns a :class:`CommitTicket` carrying the record's
LSN.  Callers choose their acknowledgment discipline per record:
ack-after-enqueue (just return), or ack-after-durable
(``ticket.wait()`` / ``ticket.add_done_callback``).  The recovery
contract for the relaxed modes: a crash may lose *enqueued* records,
but replay always recovers a clean **prefix** of the append sequence
that includes every record whose ticket completed.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass
from typing import Callable, List, Optional

#: The three durability modes, in decreasing strictness.
FSYNC_PER_RECORD = "fsync_per_record"
GROUP = "group"
ASYNC = "async"

DURABILITY_MODES = (FSYNC_PER_RECORD, GROUP, ASYNC)


@dataclass(frozen=True)
class DurabilityPolicy:
    """How a store's appends become durable (frozen: share freely).

    Replaces ad-hoc backend kwargs: one policy object travels from
    ``StoreDomain.store(node, ns, policy=...)`` down to the
    :class:`~repro.store.writer.WalWriter` unchanged.
    """

    #: One of :data:`DURABILITY_MODES`.
    mode: str = FSYNC_PER_RECORD
    #: Flush when the buffered batch reaches this many encoded bytes.
    max_batch_bytes: int = 256 * 1024
    #: Flush when the buffered batch reaches this many records.
    max_batch_records: int = 4096
    #: Flush latency budget in Clock seconds: the longest a buffered
    #: record may wait before a flush is forced (needs a bound clock;
    #: without one, flushes happen on the size triggers and on
    #: ``wait()`` / ``flush()`` alone).
    max_delay: float = 0.002

    def __post_init__(self) -> None:
        if self.mode not in DURABILITY_MODES:
            raise ValueError(
                f"unknown durability mode {self.mode!r}; "
                f"expected one of {DURABILITY_MODES}"
            )
        if self.max_batch_bytes <= 0 or self.max_batch_records <= 0:
            raise ValueError("batch limits must be positive")
        if self.max_delay < 0:
            raise ValueError("max_delay must be >= 0")

    @property
    def batched(self) -> bool:
        """Whether appends are deferred past the ``append`` call."""
        return self.mode != FSYNC_PER_RECORD


def parse_policy(value) -> DurabilityPolicy:
    """A :class:`DurabilityPolicy` from a policy, mode string, or None.

    The coercion point for layer/CLI config: ``parse_policy("group")``,
    ``parse_policy(policy)``, ``parse_policy(None)`` (the default
    policy) all work.
    """
    if value is None:
        return DurabilityPolicy()
    if isinstance(value, DurabilityPolicy):
        return value
    if isinstance(value, str):
        return DurabilityPolicy(mode=value)
    raise TypeError(f"cannot interpret {value!r} as a DurabilityPolicy")


class CommitTicket:
    """One append's receipt: its LSN plus a durability future.

    A ticket is *done* once the record it names is on stable storage
    (written and fsynced, or appended to the deterministic in-memory
    blob).  ``fsync_per_record`` tickets are born done; relaxed-mode
    tickets complete at the flush that covers them.

    Compatibility: ``DurableStore.append`` used to return a plain int
    index.  A ticket still coerces to that int (``int(ticket)``,
    ``ticket == 3``, use as a sequence index) with a
    :class:`DeprecationWarning` pointing at :attr:`lsn`.
    """

    __slots__ = ("lsn", "_done", "_event", "_callbacks", "_waiter")

    def __init__(
        self,
        lsn: int,
        done: bool = False,
        waiter: Optional[Callable[["CommitTicket"], None]] = None,
    ) -> None:
        #: Log sequence number: the record's index in this store handle's
        #: append sequence (what ``append`` used to return).
        self.lsn = lsn
        self._done = done
        self._event: Optional[threading.Event] = None
        self._callbacks: List[Callable[["CommitTicket"], None]] = []
        #: How to make progress when a caller blocks on this ticket
        #: (the writer's flush/drain hook); None once done.
        self._waiter = None if done else waiter

    # -- the future surface ------------------------------------------------

    def done(self) -> bool:
        """Whether the record is durable."""
        return self._done

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until durable; returns :meth:`done`.

        On a synchronous writer this *forces* the covering flush (so a
        ticket can never deadlock waiting for a timer that only fires
        when the world runs); on a threaded writer it waits for the
        writer thread to drain past this record.
        """
        if self._done:
            return True
        if self._waiter is not None:
            self._waiter(self)
        if self._done:
            return True
        if self._event is not None:
            self._event.wait(timeout)
        return self._done

    def add_done_callback(self, fn: Callable[["CommitTicket"], None]) -> None:
        """Run ``fn(ticket)`` once durable (immediately if already)."""
        if self._done:
            fn(self)
            return
        self._callbacks.append(fn)
        if self._done and fn in self._callbacks:
            # A threaded writer completed between the check and the
            # append; the callback landed on the post-completion list
            # and would never fire.  Run it here instead.
            self._callbacks.remove(fn)
            fn(self)

    # -- writer side -------------------------------------------------------

    def _ensure_event(self) -> threading.Event:
        """The cross-thread wait primitive (threaded writers only)."""
        if self._event is None:
            self._event = threading.Event()
        return self._event

    def _complete(self, dispatch: Optional[Callable] = None) -> None:
        """Mark durable and fire callbacks.  Idempotent.

        ``dispatch`` reroutes the *callbacks* (not the done flag, which
        is set immediately so ``wait()`` unblocks) — the writer passes
        ``clock.call_soon`` on the DES (acks become scheduled events)
        or ``loop.call_soon_threadsafe`` from its thread (callbacks run
        on the engine thread, where layers are allowed to act).
        """
        if self._done:
            return
        self._done = True
        self._waiter = None
        if self._event is not None:
            self._event.set()
        callbacks, self._callbacks = self._callbacks, []
        if not callbacks:
            return
        if dispatch is None:
            for fn in callbacks:
                fn(self)
        else:
            def fire(ticket=self, fns=tuple(callbacks)) -> None:
                for fn in fns:
                    fn(ticket)
            dispatch(fire)

    # -- legacy int-LSN shim -----------------------------------------------

    def _warn_int(self) -> None:
        warnings.warn(
            "DurableStore.append now returns a CommitTicket; use "
            "ticket.lsn instead of treating the result as an int",
            DeprecationWarning,
            stacklevel=3,
        )

    def __int__(self) -> int:
        self._warn_int()
        return self.lsn

    def __index__(self) -> int:
        self._warn_int()
        return self.lsn

    def __eq__(self, other) -> bool:
        if isinstance(other, CommitTicket):
            return self is other
        if isinstance(other, int):
            self._warn_int()
            return self.lsn == other
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        state = "durable" if self._done else "pending"
        return f"<CommitTicket lsn={self.lsn} {state}>"
