"""The durable store: WAL + atomic snapshot over one backend.

A :class:`DurableStore` is what a client (LOGGER, ReplicatedDict, the
state machine) holds: an append-only write-ahead log plus one snapshot
blob, both living in a :mod:`~repro.store.backend` backend, with all
WAL writes flowing through a :class:`~repro.store.writer.WalWriter`
that implements the store's :class:`~repro.store.policy
.DurabilityPolicy`.  The recovery contract:

* :meth:`append` accepts one update and returns a
  :class:`~repro.store.policy.CommitTicket` — under the default
  ``fsync_per_record`` policy the ticket is already done (the update
  is durable before anything is applied); under ``group``/``async``
  the caller chooses ack-after-enqueue (ignore the ticket) or
  ack-after-durable (``ticket.wait()`` / ``add_done_callback``);
* :meth:`snapshot` atomically replaces the snapshot with the full state
  at some epoch and compacts (truncates) the WAL — after a snapshot the
  log only holds updates newer than it;
* :meth:`replay` returns ``(snapshot, epoch, entries)`` — the state to
  reinstall and the intact WAL suffix to re-apply on top — tolerating a
  torn tail or corrupt record by ignoring the damaged suffix.  Under a
  relaxed policy a crash may lose *enqueued-but-unacknowledged*
  records; it never loses one whose ticket completed, and replay is
  always a clean prefix of the append sequence.

A :class:`StoreDomain` owns every store of one world, keyed by
``(node, namespace)``: node *names* survive crash/recover even though
endpoints and ports do not, which is what lets a re-incarnated process
find its own state.  Store handles are cached per key, so every caller
of ``domain.store(node, ns)`` shares one writer (and one pending
batch).  :class:`MemoryStoreDomain` backs the DES (state is part of
the pure function of the seed); :class:`FileStoreDomain` backs the
realtime substrate with real per-endpoint directories.  Worlds call
:meth:`~MemoryStoreDomain.bind_clock` at construction so relaxed-mode
flush timers ride the same Clock seam as every protocol layer.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import struct
import tempfile
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.store.backend import FileBackend, MemoryBackend
from repro.store.policy import CommitTicket, DurabilityPolicy, parse_policy
from repro.store.wal import WalScan, scan
from repro.store.writer import WalWriter

#: Blob names within one store's backend.
WAL_NAME = "wal.log"
SNAPSHOT_NAME = "snapshot.bin"

#: Snapshot blob header: magic, version, epoch, crc32, payload length.
_SNAP_MAGIC = b"RSNP"
_SNAP_HEADER = struct.Struct(">4sIQII")
_SNAP_VERSION = 1


def encode_snapshot(state: bytes, epoch: int) -> bytes:
    """The snapshot blob for ``state`` taken at ``epoch``."""
    return _SNAP_HEADER.pack(
        _SNAP_MAGIC, _SNAP_VERSION, epoch, zlib.crc32(state), len(state)
    ) + state


def decode_snapshot(blob: bytes) -> Tuple[Optional[bytes], int]:
    """``(state, epoch)`` from a snapshot blob; ``(None, 0)`` when the
    blob is missing, torn, or fails its CRC — recovery then starts from
    genesis and replays the WAL alone."""
    if len(blob) < _SNAP_HEADER.size:
        return None, 0
    magic, version, epoch, crc, length = _SNAP_HEADER.unpack_from(blob)
    if magic != _SNAP_MAGIC or version != _SNAP_VERSION:
        return None, 0
    state = blob[_SNAP_HEADER.size:_SNAP_HEADER.size + length]
    if len(state) != length or zlib.crc32(state) != crc:
        return None, 0
    return state, epoch


@dataclass
class ReplayResult:
    """What :meth:`DurableStore.replay` recovered."""

    #: Last durable snapshot state, or ``None`` when starting fresh.
    snapshot: Optional[bytes]
    #: Epoch the snapshot was taken at (0 without a snapshot).
    epoch: int
    #: Intact WAL entries newer than the snapshot, oldest first.
    entries: List[bytes] = field(default_factory=list)
    #: Damage ignored during the read (never replayed).
    corrupt: int = 0
    truncated: bool = False


class DurableStore:
    """One client's durable state: a WAL and a snapshot on one backend."""

    def __init__(
        self,
        backend,
        name: str = "",
        metrics=None,
        policy: Optional[DurabilityPolicy] = None,
        clock=None,
    ) -> None:
        self.backend = backend
        #: ``node/namespace`` label for metrics and reports.
        self.name = name
        self.metrics = metrics
        self.clock = clock
        #: Records appended through this handle since open (not the
        #: on-disk total — replay reports that).
        self.appended = 0
        self._since_snapshot = 0
        self.writer = WalWriter(
            backend, WAL_NAME, policy=parse_policy(policy), clock=clock,
            label=name, metrics=metrics,
        )

    @property
    def policy(self) -> DurabilityPolicy:
        """The active durability policy."""
        return self.writer.policy

    def set_policy(self, policy) -> None:
        """Swap the durability policy (drains the old writer first)."""
        policy = parse_policy(policy)
        if policy == self.writer.policy:
            return
        self.writer.close()
        self.writer = WalWriter(
            self.backend, WAL_NAME, policy=policy, clock=self.clock,
            label=self.name, metrics=self.metrics,
        )

    # -- writing -----------------------------------------------------------

    def append(self, payload: bytes) -> CommitTicket:
        """Append one update per the durability policy.

        Returns the record's :class:`CommitTicket`.  Under
        ``fsync_per_record`` it is done before this returns; under
        ``group``/``async`` use ``ticket.wait()`` or
        ``ticket.add_done_callback`` for ack-after-durable.  (The old
        int return survives as ``ticket.lsn``; coercing the ticket to
        an int warns :class:`DeprecationWarning`.)
        """
        ticket = self.writer.append(payload)
        self.appended += 1
        self._since_snapshot += 1
        if self.metrics is not None:
            record_len = len(payload) + 8
            self._counter("store_wal_appends_total",
                          "Records appended to store WALs").inc()
            self._counter("store_wal_bytes_total",
                          "Bytes appended to store WALs").inc(record_len)
        return ticket

    def flush(self) -> None:
        """Force everything buffered to stable storage now."""
        self.writer.drain()

    def snapshot(self, state: bytes, epoch: int) -> CommitTicket:
        """Atomically install ``state`` as the snapshot and compact the WAL.

        Pending WAL records are drained first (they may be older than
        ``state``; truncating them unwritten would break the prefix
        contract for any ticket a caller is still holding).  The
        snapshot is then replaced before the log is truncated, so a
        crash between the two replays a few updates twice onto the
        *new* snapshot rather than losing any (clients' updates must be
        idempotent re-applications, which set/delete-style ops are).
        Returns a done ticket for the compaction itself, so callers
        (XFER install, toolkit clients) can thread it through the same
        ack plumbing as appends.
        """
        self.writer.drain()
        self.backend.replace(SNAPSHOT_NAME, encode_snapshot(state, epoch))
        self.backend.replace(WAL_NAME, b"")
        self.writer.reset_batch_index()
        self._since_snapshot = 0
        if self.metrics is not None:
            self._counter("store_snapshots_total",
                          "Snapshot/compaction cycles completed").inc()
            self.metrics.histogram(
                "store_snapshot_bytes",
                "Serialized state size at each snapshot",
                buckets=_SNAPSHOT_BUCKETS,
            ).observe(float(len(state)))
            self.metrics.gauge(
                "store_flush_frontier",
                "Appends made durable by the latest snapshot, per store",
                labels=("store",),
            ).labels(store=self.name).set(float(self.appended))
        return CommitTicket(self.appended - 1, done=True)

    # -- reading -----------------------------------------------------------

    def replay(self) -> ReplayResult:
        """Read back the snapshot and the intact WAL suffix (pending
        writes are drained first so the read is current)."""
        self.writer.drain()
        state, epoch = decode_snapshot(self.backend.read(SNAPSHOT_NAME))
        walscan: WalScan = scan(self.backend.read(WAL_NAME))
        result = ReplayResult(
            snapshot=state,
            epoch=epoch,
            entries=walscan.records,
            corrupt=walscan.corrupt,
            truncated=walscan.truncated,
        )
        if self.metrics is not None:
            self._counter("store_replays_total",
                          "WAL replays performed").inc()
            self._counter("store_replay_records_total",
                          "Intact records recovered by replays"
                          ).inc(len(result.entries))
            if result.corrupt or result.truncated:
                self._counter(
                    "store_replay_corrupt_total",
                    "Corrupt or torn WAL records detected and ignored",
                ).inc(result.corrupt + (1 if result.truncated else 0))
        return result

    def digest(self) -> str:
        """Content hash of the durable state (snapshot + intact WAL)."""
        digest = hashlib.sha256()
        replayed = self.replay()
        if replayed.snapshot is not None:
            digest.update(b"S" + replayed.snapshot)
        for entry in replayed.entries:
            digest.update(b"|" + entry)
        return digest.hexdigest()

    @property
    def since_snapshot(self) -> int:
        """Appends through this handle since the last compaction."""
        return self._since_snapshot

    def wal_bytes(self) -> int:
        """Current size of the WAL blob (pending writes drained first)."""
        self.writer.drain()
        return len(self.backend.read(WAL_NAME))

    def close(self) -> None:
        """Drain the writer and release backend resources."""
        self.writer.close()
        close = getattr(self.backend, "close", None)
        if close is not None:
            close()

    def _counter(self, name: str, help_text: str):
        return self.metrics.counter(name, help_text)

    def __repr__(self) -> str:
        return (
            f"<DurableStore {self.name or '?'} mode={self.policy.mode} "
            f"appended={self.appended}>"
        )


#: Snapshot-size buckets (64 B – 16 MiB).
_SNAPSHOT_BUCKETS: Tuple[float, ...] = tuple(float(1 << n) for n in range(6, 25))


def _safe(part: str) -> str:
    """A path-safe rendering of a node or namespace name."""
    return "".join(c if c.isalnum() or c in "._-" else "_" for c in part)


class _DomainBase:
    """Shared store-handle cache + clock plumbing for both domains."""

    def __init__(self, metrics=None, clock=None) -> None:
        self.metrics = metrics
        self.clock = clock
        self._stores: Dict[Tuple[str, str], DurableStore] = {}

    def bind_clock(self, clock) -> None:
        """Attach the world's Clock (flush timers, commit latency).

        Worlds call this right after construction; stores created
        earlier keep their old clock (usually none), stores created
        later use this one.
        """
        self.clock = clock

    def _get(self, node: str, namespace: str, policy, make_backend) -> DurableStore:
        key = (node, namespace)
        store = self._stores.get(key)
        if store is None:
            store = DurableStore(
                make_backend(), name=f"{node}/{namespace}",
                metrics=self.metrics, policy=parse_policy(policy),
                clock=self.clock,
            )
            self._stores[key] = store
        elif policy is not None:
            store.set_policy(policy)
        return store

    def flush_all(self) -> None:
        """Drain every store's pending writes (quiesce point)."""
        for store in self._stores.values():
            store.flush()

    def discard_pending(self, node: str) -> int:
        """Crash semantics: drop ``node``'s volatile write buffers
        without writing them (their tickets never complete).  Durable
        bytes are untouched.  Returns how many records were dropped."""
        dropped = 0
        for (owner, _ns), store in self._stores.items():
            if owner == node:
                dropped += store.writer.discard_pending()
        return dropped

    def _drop(self, node: str) -> None:
        for key in [k for k in self._stores if k[0] == node]:
            self._stores.pop(key).close()


class MemoryStoreDomain(_DomainBase):
    """The DES world's store domain: deterministic in-memory backends.

    Keyed by node *name*, so a store survives
    :meth:`~repro.core.process.Process._restart` (which destroys every
    endpoint) and is found again by the re-incarnated process — unless
    the fault plane's blank-slate recovery wipes it first.
    """

    def __init__(self, metrics=None, clock=None) -> None:
        super().__init__(metrics=metrics, clock=clock)
        self._backends: Dict[Tuple[str, str], MemoryBackend] = {}

    def store(
        self, node: str, namespace: str,
        policy: Optional[DurabilityPolicy] = None,
    ) -> DurableStore:
        """The durable store for ``(node, namespace)`` (created lazily,
        cached — every caller shares one handle and one write pipeline).
        ``policy`` reconfigures the store's durability when given."""
        def make_backend() -> MemoryBackend:
            return self._backends.setdefault((node, namespace), MemoryBackend())

        return self._get(node, namespace, policy, make_backend)

    def wipe(self, node: str) -> None:
        """Destroy every store of ``node`` (blank-slate recovery)."""
        self._drop(node)
        for key in [k for k in self._backends if k[0] == node]:
            del self._backends[key]

    def stores(self) -> List[Tuple[str, str]]:
        """Every ``(node, namespace)`` with state, sorted."""
        return sorted(self._backends)

    def close(self) -> None:
        """Drain writers; nothing on disk to release."""
        for store in self._stores.values():
            store.close()


class FileStoreDomain(_DomainBase):
    """Real files, one directory per ``(node, namespace)`` store.

    Layout: ``root/<node>/<namespace>/{wal.log,snapshot.bin}`` — the
    per-endpoint directory the realtime substrate journals into, and
    the input ``python -m repro store-inspect`` renders.

    With ``root=None`` an ephemeral temp directory is created and
    removed again by :meth:`close` (what :class:`~repro.runtime.world
    .RealtimeWorld` uses by default).
    """

    def __init__(
        self, root: Optional[str] = None, metrics=None, clock=None
    ) -> None:
        super().__init__(metrics=metrics, clock=clock)
        self.ephemeral = root is None
        self.root = root if root is not None else tempfile.mkdtemp(
            prefix="repro-store-"
        )
        os.makedirs(self.root, exist_ok=True)

    def store(
        self, node: str, namespace: str,
        policy: Optional[DurabilityPolicy] = None,
    ) -> DurableStore:
        def make_backend() -> FileBackend:
            path = os.path.join(self.root, _safe(node), _safe(namespace))
            return FileBackend(path)

        return self._get(node, namespace, policy, make_backend)

    def wipe(self, node: str) -> None:
        self._drop(node)
        shutil.rmtree(os.path.join(self.root, _safe(node)),
                      ignore_errors=True)

    def stores(self) -> List[Tuple[str, str]]:
        found = []
        try:
            nodes = sorted(os.listdir(self.root))
        except OSError:
            return []
        for node in nodes:
            node_dir = os.path.join(self.root, node)
            if not os.path.isdir(node_dir):
                continue
            for namespace in sorted(os.listdir(node_dir)):
                if os.path.isdir(os.path.join(node_dir, namespace)):
                    found.append((node, namespace))
        return found

    def close(self) -> None:
        """Drain writers, release file handles, and remove the backing
        directory if this domain created it."""
        for store in self._stores.values():
            store.close()
        if self.ephemeral:
            shutil.rmtree(self.root, ignore_errors=True)
