"""repro.store — durable state beneath one narrow seam.

The paper's Figure 1 lists *logging for tolerance of total crash
failures*; Section 9 treats state transfer to joiners as a core toolkit
capability.  This package is the durable half of both: a
substrate-neutral write-ahead log + snapshot store that protocol layers
and toolkit clients reach only through
:attr:`repro.core.layer.LayerContext.store` (the hourglass discipline —
one narrow waist, two substrates beneath it):

* :mod:`repro.store.wal` — the CRC'd, length-prefixed record codec with
  a tolerant reader (torn tails and bit flips are detected and ignored,
  never replayed);
* :mod:`repro.store.backend` — byte blobs in memory (DES) or real files
  with atomic replace (realtime); backends grow ``append_many``/``sync``
  so a whole batch can ride one fsync;
* :mod:`repro.store.policy` — :class:`DurabilityPolicy`
  (``fsync_per_record`` / ``group`` / ``async``) and the
  :class:`CommitTicket` every ``append`` now returns;
* :mod:`repro.store.writer` — :class:`WalWriter`, the group-commit /
  async pipeline implementing the policy under a bounded latency
  budget on the Clock seam;
* :class:`DurableStore` — append / atomic snapshot+compaction / replay
  over one backend;
* :class:`MemoryStoreDomain` / :class:`FileStoreDomain` — a world's
  stores keyed by ``(node, namespace)``, so node names (which survive
  crash/recover) find their state again;
* :mod:`repro.store.torture` — crash-at-every-fsync injection pinning
  that relaxed modes recover a clean prefix of acknowledged records;
* :mod:`repro.store.inspect` — ``python -m repro store-inspect``.

The in-band half is the XFER layer
(:class:`repro.layers.xfer.StateTransferLayer`): coordinator-driven
snapshot streaming to joiners over the ordinary stack.
"""

from repro.store.backend import FileBackend, MemoryBackend
from repro.store.inspect import find_stores, render_path, render_store
from repro.store.policy import (
    ASYNC,
    DURABILITY_MODES,
    FSYNC_PER_RECORD,
    GROUP,
    CommitTicket,
    DurabilityPolicy,
    parse_policy,
)
from repro.store.store import (
    DurableStore,
    FileStoreDomain,
    MemoryStoreDomain,
    ReplayResult,
    decode_snapshot,
    encode_snapshot,
)
from repro.store.wal import MAX_RECORD_BYTES, WalScan, encode_record, scan
from repro.store.writer import WalWriter

__all__ = [
    "ASYNC",
    "CommitTicket",
    "DURABILITY_MODES",
    "DurabilityPolicy",
    "DurableStore",
    "FSYNC_PER_RECORD",
    "FileBackend",
    "FileStoreDomain",
    "GROUP",
    "MAX_RECORD_BYTES",
    "MemoryBackend",
    "MemoryStoreDomain",
    "ReplayResult",
    "WalScan",
    "WalWriter",
    "decode_snapshot",
    "encode_record",
    "encode_snapshot",
    "find_stores",
    "parse_policy",
    "render_path",
    "render_store",
    "scan",
]
