"""Storage backends: where one store's bytes actually live.

A backend is a tiny named-blob surface — ``read`` / ``append`` /
``replace`` / ``delete`` — beneath the :class:`~repro.store.store
.DurableStore`.  Two implementations share it:

* :class:`MemoryBackend` — byte-exact in-memory blobs.  The DES world's
  store domain hands these out so durable state is a pure function of
  the run (and survives :meth:`~repro.core.process.Process._restart`,
  which destroys every endpoint but not the world).
* :class:`FileBackend` — real files in one directory, with
  ``replace`` implemented as write-to-temp + ``os.replace`` + fsync so
  snapshots and compactions are atomic against crashes.

Both produce byte-identical WAL/snapshot content for the same append
sequence, which is what lets ``python -m repro store-inspect`` and the
torture tests treat them interchangeably.
"""

from __future__ import annotations

import os
from typing import Dict


class MemoryBackend:
    """Named blobs in memory; the DES's deterministic 'disk'."""

    def __init__(self) -> None:
        self._blobs: Dict[str, bytearray] = {}

    def read(self, name: str) -> bytes:
        """The blob's bytes (empty if it does not exist)."""
        return bytes(self._blobs.get(name, b""))

    def append(self, name: str, data: bytes) -> None:
        """Append to the named blob, creating it if needed."""
        self._blobs.setdefault(name, bytearray()).extend(data)

    def replace(self, name: str, data: bytes) -> None:
        """Atomically replace the blob's contents."""
        self._blobs[name] = bytearray(data)

    def delete(self, name: str) -> None:
        """Remove the blob (missing is fine)."""
        self._blobs.pop(name, None)

    def exists(self, name: str) -> bool:
        """Whether the named blob exists."""
        return name in self._blobs


class FileBackend:
    """Named files under one directory, with atomic replace."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, name: str) -> str:
        return os.path.join(self.root, name)

    def read(self, name: str) -> bytes:
        try:
            with open(self._path(name), "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return b""

    def append(self, name: str, data: bytes) -> None:
        with open(self._path(name), "ab") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())

    def replace(self, name: str, data: bytes) -> None:
        # Write-to-temp + rename: a crash at any point leaves either the
        # old contents or the new, never a torn mix.
        path = self._path(name)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def delete(self, name: str) -> None:
        try:
            os.remove(self._path(name))
        except FileNotFoundError:
            pass

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))
