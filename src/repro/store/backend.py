"""Storage backends: where one store's bytes actually live.

A backend is a tiny named-blob surface beneath the
:class:`~repro.store.store.DurableStore`:

* ``read`` / ``append`` / ``replace`` / ``delete`` / ``exists`` — the
  original five verbs.  ``append`` is *durable by itself*: the
  :class:`FileBackend` fsyncs before returning, which is exactly the
  ``fsync_per_record`` policy's cost.
* ``append_many(name, records)`` + ``sync(name)`` — the group-commit
  split: ``append_many`` stages many records with one write and **no**
  fsync; ``sync`` makes everything staged so far durable with one
  fsync.  The :class:`~repro.store.writer.WalWriter` batches through
  this pair.

Third-party backends that only implement the original five verbs keep
working: :func:`append_many` / :func:`sync` module-level helpers fall
back to an append loop and a no-op, trading group-commit speed for
compatibility (every record is still durable by the time ``sync``
returns, because the fallback ``append`` path is durable by itself).

Two implementations ship here:

* :class:`MemoryBackend` — byte-exact in-memory blobs.  The DES world's
  store domain hands these out so durable state is a pure function of
  the run (and survives :meth:`~repro.core.process.Process._restart`,
  which destroys every endpoint but not the world).
* :class:`FileBackend` — real files in one directory.  Appends go
  through a cached unbuffered file handle (no open/close per record);
  ``replace`` is write-to-temp + ``os.replace`` + fsync of the file
  **and of the containing directory**, so a rename is never lost to a
  crash between the data flush and the directory metadata flush.

Both produce byte-identical WAL/snapshot content for the same append
sequence, which is what lets ``python -m repro store-inspect`` and the
torture tests treat them interchangeably.
"""

from __future__ import annotations

import os
from typing import Dict, IO, Iterable


def append_many(backend, name: str, records: Iterable[bytes]) -> None:
    """Stage ``records`` onto ``backend`` (native batched path when the
    backend has one, durable append loop otherwise)."""
    native = getattr(backend, "append_many", None)
    if native is not None:
        native(name, records)
        return
    for record in records:
        backend.append(name, record)


def sync(backend, name: str) -> None:
    """Make everything staged on ``name`` durable (no-op fallback: a
    backend without ``sync`` has durable appends already)."""
    native = getattr(backend, "sync", None)
    if native is not None:
        native(name)


class MemoryBackend:
    """Named blobs in memory; the DES's deterministic 'disk'."""

    def __init__(self) -> None:
        self._blobs: Dict[str, bytearray] = {}

    def read(self, name: str) -> bytes:
        """The blob's bytes (empty if it does not exist)."""
        return bytes(self._blobs.get(name, b""))

    def append(self, name: str, data: bytes) -> None:
        """Append to the named blob, creating it if needed."""
        self._blobs.setdefault(name, bytearray()).extend(data)

    def append_many(self, name: str, records: Iterable[bytes]) -> None:
        """One extend for the whole batch."""
        blob = self._blobs.setdefault(name, bytearray())
        for record in records:
            blob.extend(record)

    def sync(self, name: str) -> None:
        """Memory is always 'durable' (within the simulated world)."""

    def replace(self, name: str, data: bytes) -> None:
        """Atomically replace the blob's contents."""
        self._blobs[name] = bytearray(data)

    def delete(self, name: str) -> None:
        """Remove the blob (missing is fine)."""
        self._blobs.pop(name, None)

    def exists(self, name: str) -> bool:
        """Whether the named blob exists."""
        return name in self._blobs

    def close(self) -> None:
        """Nothing to release; symmetry with :class:`FileBackend`."""


class FileBackend:
    """Named files under one directory, with atomic replace."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        #: Cached unbuffered append handles, one per name.  Opening the
        #: WAL once per flush (not once per record) is half the win of
        #: group commit; the other half is one fsync per batch.
        self._appenders: Dict[str, IO[bytes]] = {}

    def _path(self, name: str) -> str:
        return os.path.join(self.root, name)

    def _appender(self, name: str) -> IO[bytes]:
        fh = self._appenders.get(name)
        if fh is None or fh.closed:
            # buffering=0: writes reach the OS immediately, so a read
            # through a separate descriptor always sees staged bytes
            # and ``sync`` has nothing hidden in userspace buffers.
            fh = open(self._path(name), "ab", buffering=0)
            self._appenders[name] = fh
        return fh

    def _drop_appender(self, name: str) -> None:
        fh = self._appenders.pop(name, None)
        if fh is not None and not fh.closed:
            fh.close()

    def read(self, name: str) -> bytes:
        try:
            with open(self._path(name), "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return b""

    def append(self, name: str, data: bytes) -> None:
        """Durable single-record append: write + fsync."""
        fh = self._appender(name)
        fh.write(data)
        os.fsync(fh.fileno())

    def append_many(self, name: str, records: Iterable[bytes]) -> None:
        """Stage a batch with one write and no fsync (pair with sync)."""
        data = b"".join(records)
        if data:
            self._appender(name).write(data)

    def sync(self, name: str) -> None:
        """One fsync covering everything staged on ``name``."""
        fh = self._appenders.get(name)
        if fh is not None and not fh.closed:
            os.fsync(fh.fileno())

    def replace(self, name: str, data: bytes) -> None:
        # Write-to-temp + rename: a crash at any point leaves either the
        # old contents or the new, never a torn mix.  The directory
        # fsync afterwards pins the *rename itself*: without it a crash
        # after os.replace can roll the directory entry back to the old
        # inode, which for snapshot-then-truncate compaction would pair
        # the OLD snapshot with the truncated WAL — losing updates.
        self._drop_appender(name)
        path = self._path(name)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._sync_dir()

    def _sync_dir(self) -> None:
        flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
        try:
            fd = os.open(self.root, flags)
        except OSError:
            return  # platform without directory fds; best effort
        try:
            os.fsync(fd)
        except OSError:
            pass  # some filesystems refuse; the data fsync still held
        finally:
            os.close(fd)

    def delete(self, name: str) -> None:
        self._drop_appender(name)
        try:
            os.remove(self._path(name))
        except FileNotFoundError:
            pass

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def close(self) -> None:
        """Release every cached append handle."""
        for name in list(self._appenders):
            self._drop_appender(name)
