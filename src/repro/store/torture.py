"""Crash-at-every-fsync torture: the durability contract, executed.

The relaxed durability modes buy throughput by holding acknowledged-
later records in volatile buffers.  The contract they must keep (and
the one this module exists to break if it can) is:

* **prefix** — whatever replay recovers is a clean prefix of the
  append sequence: no holes, no reordering, no mixing;
* **acked ⊆ recovered** — every record whose :class:`CommitTicket`
  completed before the crash is in that prefix.  Records that were
  merely *enqueued* may be lost; that is the deal the caller accepted
  by not waiting.

Two injection seams cover both substrates (the in-memory DES backend
and the realtime file backend are exercised identically):

* :class:`FlushCrasher` plugs into :attr:`WalWriter.fault_hook` and
  raises :class:`SimulatedCrash` at a chosen flush boundary —
  ``before_write`` (batch lost whole), ``after_write`` (staged but
  maybe unsynced), ``after_sync`` (durable but unacknowledged).
* :class:`CrashingBackend` wraps any backend and crashes on the Nth
  call of a chosen verb, optionally writing only a byte-prefix first —
  the torn-tail / partial-batch case, and the crash-between-replaces
  window inside snapshot compaction.

:func:`crash_at_every_fsync` drives the full matrix: for every flush
index and every phase, run a fresh append workload, crash there,
"reboot" (drop volatile state, reopen the surviving bytes), replay,
and assert the contract.  Both the torture tests and the chaos CLI
build on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.store import backend as backend_mod
from repro.store.policy import DurabilityPolicy
from repro.store.store import DurableStore


class SimulatedCrash(Exception):
    """The injected failure: treated exactly like a power cut."""


#: The flush phases a :class:`FlushCrasher` can target, in pipeline order.
FLUSH_PHASES = ("before_write", "after_write", "after_sync")


class FlushCrasher:
    """A ``fault_hook`` that crashes at one exact flush boundary.

    ``at_flush`` counts flush *attempts* (0-based) across the writer's
    lifetime; ``phase`` picks where inside that flush the power dies.
    """

    def __init__(self, phase: str, at_flush: int = 0) -> None:
        if phase not in FLUSH_PHASES:
            raise ValueError(f"unknown flush phase {phase!r}")
        self.phase = phase
        self.at_flush = at_flush
        #: Flush attempts observed so far.
        self.attempts = 0
        #: Whether the crash actually fired (False means the run had
        #: fewer flushes than ``at_flush`` — the matrix is exhausted).
        self.fired = False
        self._current = -1

    def __call__(self, phase: str, records: int, nbytes: int) -> None:
        if phase == "before_write":
            self._current = self.attempts
            self.attempts += 1
        if (
            not self.fired
            and phase == self.phase
            and self._current == self.at_flush
        ):
            self.fired = True
            raise SimulatedCrash(
                f"injected crash: {phase} of flush #{self._current} "
                f"({records} records, {nbytes}B)"
            )


@dataclass
class _Plan:
    """One armed backend crash."""

    at_call: int
    partial_bytes: Optional[int] = None
    name: Optional[str] = None
    calls: int = 0
    fired: bool = False


class CrashingBackend:
    """Backend proxy that dies on the Nth call of a chosen verb.

    ``arm("append_many", partial_bytes=13, name="wal.log")`` makes the
    matching call durably write only the first 13 bytes of its batch
    and then raise — the worst-case torn tail.  ``arm("replace",
    at_call=1)`` crashes between the snapshot replace and the WAL
    truncation inside compaction.  Unarmed verbs pass straight
    through, so the proxy is safe to leave in place across a "reboot".
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self._plans: Dict[str, _Plan] = {}

    def arm(
        self,
        verb: str,
        at_call: int = 0,
        partial_bytes: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        """Schedule a crash on the ``at_call``-th matching ``verb`` call."""
        self._plans[verb] = _Plan(
            at_call=at_call, partial_bytes=partial_bytes, name=name
        )

    def disarm(self) -> None:
        """Forget every armed crash (the reboot path)."""
        self._plans.clear()

    def fired(self, verb: str) -> bool:
        """Whether the armed crash on ``verb`` went off."""
        plan = self._plans.get(verb)
        return plan is not None and plan.fired

    def _maybe_crash(self, verb: str, name: str, data: bytes = b"") -> None:
        plan = self._plans.get(verb)
        if plan is None or plan.fired:
            return
        if plan.name is not None and name != plan.name:
            return
        call = plan.calls
        plan.calls += 1
        if call != plan.at_call:
            return
        plan.fired = True
        if plan.partial_bytes is not None and data:
            torn = data[: plan.partial_bytes]
            if torn:
                # Durable partial write: the torn prefix reached disk
                # before the power died.
                self.inner.append(name, torn)
        raise SimulatedCrash(f"injected crash: {verb}({name!r}) call #{call}")

    # -- the backend surface, crash checks first ----------------------------

    def read(self, name: str) -> bytes:
        return self.inner.read(name)

    def append(self, name: str, data: bytes) -> None:
        self._maybe_crash("append", name, data)
        self.inner.append(name, data)

    def append_many(self, name: str, records: Iterable[bytes]) -> None:
        records = list(records)
        self._maybe_crash("append_many", name, b"".join(records))
        backend_mod.append_many(self.inner, name, records)

    def sync(self, name: str) -> None:
        self._maybe_crash("sync", name)
        backend_mod.sync(self.inner, name)

    def replace(self, name: str, data: bytes) -> None:
        self._maybe_crash("replace", name, data)
        self.inner.replace(name, data)

    def delete(self, name: str) -> None:
        self.inner.delete(name)

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def close(self) -> None:
        close = getattr(self.inner, "close", None)
        if close is not None:
            close()


@dataclass
class TortureCycle:
    """One crash/reboot/verify cycle's outcome."""

    phase: str
    at_flush: int
    crashed: bool
    #: LSNs whose tickets completed before the crash.
    acked: List[int] = field(default_factory=list)
    #: Records replay recovered after the reboot.
    recovered: int = 0


def run_crash_cycle(
    backend,
    policy: DurabilityPolicy,
    payloads: Sequence[bytes],
    crasher: Optional[FlushCrasher] = None,
    clock=None,
) -> List[int]:
    """Append ``payloads`` through a fresh store over ``backend`` with
    ``crasher`` armed, then kill the process image: volatile buffers
    are dropped, nothing else runs.  Returns the LSNs that were
    acknowledged (ticket done) at the moment of death.

    The injected :class:`SimulatedCrash` may surface inline (sync
    modes), or as the writer thread's death on drain (async mode); any
    other exception propagates — a torture harness must not eat real
    bugs.
    """
    store = DurableStore(backend, name="torture", policy=policy, clock=clock)
    if crasher is not None:
        store.writer.fault_hook = crasher
    tickets = []
    crashed = False
    try:
        for payload in payloads:
            tickets.append(store.append(payload))
        store.writer.drain()
    except SimulatedCrash:
        crashed = True
    except RuntimeError as exc:
        if not isinstance(exc.__cause__, SimulatedCrash):
            raise
        crashed = True
    if not crashed and crasher is not None and crasher.fired:
        crashed = True
    # The power is off: whatever never reached the backend is gone.
    store.writer.discard_pending()
    return [t.lsn for t in tickets if t.done()]


def verify_recovery(
    backend, payloads: Sequence[bytes], acked: Sequence[int]
) -> int:
    """Reboot onto ``backend`` and assert the durability contract.

    Raises :class:`AssertionError` when replay is not a clean prefix of
    ``payloads`` or is missing an acknowledged record.  Returns how
    many records were recovered.
    """
    inner = backend.inner if isinstance(backend, CrashingBackend) else backend
    replayed = DurableStore(inner, name="torture-replay").replay()
    recovered = replayed.entries
    prefix = list(payloads[: len(recovered)])
    assert recovered == prefix, (
        f"replay is not a prefix of the append sequence: recovered "
        f"{len(recovered)} records, first divergence at "
        f"{next((i for i, (a, b) in enumerate(zip(recovered, prefix)) if a != b), '?')}"
    )
    lost = [lsn for lsn in acked if lsn >= len(recovered)]
    assert not lost, (
        f"acknowledged records lost after crash: LSNs {lost} "
        f"(recovered {len(recovered)} of {len(payloads)})"
    )
    return len(recovered)


def crash_at_every_fsync(
    make_backend: Callable[[], object],
    policy: DurabilityPolicy,
    payloads: Sequence[bytes],
    phases: Tuple[str, ...] = FLUSH_PHASES,
    clock_factory: Optional[Callable[[], object]] = None,
) -> List[TortureCycle]:
    """The full matrix: crash at every flush boundary, in every phase.

    For each phase, runs crash cycles at flush index 0, 1, 2, ... on a
    fresh backend from ``make_backend`` until a run completes without
    the crash firing (there were no more flushes to crash at), then a
    final crash-free control run.  Every cycle is verified with
    :func:`verify_recovery`.  Returns the per-cycle ledger.
    """
    cycles: List[TortureCycle] = []
    for phase in phases:
        at_flush = 0
        while at_flush <= len(payloads) + 1:
            backend = make_backend()
            crasher = FlushCrasher(phase, at_flush=at_flush)
            clock = clock_factory() if clock_factory is not None else None
            acked = run_crash_cycle(
                backend, policy, payloads, crasher, clock=clock
            )
            recovered = verify_recovery(backend, payloads, acked)
            cycles.append(
                TortureCycle(
                    phase=phase,
                    at_flush=at_flush,
                    crashed=crasher.fired,
                    acked=list(acked),
                    recovered=recovered,
                )
            )
            if not crasher.fired:
                break
            at_flush += 1
    return cycles
