"""Human-readable dumps of WALs and snapshots (``store-inspect``).

Works on any directory a :class:`~repro.store.store.FileStoreDomain`
wrote: point it at one store directory (holding ``wal.log`` /
``snapshot.bin``) or at a domain root and it renders every store found
underneath — snapshot epoch and size, then each WAL record with its
length, CRC verdict, and a payload preview.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import List

from repro.store.store import SNAPSHOT_NAME, WAL_NAME, decode_snapshot
from repro.store.wal import _HEADER, MAX_RECORD_BYTES
from repro.store.writer import BATCH_INDEX_SUFFIX


def _preview(payload: bytes, limit: int = 60) -> str:
    """Printable head of a payload; hex when it is not clean text."""
    head = payload[:limit]
    try:
        text = head.decode("utf-8")
    except UnicodeDecodeError:
        text = None
    if text is not None and all(32 <= ord(c) < 127 for c in text):
        rendered = text
    else:
        rendered = "0x" + head.hex()
    if len(payload) > limit:
        rendered += f"... (+{len(payload) - limit}B)"
    return rendered


def _batch_boundaries(path: str, wal_len: int) -> List[int]:
    """Flush-boundary WAL offsets from the advisory ``wal.log.batches``
    sidecar a relaxed-mode :class:`~repro.store.writer.WalWriter`
    leaves beside the log.  Tolerant by design: a truncated trailing
    u64 is dropped, and offsets beyond the WAL's current length (stale
    after an unsynced sidecar write or a torn tail) are ignored."""
    sidecar = os.path.join(path, WAL_NAME + BATCH_INDEX_SUFFIX)
    try:
        with open(sidecar, "rb") as fh:
            raw = fh.read()
    except OSError:
        return []
    offsets: List[int] = []
    for i in range(0, len(raw) - len(raw) % 8, 8):
        (offset,) = struct.unpack_from(">Q", raw, i)
        if offset <= wal_len:
            offsets.append(offset)
    return sorted(set(offsets))


def render_store(path: str) -> str:
    """Dump one store directory (``wal.log`` + ``snapshot.bin``)."""
    lines: List[str] = [f"store {path}"]
    snap_path = os.path.join(path, SNAPSHOT_NAME)
    if os.path.exists(snap_path):
        with open(snap_path, "rb") as fh:
            blob = fh.read()
        state, epoch = decode_snapshot(blob)
        if state is None:
            lines.append(f"  snapshot: INVALID ({len(blob)} bytes)")
        else:
            lines.append(
                f"  snapshot: epoch={epoch} state={len(state)}B "
                f"crc=ok"
            )
            lines.append(f"    {_preview(state)}")
    else:
        lines.append("  snapshot: none")

    wal_path = os.path.join(path, WAL_NAME)
    if not os.path.exists(wal_path):
        lines.append("  wal: none")
        return "\n".join(lines)
    with open(wal_path, "rb") as fh:
        data = fh.read()
    boundaries = _batch_boundaries(path, len(data))
    if boundaries:
        lines.append(
            f"  wal: {len(data)} bytes, {len(boundaries)} flush batches"
        )
    else:
        lines.append(f"  wal: {len(data)} bytes")
    # Walk record by record (rather than wal.scan) so damaged records
    # are *shown*, not just counted.
    boundary_set = set(boundaries)
    batch_records = 0
    offset, index = 0, 0
    if 0 in boundary_set:
        boundary_set.discard(0)
    while offset < len(data):
        if len(data) - offset < _HEADER.size:
            lines.append(
                f"    [{index}] TORN header ({len(data) - offset}B left)"
            )
            break
        length, crc = _HEADER.unpack_from(data, offset)
        body_start = offset + _HEADER.size
        if length > MAX_RECORD_BYTES or len(data) - body_start < length:
            lines.append(
                f"    [{index}] TORN payload (want {length}B, "
                f"{len(data) - body_start}B left)"
            )
            break
        payload = data[body_start:body_start + length]
        verdict = "ok" if zlib.crc32(payload) == crc else "CRC MISMATCH"
        lines.append(f"    [{index}] {length}B crc={verdict} {_preview(payload)}")
        if verdict != "ok":
            lines.append("    (suffix after corrupt record is never replayed)")
            break
        offset = body_start + length
        index += 1
        batch_records += 1
        if offset in boundary_set:
            lines.append(
                f"    -- flush boundary @{offset}B "
                f"({batch_records} record{'s' if batch_records != 1 else ''})"
            )
            batch_records = 0
    if index == 0 and not data:
        lines.append("    (empty — compacted)")
    return "\n".join(lines)


def find_stores(path: str) -> List[str]:
    """Store directories at or beneath ``path`` (itself first)."""
    if os.path.exists(os.path.join(path, WAL_NAME)) or os.path.exists(
        os.path.join(path, SNAPSHOT_NAME)
    ):
        return [path]
    found: List[str] = []
    for dirpath, dirnames, filenames in os.walk(path):
        dirnames.sort()
        if WAL_NAME in filenames or SNAPSHOT_NAME in filenames:
            found.append(dirpath)
    return found


def render_path(path: str) -> str:
    """Dump every store at or beneath ``path``."""
    stores = find_stores(path)
    if not stores:
        return f"no stores found under {path}"
    return "\n\n".join(render_store(store) for store in stores)
