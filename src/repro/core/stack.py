"""Run-time protocol stack composition.

Figure 1 of the paper: "Protocol layers can be stacked at run-time like
LEGO blocks."  A stack is described by a spec string such as
``"TOTAL:MBRSHIP:FRAG:NAK:COM"`` (top to bottom, the paper's notation
from Section 7), parsed and instantiated when an endpoint joins a
group.  Per-layer parameters can be supplied inline:
``"FRAG(max_size=512):NAK(window=64):COM"``.

The module also implements the two dispatch disciplines discussed in
Section 10: direct procedure calls across layer boundaries (fast, the
production default) and the event-queue model (each boundary crossing
is a queued event) so the overhead of each can be compared.
"""

from __future__ import annotations

import warnings
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple, Type

from repro.core.events import Downcall, Upcall
from repro.core.layer import Layer, LayerContext
from repro.errors import HeaderError, StackError
from repro.obs import ObsOptions, SpanRecorder, StackObserver

# ----------------------------------------------------------------------
# Layer class registry
# ----------------------------------------------------------------------

_LAYER_CLASSES: Dict[str, Type[Layer]] = {}


def register_layer(cls: Type[Layer]) -> Type[Layer]:
    """Class decorator: make ``cls`` available to stack specs by name."""
    name = cls.name
    if name in _LAYER_CLASSES:
        raise StackError(f"layer name {name!r} registered twice")
    _LAYER_CLASSES[name] = cls
    return cls


def layer_class(name: str) -> Type[Layer]:
    """Look up a registered layer class (importing the library lazily)."""
    _ensure_library_loaded()
    try:
        return _LAYER_CLASSES[name]
    except KeyError:
        known = ", ".join(sorted(_LAYER_CLASSES))
        raise StackError(f"unknown layer {name!r}; known layers: {known}") from None


def known_layers() -> List[str]:
    """Names of every registered layer class."""
    _ensure_library_loaded()
    return sorted(_LAYER_CLASSES)


def _ensure_library_loaded() -> None:
    """Import the layer library so its modules self-register."""
    import repro.layers  # noqa: F401  (import for side effect)


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------

LayerSpec = Tuple[str, Dict[str, Any]]


def parse_stack_spec(spec: str) -> List[LayerSpec]:
    """Parse ``"TOTAL:MBRSHIP:FRAG(max_size=512):NAK:COM"``.

    Returns ``[(name, kwargs), ...]`` ordered top to bottom.  Values in
    parentheses are parsed as Python literals (ints, floats, strings,
    booleans).
    """
    layers: List[LayerSpec] = []
    for part in _split_spec(spec):
        part = part.strip()
        if not part:
            raise StackError(f"empty layer in spec {spec!r}")
        if "(" in part:
            if not part.endswith(")"):
                raise StackError(f"unbalanced parentheses in {part!r}")
            name, _, arg_text = part[:-1].partition("(")
            kwargs = _parse_kwargs(arg_text, part)
        else:
            name, kwargs = part, {}
        layers.append((name.strip(), kwargs))
    if not layers:
        raise StackError("stack spec is empty")
    return layers


def _split_spec(spec: str) -> List[str]:
    """Split on ``:`` while respecting parentheses."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in spec:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise StackError(f"unbalanced parentheses in {spec!r}")
        if ch == ":" and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


def _parse_kwargs(arg_text: str, context: str) -> Dict[str, Any]:
    """Parse ``a=1, b='x'`` into a kwargs dict."""
    kwargs: Dict[str, Any] = {}
    arg_text = arg_text.strip()
    if not arg_text:
        return kwargs
    for item in arg_text.split(","):
        key, eq, raw = item.partition("=")
        if not eq:
            raise StackError(f"bad layer argument {item!r} in {context!r}")
        kwargs[key.strip()] = _parse_literal(raw.strip())
    return kwargs


def _parse_literal(raw: str):
    """Parse one literal value: bool, int, float, or (quoted) string."""
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    if len(raw) >= 2 and raw[0] == raw[-1] and raw[0] in "'\"":
        return raw[1:-1]
    return raw


def format_stack_spec(layers: List[LayerSpec]) -> str:
    """Inverse of :func:`parse_stack_spec` (kwargs included)."""
    parts = []
    for name, kwargs in layers:
        if kwargs:
            args = ",".join(f"{k}={v!r}" for k, v in sorted(kwargs.items()))
            parts.append(f"{name}({args})")
        else:
            parts.append(name)
    return ":".join(parts)


# ----------------------------------------------------------------------
# Edges and queued dispatch
# ----------------------------------------------------------------------


class _TopEdge:
    """Sits above the top layer; hands upcalls to the application."""

    def __init__(self, deliver: Callable[[Upcall], None]) -> None:
        self._deliver = deliver

    def up(self, upcall: Upcall) -> None:
        self._deliver(upcall)


class _BottomEdge:
    """Sits below the bottom layer; reaching it is a composition bug."""

    @staticmethod
    def down(downcall: Downcall) -> None:
        raise StackError(
            f"downcall {downcall.type.name} fell off the bottom of the stack; "
            "is a COM (network adapter) layer missing?"
        )


class EventPump:
    """FIFO of pending boundary crossings for the queued-dispatch mode.

    Rather than calling the next layer directly, a boundary crossing
    appends a thunk here; a single scheduler event drains the queue.
    This serializes all work per stack (the paper's event-queue model)
    at the price of one queue operation per boundary.

    With an observer attached, each crossing's queue residency (enqueue
    to execution) feeds the ``stack_queue_residency_seconds`` histogram.
    """

    def __init__(self, scheduler: Any, observer: Optional[StackObserver] = None) -> None:
        self._scheduler = scheduler
        self._queue: Deque[Tuple[Callable[..., None], Any, float]] = deque()
        self._scheduled = False
        self.observer = observer

    def post(self, fn: Callable[..., None], event: Any) -> None:
        """Enqueue one crossing and ensure a drain is scheduled."""
        self._queue.append((fn, event, self._scheduler.now))
        if not self._scheduled:
            self._scheduled = True
            self._scheduler.call_soon(self._drain)

    def _drain(self) -> None:
        self._scheduled = False
        observer = self.observer
        while self._queue:
            fn, event, posted = self._queue.popleft()
            if observer is not None:
                observer.note_queue_wait(self._scheduler.now - posted)
            fn(event)


class _QueuedRef:
    """Stands in for a neighbouring layer, routing calls via the pump."""

    def __init__(self, pump: EventPump, target: Any) -> None:
        self._pump = pump
        self._target = target

    def down(self, downcall: Downcall) -> None:
        self._pump.post(self._target.down, downcall)

    def up(self, upcall: Upcall) -> None:
        self._pump.post(self._target.up, upcall)


# ----------------------------------------------------------------------
# The stack itself
# ----------------------------------------------------------------------


class Stack:
    """A fully wired protocol stack for one (endpoint, group) pair.

    Build one with :meth:`StackConfig.build`.  The application (in
    practice the :class:`~repro.core.group.GroupHandle`) calls
    :meth:`down` and receives upcalls through the ``deliver`` callback
    it supplied.  When an observer is installed, every HCPI boundary
    crossing in every layer reports to it — the layers themselves carry
    no instrumentation code.
    """

    def __init__(
        self,
        layers: List[Layer],
        context: LayerContext,
        deliver: Callable[[Upcall], None],
        dispatch: str = "direct",
        observer: Optional[StackObserver] = None,
    ) -> None:
        if not layers:
            raise StackError("a stack needs at least one layer")
        if dispatch not in ("direct", "queued"):
            raise StackError(f"unknown dispatch mode {dispatch!r}")
        self.layers = layers  # index 0 = top
        self.context = context
        self.dispatch = dispatch
        self.observer = observer
        self._top_edge = _TopEdge(deliver)
        self._bottom_edge = _BottomEdge()
        self._pump = (
            EventPump(context.scheduler, observer) if dispatch == "queued" else None
        )
        self._wire()
        if observer is not None:
            # Exact event counts come from the layers' own counters,
            # reconciled at export time — the observer's hot path never
            # touches the events family (see LayerEventSync).
            sync = observer.event_sync(self.layers)
            if sync is not None and context.metrics is not None:
                context.metrics.add_collector(sync)
        self.started = False
        #: Messages dropped whole because a lazily-decoded header turned
        #: out to be corrupt mid-traversal (see deliver_from_network).
        self.undecodable_messages = 0

    def _wire(self) -> None:
        """Connect ``above``/``below`` references, possibly via the pump."""
        for i, layer in enumerate(self.layers):
            layer.observer = self.observer
            above = self._top_edge if i == 0 else self.layers[i - 1]
            below = (
                self._bottom_edge if i == len(self.layers) - 1 else self.layers[i + 1]
            )
            if self._pump is not None:
                if above is not self._top_edge:
                    above = _QueuedRef(self._pump, above)
                if below is not self._bottom_edge:
                    below = _QueuedRef(self._pump, below)
            layer.above = above  # type: ignore[assignment]
            layer.below = below  # type: ignore[assignment]

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Start layers bottom-up so lower services exist first."""
        if self.started:
            return
        self.started = True
        for layer in reversed(self.layers):
            layer.start()

    def stop(self) -> None:
        """Stop layers top-down; idempotent."""
        for layer in self.layers:
            layer.stop()

    # -- application edge --------------------------------------------------

    def down(self, downcall: Downcall) -> None:
        """Inject a downcall at the top of the stack."""
        self.layers[0].down(downcall)

    def deliver_from_network(self, upcall: Upcall) -> None:
        """Inject an upcall at the bottom (used only by the COM layer).

        Lazily-unmarshalled messages decode each header when its layer
        pops it, so a corrupt header that eager decode would have
        rejected at the demux can surface *here*, mid-traversal (the
        realtime substrate injects garbling sender-side, with no flag
        for the receiver to route the packet onto the eager path).  The
        whole message is dropped, matching the eager outcome.
        """
        try:
            self.layers[-1].up(upcall)
        except HeaderError:
            self.undecodable_messages += 1

    # -- introspection (Table 1: focus, dump) ------------------------------

    def focus(self, name: str, topmost: bool = False) -> Layer:
        """Return the unique layer instance with the given name.

        A stack may legitimately contain a layer twice (e.g. two CRYPT
        instances bracketing a gateway); silently returning the first
        hid that.  When the name is ambiguous this raises unless
        ``topmost=True`` explicitly asks for the uppermost instance;
        :meth:`focus_all` returns every match.
        """
        matches = self.focus_all(name)
        if not matches:
            raise StackError(f"no layer named {name!r} in this stack")
        if len(matches) > 1 and not topmost:
            raise StackError(
                f"layer name {name!r} is ambiguous: {len(matches)} instances "
                f"in {self.spec()}; pass topmost=True or use focus_all()"
            )
        return matches[0]

    def focus_all(self, name: str) -> List[Layer]:
        """Every layer instance with the given name, top first."""
        return [layer for layer in self.layers if layer.name == name]

    def has_layer(self, name: str) -> bool:
        """Whether a layer with this name is in the stack."""
        return any(layer.name == name for layer in self.layers)

    def dump(self) -> List[Dict[str, Any]]:
        """Per-layer introspection blobs, top first."""
        return [layer.dump() for layer in self.layers]

    def spec(self) -> str:
        """The spec string this stack corresponds to (names only)."""
        return ":".join(layer.name for layer in self.layers)

    def __repr__(self) -> str:
        return f"<Stack {self.spec()} for {self.context.endpoint}/{self.context.group}>"


class StackConfig:
    """Keyword-only description of one protocol stack to build.

    Collects everything that used to travel as loose positional
    arguments to ``build_stack`` — spec string, dispatch discipline,
    per-layer overrides — plus the observability switches, in one
    reusable value::

        config = StackConfig(spec="TOTAL:MBRSHIP:FRAG:NAK:COM",
                             overrides={"FRAG": {"max_size": 512}},
                             obs=ObsOptions.full())
        stack = config.build(context, deliver)

    ``overrides`` maps layer names to extra constructor kwargs, merged
    over any inline arguments in the spec (programmatic configuration
    wins over the spec string).  ``obs`` overrides the context's
    world-level :class:`~repro.obs.ObsOptions` for this stack only;
    leave it ``None`` to inherit.  One config may build many stacks
    (one per endpoint/group pair); they share the context-provided
    registry and span recorder but each gets its own observer.
    """

    def __init__(
        self,
        *,
        spec: str,
        dispatch: str = "direct",
        overrides: Optional[Dict[str, Dict[str, Any]]] = None,
        obs: Optional[ObsOptions] = None,
    ) -> None:
        if dispatch not in ("direct", "queued"):
            raise StackError(f"unknown dispatch mode {dispatch!r}")
        # Parse eagerly so a bad spec fails where the config is written,
        # not later at some endpoint's join().
        self.spec = spec
        self.parsed = parse_stack_spec(spec)
        self.dispatch = dispatch
        self.overrides = dict(overrides) if overrides else {}
        self.obs = obs

    def build(
        self, context: LayerContext, deliver: Callable[[Upcall], None]
    ) -> Stack:
        """Instantiate, observe, and wire one stack for ``context``."""
        layers: List[Layer] = []
        for name, kwargs in self.parsed:
            cls = layer_class(name)
            merged = dict(kwargs)
            if name in self.overrides:
                merged.update(self.overrides[name])
            layers.append(cls(context, **merged))
        observer = self._make_observer(context)
        return Stack(
            layers, context, deliver, dispatch=self.dispatch, observer=observer
        )

    def _make_observer(self, context: LayerContext) -> Optional[StackObserver]:
        """One observer per stack, or ``None`` when everything is off."""
        options = self.obs if self.obs is not None else context.obs
        if options is None or not (options.layer_metrics or options.spans):
            return None
        recorder: Optional[SpanRecorder] = None
        if options.spans:
            recorder = context.spans
            if recorder is None:
                # A standalone stack (tests, scripts) still gets spans;
                # they are reachable via stack.observer.spans.
                recorder = SpanRecorder(max_spans=options.max_spans)
        return StackObserver(
            context.scheduler,
            metrics=context.metrics if options.layer_metrics else None,
            spans=recorder,
            header_registry=context.registry,
            endpoint=str(context.endpoint),
            group=str(context.group),
            sample=getattr(options, "sample", 1),
            wire_mode=getattr(context, "wire_mode", "aligned"),
        )

    def __repr__(self) -> str:
        return f"<StackConfig {self.spec!r} dispatch={self.dispatch}>"


def build_stack(
    spec: str,
    context: LayerContext,
    deliver: Callable[[Upcall], None],
    dispatch: str = "direct",
    overrides: Optional[Dict[str, Dict[str, Any]]] = None,
) -> Stack:
    """Deprecated positional builder; use :class:`StackConfig` instead.

    Kept as a thin shim over ``StackConfig(...).build(...)`` so existing
    call sites keep working for one release.
    """
    warnings.warn(
        "build_stack() is deprecated; use "
        "StackConfig(spec=..., dispatch=..., overrides=...).build(context, deliver)",
        DeprecationWarning,
        stacklevel=2,
    )
    config = StackConfig(spec=spec, dispatch=dispatch, overrides=overrides)
    return config.build(context, deliver)
