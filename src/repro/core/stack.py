"""Run-time protocol stack composition.

Figure 1 of the paper: "Protocol layers can be stacked at run-time like
LEGO blocks."  A stack is described by a spec string such as
``"TOTAL:MBRSHIP:FRAG:NAK:COM"`` (top to bottom, the paper's notation
from Section 7), parsed and instantiated when an endpoint joins a
group.  Per-layer parameters can be supplied inline:
``"FRAG(max_size=512):NAK(window=64):COM"``.

The module also implements the two dispatch disciplines discussed in
Section 10: direct procedure calls across layer boundaries (fast, the
production default) and the event-queue model (each boundary crossing
is a queued event) so the overhead of each can be compared.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple, Type

from repro.core.events import Downcall, Upcall
from repro.core.layer import Layer, LayerContext
from repro.errors import StackError

# ----------------------------------------------------------------------
# Layer class registry
# ----------------------------------------------------------------------

_LAYER_CLASSES: Dict[str, Type[Layer]] = {}


def register_layer(cls: Type[Layer]) -> Type[Layer]:
    """Class decorator: make ``cls`` available to stack specs by name."""
    name = cls.name
    if name in _LAYER_CLASSES:
        raise StackError(f"layer name {name!r} registered twice")
    _LAYER_CLASSES[name] = cls
    return cls


def layer_class(name: str) -> Type[Layer]:
    """Look up a registered layer class (importing the library lazily)."""
    _ensure_library_loaded()
    try:
        return _LAYER_CLASSES[name]
    except KeyError:
        known = ", ".join(sorted(_LAYER_CLASSES))
        raise StackError(f"unknown layer {name!r}; known layers: {known}") from None


def known_layers() -> List[str]:
    """Names of every registered layer class."""
    _ensure_library_loaded()
    return sorted(_LAYER_CLASSES)


def _ensure_library_loaded() -> None:
    """Import the layer library so its modules self-register."""
    import repro.layers  # noqa: F401  (import for side effect)


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------

LayerSpec = Tuple[str, Dict[str, Any]]


def parse_stack_spec(spec: str) -> List[LayerSpec]:
    """Parse ``"TOTAL:MBRSHIP:FRAG(max_size=512):NAK:COM"``.

    Returns ``[(name, kwargs), ...]`` ordered top to bottom.  Values in
    parentheses are parsed as Python literals (ints, floats, strings,
    booleans).
    """
    layers: List[LayerSpec] = []
    for part in _split_spec(spec):
        part = part.strip()
        if not part:
            raise StackError(f"empty layer in spec {spec!r}")
        if "(" in part:
            if not part.endswith(")"):
                raise StackError(f"unbalanced parentheses in {part!r}")
            name, _, arg_text = part[:-1].partition("(")
            kwargs = _parse_kwargs(arg_text, part)
        else:
            name, kwargs = part, {}
        layers.append((name.strip(), kwargs))
    if not layers:
        raise StackError("stack spec is empty")
    return layers


def _split_spec(spec: str) -> List[str]:
    """Split on ``:`` while respecting parentheses."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in spec:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise StackError(f"unbalanced parentheses in {spec!r}")
        if ch == ":" and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


def _parse_kwargs(arg_text: str, context: str) -> Dict[str, Any]:
    """Parse ``a=1, b='x'`` into a kwargs dict."""
    kwargs: Dict[str, Any] = {}
    arg_text = arg_text.strip()
    if not arg_text:
        return kwargs
    for item in arg_text.split(","):
        key, eq, raw = item.partition("=")
        if not eq:
            raise StackError(f"bad layer argument {item!r} in {context!r}")
        kwargs[key.strip()] = _parse_literal(raw.strip())
    return kwargs


def _parse_literal(raw: str):
    """Parse one literal value: bool, int, float, or (quoted) string."""
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    if len(raw) >= 2 and raw[0] == raw[-1] and raw[0] in "'\"":
        return raw[1:-1]
    return raw


def format_stack_spec(layers: List[LayerSpec]) -> str:
    """Inverse of :func:`parse_stack_spec` (kwargs included)."""
    parts = []
    for name, kwargs in layers:
        if kwargs:
            args = ",".join(f"{k}={v!r}" for k, v in sorted(kwargs.items()))
            parts.append(f"{name}({args})")
        else:
            parts.append(name)
    return ":".join(parts)


# ----------------------------------------------------------------------
# Edges and queued dispatch
# ----------------------------------------------------------------------


class _TopEdge:
    """Sits above the top layer; hands upcalls to the application."""

    def __init__(self, deliver: Callable[[Upcall], None]) -> None:
        self._deliver = deliver

    def up(self, upcall: Upcall) -> None:
        self._deliver(upcall)


class _BottomEdge:
    """Sits below the bottom layer; reaching it is a composition bug."""

    @staticmethod
    def down(downcall: Downcall) -> None:
        raise StackError(
            f"downcall {downcall.type.name} fell off the bottom of the stack; "
            "is a COM (network adapter) layer missing?"
        )


class EventPump:
    """FIFO of pending boundary crossings for the queued-dispatch mode.

    Rather than calling the next layer directly, a boundary crossing
    appends a thunk here; a single scheduler event drains the queue.
    This serializes all work per stack (the paper's event-queue model)
    at the price of one queue operation per boundary.
    """

    def __init__(self, scheduler: Any) -> None:
        self._scheduler = scheduler
        self._queue: Deque[Tuple[Callable[..., None], Any]] = deque()
        self._scheduled = False

    def post(self, fn: Callable[..., None], event: Any) -> None:
        """Enqueue one crossing and ensure a drain is scheduled."""
        self._queue.append((fn, event))
        if not self._scheduled:
            self._scheduled = True
            self._scheduler.call_soon(self._drain)

    def _drain(self) -> None:
        self._scheduled = False
        while self._queue:
            fn, event = self._queue.popleft()
            fn(event)


class _QueuedRef:
    """Stands in for a neighbouring layer, routing calls via the pump."""

    def __init__(self, pump: EventPump, target: Any) -> None:
        self._pump = pump
        self._target = target

    def down(self, downcall: Downcall) -> None:
        self._pump.post(self._target.down, downcall)

    def up(self, upcall: Upcall) -> None:
        self._pump.post(self._target.up, upcall)


# ----------------------------------------------------------------------
# The stack itself
# ----------------------------------------------------------------------


class Stack:
    """A fully wired protocol stack for one (endpoint, group) pair.

    Build one with :func:`build_stack`.  The application (in practice
    the :class:`~repro.core.group.GroupHandle`) calls :meth:`down` and
    receives upcalls through the ``deliver`` callback it supplied.
    """

    def __init__(
        self,
        layers: List[Layer],
        context: LayerContext,
        deliver: Callable[[Upcall], None],
        dispatch: str = "direct",
    ) -> None:
        if not layers:
            raise StackError("a stack needs at least one layer")
        if dispatch not in ("direct", "queued"):
            raise StackError(f"unknown dispatch mode {dispatch!r}")
        self.layers = layers  # index 0 = top
        self.context = context
        self.dispatch = dispatch
        self._top_edge = _TopEdge(deliver)
        self._bottom_edge = _BottomEdge()
        self._pump = EventPump(context.scheduler) if dispatch == "queued" else None
        self._wire()
        self.started = False

    def _wire(self) -> None:
        """Connect ``above``/``below`` references, possibly via the pump."""
        for i, layer in enumerate(self.layers):
            above = self._top_edge if i == 0 else self.layers[i - 1]
            below = (
                self._bottom_edge if i == len(self.layers) - 1 else self.layers[i + 1]
            )
            if self._pump is not None:
                if above is not self._top_edge:
                    above = _QueuedRef(self._pump, above)
                if below is not self._bottom_edge:
                    below = _QueuedRef(self._pump, below)
            layer.above = above  # type: ignore[assignment]
            layer.below = below  # type: ignore[assignment]

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Start layers bottom-up so lower services exist first."""
        if self.started:
            return
        self.started = True
        for layer in reversed(self.layers):
            layer.start()

    def stop(self) -> None:
        """Stop layers top-down; idempotent."""
        for layer in self.layers:
            layer.stop()

    # -- application edge --------------------------------------------------

    def down(self, downcall: Downcall) -> None:
        """Inject a downcall at the top of the stack."""
        self.layers[0].down(downcall)

    def deliver_from_network(self, upcall: Upcall) -> None:
        """Inject an upcall at the bottom (used only by the COM layer)."""
        self.layers[-1].up(upcall)

    # -- introspection (Table 1: focus, dump) ------------------------------

    def focus(self, name: str) -> Layer:
        """Return the (topmost) layer instance with the given name."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise StackError(f"no layer named {name!r} in this stack")

    def has_layer(self, name: str) -> bool:
        """Whether a layer with this name is in the stack."""
        return any(layer.name == name for layer in self.layers)

    def dump(self) -> List[Dict[str, Any]]:
        """Per-layer introspection blobs, top first."""
        return [layer.dump() for layer in self.layers]

    def spec(self) -> str:
        """The spec string this stack corresponds to (names only)."""
        return ":".join(layer.name for layer in self.layers)

    def __repr__(self) -> str:
        return f"<Stack {self.spec()} for {self.context.endpoint}/{self.context.group}>"


def build_stack(
    spec: str,
    context: LayerContext,
    deliver: Callable[[Upcall], None],
    dispatch: str = "direct",
    overrides: Optional[Dict[str, Dict[str, Any]]] = None,
) -> Stack:
    """Instantiate a stack from a spec string.

    ``overrides`` maps layer names to extra constructor kwargs, merged
    over any inline arguments in the spec (programmatic configuration
    wins over the spec string).
    """
    parsed = parse_stack_spec(spec)
    layers: List[Layer] = []
    for name, kwargs in parsed:
        cls = layer_class(name)
        merged = dict(kwargs)
        if overrides and name in overrides:
            merged.update(overrides[name])
        layers.append(cls(context, **merged))
    return Stack(layers, context, deliver, dispatch=dispatch)
