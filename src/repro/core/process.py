"""Simulated processes and the world that contains them.

A :class:`Process` models one OS process on one machine: it owns
endpoints, can crash fail-stop, and (key detail) all of its timers and
queued events die with it — a crashed process never executes another
instruction, which the :class:`GuardedScheduler` enforces.

The :class:`World` bundles the scheduler, network, directory, trace
recorder, and randomness for one simulation run, and is the single
entry point applications and tests use.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from repro.core.endpoint import Endpoint
from repro.core.headers import DEFAULT_REGISTRY, HeaderRegistry, WIRE_MODES
from repro.errors import ConfigurationError, SimulationError
from repro.membership.directory import GroupDirectory
from repro.net.address import EndpointAddress
from repro.net.atm import AtmNetwork
from repro.net.coalesce import Coalescer
from repro.net.faults import FaultModel
from repro.net.lan import LanNetwork
from repro.net.network import Network
from repro.net.udp import UdpNetwork
from repro.obs import MetricsRegistry, ObsOptions, SpanRecorder, write_jsonl
from repro.sim.rand import RandomRouter
from repro.sim.scheduler import EventHandle, Scheduler
from repro.sim.trace import TraceRecorder
from repro.store import MemoryStoreDomain

_NETWORK_KINDS = {
    "lan": LanNetwork,
    "udp": UdpNetwork,
    "atm": AtmNetwork,
    "plain": Network,
}


class GuardedScheduler:
    """A clock facade that silently drops events of a dead process.

    Layers schedule through this object; after the owning process
    crashes, armed timers and queued continuations become no-ops, which
    is exactly fail-stop semantics.  It wraps any
    :class:`~repro.runtime.clock.Clock` — the DES scheduler or the
    realtime engine — and is itself Clock-shaped, so layers cannot tell
    the difference.
    """

    def __init__(self, scheduler: Scheduler, process: "Process") -> None:
        self._scheduler = scheduler
        self._process = process

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._scheduler.now

    def _guard(self, fn: Callable[..., Any], args: tuple) -> Callable[[], None]:
        process = self._process

        def run() -> None:
            if process.alive:
                fn(*args)

        return run

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Guarded :meth:`Scheduler.call_at`."""
        return self._scheduler.call_at(when, self._guard(fn, args))

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Guarded :meth:`Scheduler.call_after`."""
        return self._scheduler.call_after(delay, self._guard(fn, args))

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Guarded :meth:`Scheduler.call_soon`."""
        return self._scheduler.call_soon(self._guard(fn, args))


class Process:
    """A simulated process: endpoints plus fail-stop crash semantics.

    Each process has its own wall clock with configurable drift and
    offset (real machines' clocks disagree — the reason Figure 1 lists
    clock synchronization as a protocol type).  Protocol timers use the
    scheduler's virtual time; applications read :meth:`local_time`.
    """

    def __init__(
        self,
        world: "World",
        name: str,
        clock_drift: float = 0.0,
        clock_offset: float = 0.0,
    ) -> None:
        self.world = world
        self.name = name
        self.alive = True
        #: Relative clock rate error (0.001 = running 0.1% fast).
        self.clock_drift = clock_drift
        #: Fixed clock error in seconds at simulation start.
        self.clock_offset = clock_offset
        self.guarded_scheduler = GuardedScheduler(world.scheduler, self)
        self._endpoints: List[Endpoint] = []
        self._next_port = 0

    def local_time(self) -> float:
        """This process's wall-clock reading (drifted and offset)."""
        return self.world.scheduler.now * (1.0 + self.clock_drift) + self.clock_offset

    def endpoint(self) -> Endpoint:
        """Create a new endpoint on this process (ports auto-assigned)."""
        if not self.alive:
            raise SimulationError(f"process {self.name} has crashed")
        address = EndpointAddress(node=self.name, port=self._next_port)
        self._next_port += 1
        endpoint = Endpoint(self, address)
        self._endpoints.append(endpoint)
        return endpoint

    @property
    def endpoints(self) -> List[Endpoint]:
        """All endpoints created on this process."""
        return list(self._endpoints)

    def crash(self) -> None:
        """Deprecated: use ``world.crash(name)`` (the FaultPlane API)."""
        warnings.warn(
            "Process.crash is deprecated; use World.crash(name) / "
            "RealtimeWorld.crash(name) (the repro.chaos.FaultPlane API)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.world.crash(self.name)

    def _fail_stop(self) -> None:
        """Fail-stop: no more sends, receives, timers, or events.

        The rest of the system only finds out through silence — this is
        what the failure detectors and the flush protocol exist for.
        Called by the world's FaultPlane ``crash`` op; idempotent.
        """
        if not self.alive:
            return
        self.alive = False
        self.world.network.crash(self.name)
        for endpoint in self._endpoints:
            for stack in endpoint._stacks.values():
                stack.stop()
        self.world.trace.record(
            self.world.scheduler.now, "crash", self.name
        )

    def _restart(self) -> None:
        """Recover from a crash with a blank slate (FaultPlane ``recover``).

        Everything the process held before the crash is gone for good:
        old endpoints are destroyed, detached from the network, and
        scrubbed from the directory, so nothing can silently resume.
        The recovered process must create fresh endpoints and re-join
        its groups through the ordinary MBRSHIP join/merge path —
        exactly what a rebooted machine would do.  Idempotent.
        """
        if self.alive:
            return
        network = self.world.network
        directory = getattr(self.world, "directory", None)
        for endpoint in self._endpoints:
            if endpoint.destroyed:
                continue
            endpoint.destroyed = True
            if network.attached(endpoint.address):
                network.detach(endpoint.address)
            if directory is not None:
                for group_addr in endpoint._groups:
                    directory.unregister(group_addr, endpoint.address)
        self.alive = True
        network.recover(self.name)
        self.world.trace.record(
            self.world.scheduler.now, "recover", self.name
        )

    def __repr__(self) -> str:
        state = "up" if self.alive else "crashed"
        return f"<Process {self.name} ({state}) endpoints={len(self._endpoints)}>"


class World:
    """One simulation universe: scheduler + network + directory + processes.

    >>> world = World(seed=7, network="lan")
    >>> a = world.process("a").endpoint()
    >>> b = world.process("b").endpoint()
    >>> ga = a.join("demo")
    >>> gb = b.join("demo")
    >>> world.run(2.0)
    >>> ga.cast(b"hello")
    >>> world.run(1.0)
    """

    def __init__(
        self,
        seed: int = 0,
        network: Union[str, Network] = "lan",
        wire_mode: str = "aligned",
        trace: bool = True,
        registry: Optional[HeaderRegistry] = None,
        obs: Optional[ObsOptions] = None,
        metrics: Optional[MetricsRegistry] = None,
        store: Optional[Any] = None,
        coalesce: Union[bool, Dict[str, Any]] = False,
        **network_kwargs: Any,
    ) -> None:
        self.scheduler = Scheduler()
        self.rng = RandomRouter(seed)
        self.trace = TraceRecorder(enabled=trace)
        self.directory = GroupDirectory()
        self.registry = registry or DEFAULT_REGISTRY
        #: The world's shared metrics registry: network counters always,
        #: per-layer seam counters when ``obs`` enables them.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.obs = obs if obs is not None else ObsOptions()
        #: Message-path spans (populated only when ``obs.spans`` is on).
        self.spans = SpanRecorder(
            enabled=self.obs.spans, max_spans=self.obs.max_spans
        )
        #: Durable-store domain, keyed by node name so state survives
        #: crash/recover (deterministic in-memory journals by default; a
        #: :class:`~repro.store.FileStoreDomain` writes real files).
        self.store = store if store is not None else MemoryStoreDomain(
            metrics=self.metrics
        )
        bind_clock = getattr(self.store, "bind_clock", None)
        if bind_clock is not None:
            # Relaxed durability policies arm their max_delay flush
            # timers on the same deterministic scheduler as every layer.
            bind_clock(self.scheduler)
        if wire_mode not in WIRE_MODES:
            raise ConfigurationError(f"unknown wire mode {wire_mode!r}")
        self.wire_mode = wire_mode
        if isinstance(network, Network):
            if network_kwargs:
                raise ConfigurationError(
                    "network_kwargs only apply when building the network by name"
                )
            self.network = network
            # Adopt the pre-built network's counters into this world's
            # registry so one snapshot covers everything.
            self.network.stats.rebind(self.metrics)
        else:
            try:
                net_cls = _NETWORK_KINDS[network]
            except KeyError:
                known = ", ".join(sorted(_NETWORK_KINDS))
                raise ConfigurationError(
                    f"unknown network kind {network!r}; known kinds: {known}"
                ) from None
            self.network = net_cls(
                self.scheduler,
                rng=self.rng.stream("network"),
                metrics=self.metrics,
                **network_kwargs,
            )
        if coalesce:
            # Batch small datagrams at the COM seam (ISSUE 7).  Off by
            # default so existing seeds reproduce byte-identical runs.
            options = coalesce if isinstance(coalesce, dict) else {}
            self.network = Coalescer(self.network, self.scheduler, **options)
        self._processes: Dict[str, Process] = {}

    # -- process management ----------------------------------------------

    def process(
        self,
        name: str,
        clock_drift: float = 0.0,
        clock_offset: float = 0.0,
    ) -> Process:
        """Create (or fetch) the process called ``name``.

        Clock parameters only apply on creation; fetching an existing
        process ignores them.
        """
        proc = self._processes.get(name)
        if proc is None:
            proc = Process(
                self, name, clock_drift=clock_drift, clock_offset=clock_offset
            )
            self._processes[name] = proc
        return proc

    def processes(self) -> Dict[str, Process]:
        """Snapshot of all processes by name."""
        return dict(self._processes)

    # -- fault plane (the repro.chaos.FaultPlane protocol) -----------------

    def crash(self, name: str) -> None:
        """Crash the named process fail-stop.

        The node's *volatile* store buffers (records buffered by a
        relaxed durability policy, tickets never completed) die with
        it; durable bytes survive for a stateful recovery.
        """
        self.process(name)._fail_stop()
        discard = getattr(self.store, "discard_pending", None)
        if discard is not None:
            discard(name)
        self._note_fault_op("crash")

    def recover(self, name: str, stateful: bool = False) -> Process:
        """Recover a crashed process; blank slate unless ``stateful``.

        The process comes back with no endpoints and no group state —
        it must create fresh endpoints and re-join through the MBRSHIP
        join/merge path, never resume silently.  Returns the process so
        callers can immediately re-join: ``world.recover("b").endpoint()
        .join(...)``.

        ``stateful=False`` models a *replaced* machine: the node's
        durable stores are wiped too.  ``stateful=True`` models a
        *rebooted* machine — the disk survived — so clients can replay
        their WALs before re-joining and catch the delta over XFER.
        """
        proc = self.process(name)
        was_dead = not proc.alive
        if was_dead and not stateful:
            self.store.wipe(name)
        proc._restart()
        if was_dead:
            self._note_fault_op("recover")
        return proc

    def node_alive(self, name: str) -> bool:
        """Whether the named process is currently up (unknown names are)."""
        proc = self._processes.get(name)
        return proc is None or proc.alive

    def partition(self, *components: Iterable[str]) -> None:
        """Split the network into node-name components."""
        self.network.partition(*components)
        self.trace.record(self.scheduler.now, "partition", "world",
                          components=[sorted(c) for c in components])
        self._note_fault_op("partition")

    def heal(self) -> None:
        """Remove all network partitions."""
        self.network.heal()
        self.trace.record(self.scheduler.now, "heal", "world")
        self._note_fault_op("heal")

    def set_faults(self, model: Optional[FaultModel]) -> None:
        """Swap the network's fault model; ``None`` restores a pristine path."""
        self.network.set_faults(model)
        self.trace.record(self.scheduler.now, "set_faults", "world",
                          model=repr(model))
        self._note_fault_op("set_faults")

    def _note_fault_op(self, op: str) -> None:
        """Count one fault-plane operation into the world's registry."""
        self.metrics.counter(
            "chaos_ops_total",
            "Fault-plane operations applied to this world",
            labels=("op",),
        ).labels(op=op).inc()

    # -- running ------------------------------------------------------------

    def run(self, duration: float) -> int:
        """Advance virtual time by ``duration`` seconds."""
        return self.scheduler.run(until=self.scheduler.now + duration)

    def run_until(self, deadline: float) -> int:
        """Advance virtual time up to the absolute ``deadline``."""
        return self.scheduler.run(until=deadline)

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Run until no events remain (periodic timers never let this end;
        prefer :meth:`run` for stacks with heartbeats)."""
        return self.scheduler.run_until_idle(max_events=max_events)

    def run_while(
        self,
        predicate: Callable[[], bool],
        timeout: float = 60.0,
        poll: float = 0.05,
    ) -> bool:
        """Advance virtual time in ``poll`` slices until ``predicate()``
        holds or ``timeout`` virtual seconds pass; returns its final value.

        The realtime world offers the same method over wall-clock time,
        so substrate-agnostic drivers (tests, benchmarks) can settle a
        protocol on either engine with identical code.
        """
        deadline = self.now + timeout
        while not predicate():
            if self.now >= deadline:
                return bool(predicate())
            self.run(min(poll, deadline - self.now))
        return True

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.scheduler.now

    # -- observability -----------------------------------------------------

    def write_metrics(self, path: str, meta: Optional[Dict[str, Any]] = None) -> None:
        """Write this world's observability snapshot as JSONL to ``path``.

        On the DES the snapshot is a pure function of the seed and the
        workload — two same-seed runs produce byte-identical files.
        """
        merged: Dict[str, Any] = {"substrate": "des", "now": self.now}
        if meta:
            merged.update(meta)
        write_jsonl(path, self.metrics, self.spans, meta=merged)

    def __repr__(self) -> str:
        return (
            f"<World t={self.now:.3f} processes={len(self._processes)} "
            f"network={type(self.network).__name__}>"
        )
