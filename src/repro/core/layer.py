"""The protocol-layer abstract data type.

This is the paper's central abstraction: "a protocol as an abstract
data type: a software module with standardized top and bottom
interfaces" (Section 1).  Every layer receives :class:`Downcall` events
from above via :meth:`Layer.down` and :class:`Upcall` events from below
via :meth:`Layer.up`; the default implementation of each is a pure
pass-through, so a layer only writes code for the events it transforms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Callable, Dict, List, Optional

from repro.core.events import Downcall, Upcall
from repro.core.headers import DEFAULT_REGISTRY, HeaderRegistry
from repro.errors import StackError
from repro.net.address import EndpointAddress, GroupAddress
from repro.net.network import Network
from repro.obs import MetricsRegistry, ObsOptions, SpanRecorder
from repro.runtime.clock import PeriodicTimer, Timer
from repro.sim.trace import TraceRecorder


@dataclass
class LayerContext:
    """Everything a layer instance may need from its environment.

    One context is shared by all layers of one (endpoint, group) stack.
    Layers must reach the outside world only through the context; that
    is what keeps them composable and testable in isolation.
    """

    #: A :class:`repro.runtime.clock.Clock` (usually behind a
    #: process-guarded proxy): virtual time on the DES, wall-clock time
    #: on the realtime engine.  Layers must not assume which.
    scheduler: Any
    #: Anything satisfying the network attach/unicast/multicast contract
    #: (:class:`repro.net.network.Network` or
    #: :class:`repro.runtime.transport.UdpTransport`).
    network: Network
    endpoint: EndpointAddress
    group: GroupAddress
    rng: random.Random
    trace: TraceRecorder
    registry: HeaderRegistry = dataclass_field(default_factory=lambda: DEFAULT_REGISTRY)
    wire_mode: str = "aligned"
    directory: Any = None  # membership.GroupDirectory, if the world has one
    process: Any = None  # owning Process, for liveness checks
    #: Cross-layer blackboard for one stack (e.g. KEYDIST publishes the
    #: group key source here for a CRYPT layer lower in the stack).
    shared: Dict[str, Any] = dataclass_field(default_factory=dict)
    #: The world's shared metrics registry (``None`` for bare contexts;
    #: network counters and the per-layer seam both feed it).
    metrics: Optional[MetricsRegistry] = None
    #: The world's message-path span recorder, if it keeps one.
    spans: Optional[SpanRecorder] = None
    #: The world's durable-store domain
    #: (:class:`~repro.store.store.MemoryStoreDomain` on the DES,
    #: :class:`~repro.store.store.FileStoreDomain` on the realtime
    #: substrate; ``None`` for bare contexts).  Layers obtain their own
    #: store with ``context.store.store(node, namespace)``.
    store: Any = None
    #: World-level instrumentation defaults; a per-stack
    #: :class:`~repro.core.stack.StackConfig` can override them.
    obs: ObsOptions = dataclass_field(default_factory=ObsOptions)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.scheduler.now


class Layer:
    """Base class for all protocol layers.

    Subclasses override :meth:`handle_down` and/or :meth:`handle_up` for
    the events they care about and call :meth:`pass_down` /
    :meth:`pass_up` to forward everything else.  The framework wires
    ``above`` and ``below`` when the stack is composed.

    Class attributes:
        name: the layer's registry name (also its header tag).
    """

    name = "LAYER"

    def __init__(self, context: LayerContext, **config: Any) -> None:
        self.context = context
        self.config = config
        self.above: Optional["Layer"] = None
        self.below: Optional["Layer"] = None
        self._timers: List[Any] = []
        self.stopped = False
        #: Event counters, reported by the ``dump`` downcall (Table 1).
        self.counters: Dict[str, int] = {"down": 0, "up": 0}
        #: The stack's :class:`~repro.obs.StackObserver`, installed by
        #: the stack builder when instrumentation is enabled.
        self.observer: Any = None

    # ------------------------------------------------------------------
    # The HCPI edges
    # ------------------------------------------------------------------

    def down(self, downcall: Downcall) -> None:
        """Entry point for downcalls from the layer above."""
        if self.stopped:
            return
        self.counters["down"] += 1
        observer = self.observer
        # ``skipping`` is the sampled-out fast path: mid-traversal
        # crossings of an unsampled message cost this one attribute
        # read.  The traversal root still brackets (its enter() made
        # the sampling decision and returned None; exit(None) closes
        # the skip window).
        if observer is None or observer.skipping:
            self.handle_down(downcall)
            return
        frame = observer.enter(self.name, "down", downcall)
        try:
            self.handle_down(downcall)
        finally:
            observer.exit(frame, downcall)

    def up(self, upcall: Upcall) -> None:
        """Entry point for upcalls from the layer below."""
        if self.stopped:
            return
        self.counters["up"] += 1
        observer = self.observer
        # See down(): skip the bracket while a sampled-out traversal
        # is in flight.
        if observer is None or observer.skipping:
            self.handle_up(upcall)
            return
        frame = observer.enter(self.name, "up", upcall)
        try:
            self.handle_up(upcall)
        finally:
            observer.exit(frame, upcall)

    def handle_down(self, downcall: Downcall) -> None:
        """Override to process downcalls; default is pass-through."""
        self.pass_down(downcall)

    def handle_up(self, upcall: Upcall) -> None:
        """Override to process upcalls; default is pass-through."""
        self.pass_up(upcall)

    def pass_down(self, downcall: Downcall) -> None:
        """Forward a downcall to the layer below."""
        if self.below is None:
            raise StackError(f"layer {self.name} has nothing below it")
        self.below.down(downcall)

    def pass_up(self, upcall: Upcall) -> None:
        """Forward an upcall to the layer above."""
        if self.above is None:
            raise StackError(f"layer {self.name} has nothing above it")
        self.above.up(upcall)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Called once after the stack is fully wired; start timers here."""

    def stop(self) -> None:
        """Shut the layer down; cancels every timer it created."""
        self.stopped = True
        for timer in self._timers:
            if isinstance(timer, Timer):
                timer.cancel()
            else:
                timer.stop()
        self._timers.clear()

    # ------------------------------------------------------------------
    # Conveniences for subclasses
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.context.now

    @property
    def endpoint(self) -> EndpointAddress:
        """This stack's endpoint address."""
        return self.context.endpoint

    @property
    def group(self) -> GroupAddress:
        """This stack's group address."""
        return self.context.group

    def one_shot(self, interval: float, callback: Callable[..., Any], *args: Any) -> Timer:
        """Create a (not yet armed) restartable one-shot timer."""
        timer = Timer(self.context.scheduler, interval, callback, *args)
        self._timers.append(timer)
        return timer

    def periodic(self, period: float, callback: Callable[..., Any], *args: Any) -> PeriodicTimer:
        """Create a (not yet started) periodic timer."""
        timer = PeriodicTimer(self.context.scheduler, period, callback, *args)
        self._timers.append(timer)
        return timer

    def trace(self, category: str, **detail: Any) -> None:
        """Record a trace event attributed to this layer's endpoint."""
        self.context.trace.record(
            self.now, category, str(self.endpoint), layer=self.name, **detail
        )

    def dump(self) -> Dict[str, Any]:
        """Layer introspection for the ``dump`` downcall (Table 1)."""
        return {"name": self.name, "counters": dict(self.counters)}

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} at {self.endpoint}/{self.group}>"
