"""Views and view identifiers.

A *view* is an ordered list of endpoint addresses — the membership a
group believes in at some logical moment (Section 3).  Member order
encodes *age*: survivors keep their relative order across view changes
and new members are appended, so "the oldest surviving member of the
oldest view" (the paper's message-free coordinator election, Section 5)
is simply the first member of the current view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.errors import NotInViewError
from repro.net.address import EndpointAddress, GroupAddress


@dataclass(frozen=True, order=True)
class ViewId:
    """Identifies a view: a logical epoch plus the installing coordinator.

    Epochs increase monotonically along every endpoint's view history;
    when views merge, the merged view's epoch exceeds both inputs'.
    The ordering (epoch first, coordinator as tie-break) is total, which
    the merge logic uses to decide which side of a merge is "older".
    """

    epoch: int
    coordinator: EndpointAddress

    def __str__(self) -> str:
        return f"v{self.epoch}@{self.coordinator}"


@dataclass(frozen=True)
class View:
    """An immutable group view.

    Attributes:
        group: the group this view belongs to.
        view_id: the view's identity.
        members: age-ordered member addresses; ``members[0]`` is the
            coordinator ("oldest surviving member of the oldest view").
    """

    group: GroupAddress
    view_id: ViewId
    members: Tuple[EndpointAddress, ...]

    def __post_init__(self) -> None:
        if len(set(self.members)) != len(self.members):
            raise ValueError(f"duplicate members in view: {self.members}")

    @property
    def coordinator(self) -> EndpointAddress:
        """The member elected coordinator — no messages needed."""
        if not self.members:
            raise NotInViewError(f"view {self.view_id} is empty")
        return self.members[0]

    @property
    def size(self) -> int:
        """Number of members."""
        return len(self.members)

    def rank_of(self, member: EndpointAddress) -> int:
        """Age rank of ``member`` (0 = oldest).  Raises if absent."""
        try:
            return self.members.index(member)
        except ValueError:
            raise NotInViewError(f"{member} not in view {self.view_id}") from None

    def contains(self, member: EndpointAddress) -> bool:
        """Whether ``member`` is in this view."""
        return member in self.members

    def is_coordinator(self, member: EndpointAddress) -> bool:
        """Whether ``member`` would coordinate flushes in this view."""
        return bool(self.members) and self.members[0] == member

    def next_view(
        self,
        survivors: Iterable[EndpointAddress],
        joiners: Iterable[EndpointAddress] = (),
    ) -> "View":
        """Construct the successor view.

        Survivors keep their age order; joiners are appended in sorted
        order (deterministic, so every member computes the same view).
        The new epoch is one past this view's.
        """
        survivor_set = set(survivors)
        kept = [m for m in self.members if m in survivor_set]
        new_members = kept + sorted(set(joiners) - set(kept))
        if not new_members:
            raise NotInViewError("successor view would be empty")
        vid = ViewId(epoch=self.view_id.epoch + 1, coordinator=new_members[0])
        return View(group=self.group, view_id=vid, members=tuple(new_members))

    @classmethod
    def initial(cls, group: GroupAddress, member: EndpointAddress) -> "View":
        """The singleton view a lone joiner installs for itself."""
        return cls(
            group=group,
            view_id=ViewId(epoch=1, coordinator=member),
            members=(member,),
        )

    @classmethod
    def merged(
        cls,
        older: "View",
        younger: "View",
        alive: Optional[Iterable[EndpointAddress]] = None,
    ) -> "View":
        """Merge two views after a partition heals.

        The older view's members come first (preserving their age order)
        so its coordinator keeps coordinating; the younger view's
        members are appended.  ``alive`` optionally restricts the result
        to currently live members.
        """
        members: List[EndpointAddress] = list(older.members)
        members += [m for m in younger.members if m not in older.members]
        if alive is not None:
            alive_set = set(alive)
            members = [m for m in members if m in alive_set]
        epoch = max(older.view_id.epoch, younger.view_id.epoch) + 1
        if not members:
            raise NotInViewError("merged view would be empty")
        vid = ViewId(epoch=epoch, coordinator=members[0])
        return cls(group=older.group, view_id=vid, members=tuple(members))

    def __str__(self) -> str:
        names = ",".join(str(m) for m in self.members)
        return f"{self.group}/{self.view_id}[{names}]"

    def __repr__(self) -> str:
        return f"<View {self}>"
