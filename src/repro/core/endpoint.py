"""Communication endpoints.

Section 3: "The endpoint object models the communicating entity.  An
endpoint has an address, and can send and receive messages ... messages
are not addressed to endpoints, but to groups."  An endpoint owns one
network attachment and a protocol stack per joined group; incoming
packets are demultiplexed to the right stack by the group address the
COM layer placed in the outermost header.

The endpoint sits exactly on the execution-substrate seam: it reaches
time only through the process's Clock-shaped guarded scheduler and the
network only through the attach/unicast/multicast contract, so the same
endpoint (and every stack it builds) runs on the discrete-event
simulation and on the realtime engine + OS-UDP transport unchanged.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Union

from repro.core.events import Downcall, DowncallType, Upcall, UpcallType
from repro.core.group import DeliveredMessage, GroupHandle
from repro.core.layer import LayerContext
from repro.core.stack import Stack, StackConfig
from repro.obs import ObsOptions
from repro.core.view import View
from repro.core.headers import HeaderTableStore
from repro.errors import EndpointError, HeaderError
from repro.net.address import EndpointAddress, GroupAddress
from repro.net.packet import Packet

#: The stack used when the caller does not specify one: virtual
#: synchrony over reliable FIFO multicast — the paper's Section 7
#: example minus the optional TOTAL ordering.
DEFAULT_STACK = "MBRSHIP:FRAG:NAK:COM"


class Endpoint:
    """One communication endpoint of a process.

    Created via :meth:`repro.core.process.Process.endpoint`; do not
    construct directly.
    """

    def __init__(self, process: Any, address: EndpointAddress) -> None:
        self.process = process
        self.address = address
        self.destroyed = False
        self._groups: Dict[GroupAddress, GroupHandle] = {}
        self._stacks: Dict[GroupAddress, Stack] = {}
        #: Packets dropped because they could not be parsed (garbling).
        self.undecodable_packets = 0
        #: Packets for groups this endpoint has not joined.
        self.misrouted_packets = 0
        #: Receiver-side header-table state, one per endpoint so each
        #: receiver's channel tables depend only on the datagrams it saw.
        self._header_tables = HeaderTableStore()
        process.world.network.attach(address, self._on_packet)

    # ------------------------------------------------------------------
    # Joining groups
    # ------------------------------------------------------------------

    def join(
        self,
        group: str,
        stack: Union[str, StackConfig] = DEFAULT_STACK,
        on_message: Optional[Callable[[DeliveredMessage], None]] = None,
        on_view: Optional[Callable[[View], None]] = None,
        on_stable: Optional[Callable[[Dict[Any, Any]], None]] = None,
        on_problem: Optional[Callable[[EndpointAddress], None]] = None,
        on_exit: Optional[Callable[[], None]] = None,
        dispatch: str = "direct",
        overrides: Optional[Dict[str, Dict[str, Any]]] = None,
    ) -> GroupHandle:
        """Join ``group`` through a protocol stack built from ``stack``.

        ``stack`` is either a :class:`~repro.core.stack.StackConfig` or
        a spec string in the paper's top-to-bottom colon notation, e.g.
        ``"TOTAL:MBRSHIP:FRAG:NAK:COM"`` (``dispatch``/``overrides``
        then apply; with a config they must be left at their defaults).
        Returns the group handle (Table 1's ``join`` downcall "join
        group and return handle").
        """
        self._check_alive()
        group_addr = GroupAddress(group)
        if group_addr in self._groups:
            raise EndpointError(f"{self.address} already joined {group}")
        if isinstance(stack, StackConfig):
            if dispatch != "direct" or overrides is not None:
                raise EndpointError(
                    "pass dispatch/overrides inside the StackConfig, "
                    "not alongside it"
                )
            config = stack
        else:
            config = StackConfig(
                spec=stack, dispatch=dispatch, overrides=overrides
            )
        handle = GroupHandle(
            endpoint_address=self.address,
            group=group_addr,
            on_message=on_message,
            on_view=on_view,
            on_stable=on_stable,
            on_problem=on_problem,
            on_exit=on_exit,
        )
        world = self.process.world
        context = LayerContext(
            scheduler=self.process.guarded_scheduler,
            network=world.network,
            endpoint=self.address,
            group=group_addr,
            rng=world.rng.stream(f"stack.{self.address}.{group}"),
            trace=world.trace,
            registry=world.registry,
            wire_mode=world.wire_mode,
            directory=world.directory,
            process=self.process,
            metrics=getattr(world, "metrics", None),
            spans=getattr(world, "spans", None),
            store=getattr(world, "store", None),
            obs=getattr(world, "obs", None) or ObsOptions(),
        )
        built = config.build(context, handle.deliver_upcall)
        handle.attach_stack(built)
        self._groups[group_addr] = handle
        self._stacks[group_addr] = built
        built.start()
        built.down(Downcall(DowncallType.JOIN))
        return handle

    def group(self, group: str) -> GroupHandle:
        """The handle for a previously joined group."""
        try:
            return self._groups[GroupAddress(group)]
        except KeyError:
            raise EndpointError(f"{self.address} has not joined {group}") from None

    def groups(self) -> Dict[GroupAddress, GroupHandle]:
        """Snapshot of all joined groups."""
        return dict(self._groups)

    # ------------------------------------------------------------------
    # Packet demultiplexing
    # ------------------------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        """Network delivery callback: decode, demux by group, hand to stack."""
        if self.destroyed or not self.process.alive:
            return
        world = self.process.world
        try:
            # Clean packets take the lazy zero-copy path: structure is
            # validated here, headers decode as their layers pop them.
            # Known-garbled packets (the DES fault model marks them) go
            # through the eager path so a value-level decode error still
            # surfaces — and drops the packet — right here at the demux,
            # exactly as before laziness existed.
            message = world.registry.unmarshal(
                packet.payload,
                lazy=not packet.garbled,
                tables=self._header_tables,
            )
        except HeaderError:
            # Garbled beyond parsing; without a checksum layer this is
            # all the protection there is (the paper's Section 2 point).
            self.undecodable_packets += 1
            return
        try:
            # On the lazy path this decodes the bottom header; a
            # value-level failure (or a table reference whose install
            # datagram was lost) surfaces here and drops the packet,
            # the same outcome the eager path produces above.
            bottom = message.peek_header()
        except HeaderError:
            self.undecodable_packets += 1
            return
        group_name = None
        if bottom is not None:
            group_name = bottom.get("group")
        if group_name is None:
            self.undecodable_packets += 1
            return
        stack = self._stacks.get(group_name)
        if stack is None:
            self.misrouted_packets += 1
            return
        upcall = Upcall(
            type=UpcallType.CAST,
            message=message,
            source=packet.source,
            extra={"packet": packet},
        )
        stack.deliver_from_network(upcall)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def destroy(self) -> None:
        """Table 1's ``destroy``: leave everything and detach (idempotent)."""
        if self.destroyed:
            return
        self.destroyed = True
        for handle in list(self._groups.values()):
            if not handle.left:
                handle.leave()
        for stack in self._stacks.values():
            stack.stop()
        network = self.process.world.network
        if network.attached(self.address):
            network.detach(self.address)

    def _check_alive(self) -> None:
        if self.destroyed:
            raise EndpointError(f"endpoint {self.address} was destroyed")
        if not self.process.alive:
            raise EndpointError(f"process {self.process.name} has crashed")

    def __repr__(self) -> str:
        return f"<Endpoint {self.address} groups={len(self._groups)}>"
