"""The Horus message object.

Section 3 of the paper: "The message object is a local storage structure
optimized for its purpose.  Its interface includes operations to push
and pop protocol headers, much like a stack. ... A message object can
contain pointers to data located in the address space of the
application ... this permits Horus to pass messages up and down a stack
with no copying of the data."

We reproduce both aspects:

* **Header stack** — layers push a header on the way down and pop their
  own header on the way up.  Headers are tagged with the owning layer's
  name so a layer only ever pops what it pushed.
* **Zero-copy body** — the body is a list of byte segments (an iovec);
  fragmentation and reassembly slice and concatenate segment *lists*,
  never the bytes themselves, until the wire boundary flattens them.
  Segments may be ``memoryview`` slices over a received datagram, so a
  delivered body shares the datagram buffer until someone asks for
  :meth:`Message.body_bytes`.

Received messages may additionally carry **lazy headers**: the wire
unmarshaller pushes placeholder entries that hold a ``(codec, offset,
length)`` window into the datagram instead of a decoded dict, and the
dict is materialized only when the owning layer pops or peeks it (see
:meth:`Message.push_lazy_header`).  Layers never observe the
difference — every accessor materializes on demand.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import MessageError

Header = Dict[str, Any]


class Message:
    """A message travelling through a protocol stack.

    The pushed-header stack grows as the message descends (each layer
    appends) and shrinks as a received message ascends (each layer pops
    its own).  The message that is sent is a different object from the
    message that is delivered (Section 3); :meth:`copy` and the
    marshalling layer enforce that.
    """

    __slots__ = ("_headers", "_segments")

    def __init__(self, body: bytes = b"") -> None:
        self._headers: List[Tuple[str, Header]] = []
        self._segments: List[bytes] = [body] if body else []

    # ------------------------------------------------------------------
    # Header stack
    # ------------------------------------------------------------------

    def push_header(self, layer: str, header: Header) -> None:
        """Push ``header`` owned by ``layer`` onto the header stack."""
        self._headers.append((layer, dict(header)))

    def push_owned_header(self, layer: str, header: Header) -> None:
        """Push a header dict whose ownership transfers to the message.

        Hot-path variant of :meth:`push_header`: no defensive copy, so
        the caller must not keep (or mutate) its reference.  Layers that
        build a fresh literal dict per push use this.
        """
        self._headers.append((layer, header))

    def push_lazy_header(self, layer: str, entry: Any) -> None:
        """Push a deferred header owned by ``layer``.

        ``entry`` is anything with a ``materialize()`` method returning
        the header dict (and raising ``HeaderError`` on corrupt bytes).
        Used by the wire unmarshaller so a received message decodes a
        header only when its owning layer actually pops or peeks it.
        """
        self._headers.append((layer, entry))

    def pop_header(self, layer: str) -> Header:
        """Pop the top header, which must belong to ``layer``.

        Raises :class:`MessageError` on an empty stack or an ownership
        mismatch — both indicate a mis-stacked protocol, the exact bug
        class the common interface exists to prevent.
        """
        if not self._headers:
            raise MessageError(f"layer {layer!r} popped an empty header stack")
        owner, header = self._headers[-1]
        if owner != layer:
            raise MessageError(
                f"layer {layer!r} tried to pop header owned by {owner!r}"
            )
        self._headers.pop()
        if type(header) is not dict:
            header = header.materialize()
        return header

    def peek_header(self, layer: Optional[str] = None) -> Optional[Header]:
        """Return the top header without popping.

        With ``layer`` given, returns ``None`` unless the top header is
        owned by that layer; without it, returns whatever is on top (or
        ``None`` when the stack is empty).
        """
        if not self._headers:
            return None
        owner, header = self._headers[-1]
        if layer is not None and owner != layer:
            return None
        if type(header) is not dict:
            header = header.materialize()
            self._headers[-1] = (owner, header)
        return header

    def top_owner(self) -> Optional[str]:
        """Name of the layer owning the top header, or ``None``."""
        if not self._headers:
            return None
        return self._headers[-1][0]

    @property
    def header_depth(self) -> int:
        """Number of headers currently pushed."""
        return len(self._headers)

    def headers(self) -> List[Tuple[str, Header]]:
        """A snapshot of the header stack, bottom-of-stack first.

        Materializes any lazy entries (marshalling and the integrity
        layers need every header decoded).
        """
        entries = self._headers
        out: List[Tuple[str, Header]] = []
        for i, (owner, h) in enumerate(entries):
            if type(h) is not dict:
                h = h.materialize()
                entries[i] = (owner, h)
            out.append((owner, dict(h)))
        return out

    def iter_headers(self) -> List[Tuple[str, Header]]:
        """The header stack, bottom-first, materialized but NOT copied.

        Hot-path variant of :meth:`headers` for read-only walks (the
        marshaller, canonical-content hashing): callers must not mutate
        the dicts.
        """
        entries = self._headers
        for i, (owner, h) in enumerate(entries):
            if type(h) is not dict:
                entries[i] = (owner, h.materialize())
        return entries

    # ------------------------------------------------------------------
    # Body segments (iovec)
    # ------------------------------------------------------------------

    def add_segment(self, data: bytes) -> None:
        """Append a body segment without copying existing segments.

        Segments are bytes-like: plain ``bytes`` or ``memoryview``
        slices over a received datagram (zero-copy delivery).
        """
        if data:
            self._segments.append(data)

    @property
    def segments(self) -> List[bytes]:
        """The body's segment list (do not mutate)."""
        return self._segments

    @property
    def body_size(self) -> int:
        """Total body size in bytes, without flattening."""
        return sum(len(s) for s in self._segments)

    def body_bytes(self) -> bytes:
        """Flatten the body to one byte string (the only copying point)."""
        segments = self._segments
        if len(segments) == 1:
            seg = segments[0]
            return seg if type(seg) is bytes else bytes(seg)
        return b"".join(segments)

    def slice_body(self, start: int, end: int) -> List[bytes]:
        """Return the segments covering ``[start, end)`` of the body.

        Used by the fragmentation layers: slicing yields (at most two
        partial and many whole) segment references, not a copied blob.
        """
        if start < 0 or end < start:
            raise MessageError(f"bad body slice [{start}, {end})")
        out: List[bytes] = []
        offset = 0
        for seg in self._segments:
            seg_end = offset + len(seg)
            lo = max(start, offset)
            hi = min(end, seg_end)
            if lo < hi:
                if lo == offset and hi == seg_end:
                    out.append(seg)
                else:
                    out.append(seg[lo - offset : hi - offset])
            offset = seg_end
            if offset >= end:
                break
        return out

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------

    def copy(self) -> "Message":
        """Deep-copy headers, share body segments (bytes are immutable).

        Lazy entries are shared, not materialized: each copy decodes its
        own dict on first access (decoding is a pure function of the
        immutable datagram bytes, so sharing the thunk is safe).
        """
        clone = Message()
        clone._headers = [
            (owner, dict(h) if type(h) is dict else h)
            for owner, h in self._headers
        ]
        clone._segments = list(self._segments)
        return clone

    def shallow_copy(self) -> "Message":
        """Copy the stacks, share the header dicts.

        For retransmission buffers: layers never mutate a header dict
        after pushing it (they build a fresh dict per push and only read
        popped ones), so a buffered message needs its own header *list*
        (pushes/pops on one side must not show on the other) but can
        share the dicts themselves.  Re-send paths deep-:meth:`copy`
        the buffered message before pushing new headers onto it.
        """
        clone = Message()
        clone._headers = list(self._headers)
        clone._segments = list(self._segments)
        return clone

    def __repr__(self) -> str:
        owners = [owner for owner, _ in self._headers]
        return f"<Message headers={owners} body={self.body_size}B>"
