"""Header codecs and the wire format.

Inside a process, headers are plain dictionaries pushed and popped on the
:class:`~repro.core.message.Message` header stack with no serialization
cost.  Only at the wire boundary (the COM layer) is a message marshalled
to bytes and back.

Section 10 of the paper identifies header handling as an overhead
source: "Layers push their own header onto the message.  For
convenience, this header is aligned to a word boundary.  This leads to
a considerable overhead of unused bits" — and proposes precomputing "a
single header in which the necessary fields are compacted".  We
implement both strategies so the trade-off can be measured:

* ``aligned`` — each header is encoded independently and padded to a
  32-bit boundary (the paper's production scheme).
* ``compact`` — headers are concatenated with no padding.
* :func:`packed_bit_size` — the analytic size of the paper's proposed
  precomputed bit-packed header, for the Section 10 benchmark.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.message import Header, Message
from repro.errors import HeaderError
from repro.net.address import EndpointAddress, GroupAddress

# ----------------------------------------------------------------------
# Bit-level IO (the Section 10 "compacted single header" proposal)
# ----------------------------------------------------------------------


class BitWriter:
    """Accumulates values MSB-first into a byte stream."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, value: int, bits: int) -> None:
        """Append the low ``bits`` bits of ``value``."""
        if value < 0 or (bits < 64 and value >> bits):
            raise HeaderError(f"value {value} does not fit in {bits} bits")
        self._acc = (self._acc << bits) | value
        self._nbits += bits
        while self._nbits >= 8:
            self._nbits -= 8
            self._out.append((self._acc >> self._nbits) & 0xFF)
        self._acc &= (1 << self._nbits) - 1

    def write_bytes(self, data: bytes) -> None:
        """Append raw bytes (bit-aligned, not byte-aligned)."""
        for byte in data:
            self.write(byte, 8)

    def getvalue(self) -> bytes:
        """Finish: pad the tail to a byte boundary and return the stream."""
        if self._nbits:
            pad = 8 - self._nbits
            self.write(0, pad)
        return bytes(self._out)

    @property
    def bit_length(self) -> int:
        """Bits written so far (before final padding)."""
        return len(self._out) * 8 + self._nbits


class BitReader:
    """Reads values MSB-first from a byte stream."""

    def __init__(self, data: bytes, offset_bits: int = 0) -> None:
        self._data = data
        self._pos = offset_bits

    def read(self, bits: int) -> int:
        """Consume and return ``bits`` bits as an unsigned integer."""
        end = self._pos + bits
        if end > len(self._data) * 8:
            raise HeaderError("bit stream exhausted")
        value = 0
        pos = self._pos
        remaining = bits
        while remaining:
            byte = self._data[pos // 8]
            avail = 8 - (pos % 8)
            take = min(avail, remaining)
            shift = avail - take
            chunk = (byte >> shift) & ((1 << take) - 1)
            value = (value << take) | chunk
            pos += take
            remaining -= take
        self._pos = pos
        return value

    def read_bytes(self, count: int) -> bytes:
        """Consume ``count`` bytes (bit-aligned)."""
        return bytes(self.read(8) for _ in range(count))

    @property
    def position_bits(self) -> int:
        """Current read position in bits."""
        return self._pos


# ----------------------------------------------------------------------
# Field types
# ----------------------------------------------------------------------


class FieldType:
    """Encodes/decodes one header field and knows its ideal bit width."""

    #: Encoded size in bytes when it does not depend on the value
    #: (``None`` for length-prefixed types).  Lets codecs precompute the
    #: fixed part of a header's wire size.
    fixed_byte_size: Optional[int] = None

    def encode(self, value: Any, out: bytearray) -> None:
        raise NotImplementedError

    def decode(self, data: bytes, offset: int) -> Tuple[Any, int]:
        raise NotImplementedError

    def bit_size(self, value: Any) -> int:
        """Minimum bits this value needs in a bit-packed header."""
        raise NotImplementedError

    def byte_size(self, value: Any) -> int:
        """Exact :meth:`encode` output size, without building the bytes.

        The default really encodes; fixed- and length-prefixed types
        override with arithmetic so size queries (the observability
        plane's header accounting) stay off the allocation path.
        """
        out = bytearray()
        self.encode(value, out)
        return len(out)

    # Bit-packed forms; the default round-trips through the byte codec
    # so every field type works in packed mode even before it has a
    # hand-tuned bit layout.
    def encode_bits(self, value: Any, writer: BitWriter) -> None:
        buffer = bytearray()
        self.encode(value, buffer)
        writer.write(len(buffer), 16)
        writer.write_bytes(bytes(buffer))

    def decode_bits(self, reader: BitReader) -> Any:
        length = reader.read(16)
        value, _ = self.decode(reader.read_bytes(length), 0)
        return value


class _UInt(FieldType):
    def __init__(self, fmt: str, bits: int):
        self._fmt = ">" + fmt
        self._bits = bits
        self._size = struct.calcsize(self._fmt)
        self.fixed_byte_size = self._size

    def encode(self, value: Any, out: bytearray) -> None:
        out += struct.pack(self._fmt, int(value))

    def decode(self, data: bytes, offset: int) -> Tuple[int, int]:
        (value,) = struct.unpack_from(self._fmt, data, offset)
        return value, offset + self._size

    def bit_size(self, value: Any) -> int:
        return self._bits

    def byte_size(self, value: Any) -> int:
        return self._size

    def encode_bits(self, value: Any, writer: BitWriter) -> None:
        writer.write(int(value), self._bits)

    def decode_bits(self, reader: BitReader) -> int:
        return reader.read(self._bits)


class _Bool(FieldType):
    fixed_byte_size = 1

    def encode(self, value: Any, out: bytearray) -> None:
        out.append(1 if value else 0)

    def decode(self, data: bytes, offset: int) -> Tuple[bool, int]:
        if offset >= len(data):
            raise HeaderError("truncated bool field")
        return bool(data[offset]), offset + 1

    def bit_size(self, value: Any) -> int:
        return 1  # the paper's FRAG example: one bit of real information

    def byte_size(self, value: Any) -> int:
        return 1

    def encode_bits(self, value: Any, writer: BitWriter) -> None:
        writer.write(1 if value else 0, 1)

    def decode_bits(self, reader: BitReader) -> bool:
        return bool(reader.read(1))


class _Float(FieldType):
    fixed_byte_size = 8

    def encode(self, value: Any, out: bytearray) -> None:
        out += struct.pack(">d", float(value))

    def decode(self, data: bytes, offset: int) -> Tuple[float, int]:
        (value,) = struct.unpack_from(">d", data, offset)
        return value, offset + 8

    def bit_size(self, value: Any) -> int:
        return 64

    def byte_size(self, value: Any) -> int:
        return 8

    def encode_bits(self, value: Any, writer: BitWriter) -> None:
        (as_int,) = struct.unpack(">Q", struct.pack(">d", float(value)))
        writer.write(as_int, 64)

    def decode_bits(self, reader: BitReader) -> float:
        (value,) = struct.unpack(">d", struct.pack(">Q", reader.read(64)))
        return value


class _VarBytes(FieldType):
    def encode(self, value: Any, out: bytearray) -> None:
        data = bytes(value)
        out += struct.pack(">I", len(data))
        out += data

    def decode(self, data: bytes, offset: int) -> Tuple[bytes, int]:
        (length,) = struct.unpack_from(">I", data, offset)
        offset += 4
        end = offset + length
        if end > len(data):
            raise HeaderError("truncated bytes field")
        return data[offset:end], end

    def bit_size(self, value: Any) -> int:
        return 32 + 8 * len(bytes(value))

    def byte_size(self, value: Any) -> int:
        return 4 + len(bytes(value))

    def encode_bits(self, value: Any, writer: BitWriter) -> None:
        data = bytes(value)
        writer.write(len(data), 32)
        writer.write_bytes(data)

    def decode_bits(self, reader: BitReader) -> bytes:
        return reader.read_bytes(reader.read(32))


class _Text(FieldType):
    def encode(self, value: Any, out: bytearray) -> None:
        data = str(value).encode("utf-8")
        out += struct.pack(">H", len(data))
        out += data

    def decode(self, data: bytes, offset: int) -> Tuple[str, int]:
        (length,) = struct.unpack_from(">H", data, offset)
        offset += 2
        end = offset + length
        if end > len(data):
            raise HeaderError("truncated text field")
        return data[offset:end].decode("utf-8"), end

    def bit_size(self, value: Any) -> int:
        return 16 + 8 * len(str(value).encode("utf-8"))

    def byte_size(self, value: Any) -> int:
        return 2 + len(str(value).encode("utf-8"))

    def encode_bits(self, value: Any, writer: BitWriter) -> None:
        data = str(value).encode("utf-8")
        writer.write(len(data), 16)
        writer.write_bytes(data)

    def decode_bits(self, reader: BitReader) -> str:
        return reader.read_bytes(reader.read(16)).decode("utf-8")


class _Address(FieldType):
    def encode(self, value: Any, out: bytearray) -> None:
        data = value.marshal()
        out.append(len(data))
        out += data

    def decode(self, data: bytes, offset: int) -> Tuple[EndpointAddress, int]:
        if offset >= len(data):
            raise HeaderError("truncated address field")
        length = data[offset]
        offset += 1
        end = offset + length
        if end > len(data):
            raise HeaderError("truncated address field")
        return EndpointAddress.unmarshal(data[offset:end]), end

    def bit_size(self, value: Any) -> int:
        return 8 + 8 * len(value.marshal())

    def byte_size(self, value: Any) -> int:
        return 1 + len(value.marshal())

    def encode_bits(self, value: Any, writer: BitWriter) -> None:
        data = value.marshal()
        writer.write(len(data), 8)
        writer.write_bytes(data)

    def decode_bits(self, reader: BitReader) -> "EndpointAddress":
        return EndpointAddress.unmarshal(reader.read_bytes(reader.read(8)))


class _Group(FieldType):
    def encode(self, value: Any, out: bytearray) -> None:
        data = value.marshal()
        out.append(len(data))
        out += data

    def decode(self, data: bytes, offset: int) -> Tuple[GroupAddress, int]:
        if offset >= len(data):
            raise HeaderError("truncated group field")
        length = data[offset]
        offset += 1
        end = offset + length
        if end > len(data):
            raise HeaderError("truncated group field")
        return GroupAddress.unmarshal(data[offset:end]), end

    def bit_size(self, value: Any) -> int:
        return 8 + 8 * len(value.marshal())

    def byte_size(self, value: Any) -> int:
        return 1 + len(value.marshal())

    def encode_bits(self, value: Any, writer: BitWriter) -> None:
        data = value.marshal()
        writer.write(len(data), 8)
        writer.write_bytes(data)

    def decode_bits(self, reader: BitReader) -> "GroupAddress":
        return GroupAddress.unmarshal(reader.read_bytes(reader.read(8)))


class ListOf(FieldType):
    """A length-prefixed homogeneous list of another field type."""

    def __init__(self, element: FieldType):
        self.element = element

    def encode(self, value: Any, out: bytearray) -> None:
        items = list(value)
        out += struct.pack(">H", len(items))
        for item in items:
            self.element.encode(item, out)

    def decode(self, data: bytes, offset: int) -> Tuple[List[Any], int]:
        (count,) = struct.unpack_from(">H", data, offset)
        offset += 2
        items: List[Any] = []
        for _ in range(count):
            item, offset = self.element.decode(data, offset)
            items.append(item)
        return items, offset

    def bit_size(self, value: Any) -> int:
        return 16 + sum(self.element.bit_size(item) for item in value)

    def byte_size(self, value: Any) -> int:
        return 2 + sum(self.element.byte_size(item) for item in value)

    def encode_bits(self, value: Any, writer: BitWriter) -> None:
        items = list(value)
        writer.write(len(items), 16)
        for item in items:
            self.element.encode_bits(item, writer)

    def decode_bits(self, reader: BitReader) -> List[Any]:
        count = reader.read(16)
        return [self.element.decode_bits(reader) for _ in range(count)]


class MapOf(FieldType):
    """A length-prefixed map with typed keys and values."""

    def __init__(self, key: FieldType, value: FieldType):
        self.key = key
        self.value = value

    def encode(self, value: Any, out: bytearray) -> None:
        items = sorted(value.items(), key=lambda kv: repr(kv[0]))
        out += struct.pack(">H", len(items))
        for k, v in items:
            self.key.encode(k, out)
            self.value.encode(v, out)

    def decode(self, data: bytes, offset: int) -> Tuple[Dict[Any, Any], int]:
        (count,) = struct.unpack_from(">H", data, offset)
        offset += 2
        result: Dict[Any, Any] = {}
        for _ in range(count):
            k, offset = self.key.decode(data, offset)
            v, offset = self.value.decode(data, offset)
            result[k] = v
        return result, offset

    def bit_size(self, value: Any) -> int:
        return 16 + sum(
            self.key.bit_size(k) + self.value.bit_size(v) for k, v in value.items()
        )

    def byte_size(self, value: Any) -> int:
        return 2 + sum(
            self.key.byte_size(k) + self.value.byte_size(v)
            for k, v in value.items()
        )

    def encode_bits(self, value: Any, writer: BitWriter) -> None:
        items = sorted(value.items(), key=lambda kv: repr(kv[0]))
        writer.write(len(items), 16)
        for k, v in items:
            self.key.encode_bits(k, writer)
            self.value.encode_bits(v, writer)

    def decode_bits(self, reader: BitReader) -> Dict[Any, Any]:
        count = reader.read(16)
        result: Dict[Any, Any] = {}
        for _ in range(count):
            k = self.key.decode_bits(reader)
            result[k] = self.value.decode_bits(reader)
        return result


#: Shared singleton field types, used declaratively by layer modules.
U8 = _UInt("B", 8)
U16 = _UInt("H", 16)
U32 = _UInt("I", 32)
U64 = _UInt("Q", 64)
BOOL = _Bool()
F64 = _Float()
VARBYTES = _VarBytes()
TEXT = _Text()
ADDRESS = _Address()
GROUP = _Group()

FieldSpec = Tuple[str, FieldType]


# ----------------------------------------------------------------------
# Per-layer codec
# ----------------------------------------------------------------------


class HeaderCodec:
    """Declarative codec for one layer's header.

    ``fields`` is an ordered list of ``(name, field_type)`` pairs, with
    optional per-field defaults in ``defaults``.  Encoding a header dict
    writes every declared field (missing ones take their default);
    decoding always yields the full dict.
    """

    def __init__(
        self,
        layer: str,
        fields: Sequence[FieldSpec],
        defaults: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.layer = layer
        self.fields = list(fields)
        self.defaults = dict(defaults or {})
        # Precomputed split for wire_size: fixed-width fields contribute
        # a constant; only length-prefixed ones need the value.
        self._fixed_wire = 0
        self._var_fields: List[FieldSpec] = []
        for name, ftype in self.fields:
            fixed = ftype.fixed_byte_size
            if fixed is not None:
                self._fixed_wire += fixed
            else:
                self._var_fields.append((name, ftype))

    def encode(self, header: Header) -> bytes:
        """Encode ``header`` to exact (unpadded) bytes."""
        out = bytearray()
        for name, ftype in self.fields:
            if name in header:
                value = header[name]
            elif name in self.defaults:
                value = self.defaults[name]
            else:
                raise HeaderError(f"{self.layer}: missing header field {name!r}")
            try:
                ftype.encode(value, out)
            except HeaderError:
                raise
            except Exception as exc:
                raise HeaderError(
                    f"{self.layer}: cannot encode field {name!r}={value!r}: {exc}"
                ) from exc
        return bytes(out)

    def decode(self, data: bytes) -> Header:
        """Decode bytes produced by :meth:`encode` back into a dict."""
        header: Header = {}
        offset = 0
        for name, ftype in self.fields:
            try:
                header[name], offset = ftype.decode(data, offset)
            except HeaderError:
                raise
            except Exception as exc:
                raise HeaderError(
                    f"{self.layer}: cannot decode field {name!r}: {exc}"
                ) from exc
        return header

    def bit_size(self, header: Header) -> int:
        """Bits this header would need in a packed single-header layout."""
        total = 0
        for name, ftype in self.fields:
            value = header.get(name, self.defaults.get(name))
            total += ftype.bit_size(value)
        return total

    def wire_size(self, header: Header) -> int:
        """Exact :meth:`encode` output size in bytes, without encoding."""
        total = self._fixed_wire
        for name, ftype in self._var_fields:
            if name in header:
                value = header[name]
            elif name in self.defaults:
                value = self.defaults[name]
            else:
                raise HeaderError(f"{self.layer}: missing header field {name!r}")
            total += ftype.byte_size(value)
        return total

    def encode_bits(self, header: Header, writer: BitWriter) -> None:
        """Append this header's fields to a packed bit stream."""
        for name, ftype in self.fields:
            if name in header:
                value = header[name]
            elif name in self.defaults:
                value = self.defaults[name]
            else:
                raise HeaderError(f"{self.layer}: missing header field {name!r}")
            try:
                ftype.encode_bits(value, writer)
            except HeaderError:
                raise
            except Exception as exc:
                raise HeaderError(
                    f"{self.layer}: cannot bit-encode field {name!r}={value!r}: {exc}"
                ) from exc

    def decode_bits(self, reader: BitReader) -> Header:
        """Read this header's fields from a packed bit stream."""
        header: Header = {}
        for name, ftype in self.fields:
            try:
                header[name] = ftype.decode_bits(reader)
            except HeaderError:
                raise
            except Exception as exc:
                raise HeaderError(
                    f"{self.layer}: cannot bit-decode field {name!r}: {exc}"
                ) from exc
        return header


# ----------------------------------------------------------------------
# Registry and wire format
# ----------------------------------------------------------------------

_MAGIC = 0x4852  # "HR"
_MODE_ALIGNED = 0
_MODE_COMPACT = 1
_MODE_PACKED = 2  # the Section 10 proposal: one bit-compacted header block
_WORD = 4  # paper: headers aligned to a (32-bit) word boundary

_MODE_BYTES = {"aligned": _MODE_ALIGNED, "compact": _MODE_COMPACT,
               "packed": _MODE_PACKED}


class HeaderRegistry:
    """Maps layer names to codecs and numeric wire identifiers.

    Identifiers are assigned at registration time; because every node in
    a simulation shares one Python process (and registration happens at
    import), sender and receiver always agree on the numbering — the
    single system-wide message format the paper calls for.
    """

    def __init__(self) -> None:
        self._by_name: Dict[str, Tuple[int, HeaderCodec]] = {}
        self._by_id: Dict[int, HeaderCodec] = {}

    def register(self, codec: HeaderCodec) -> HeaderCodec:
        """Register ``codec``; re-registering the same layer name is an error."""
        if codec.layer in self._by_name:
            raise HeaderError(f"codec for layer {codec.layer!r} already registered")
        layer_id = len(self._by_id) + 1
        if layer_id > 0xFF:
            raise HeaderError("too many registered header codecs")
        self._by_name[codec.layer] = (layer_id, codec)
        self._by_id[layer_id] = codec
        return codec

    def codec_for(self, layer: str) -> HeaderCodec:
        """The codec registered for ``layer`` (raises if absent)."""
        try:
            return self._by_name[layer][1]
        except KeyError:
            raise HeaderError(f"no codec registered for layer {layer!r}") from None

    def has(self, layer: str) -> bool:
        """Whether ``layer`` has a registered codec."""
        return layer in self._by_name

    # -- wire format ----------------------------------------------------

    def marshal(self, message: Message, mode: str = "aligned") -> bytes:
        """Flatten ``message`` (headers + body) to wire bytes.

        Modes: ``aligned`` (per-layer headers padded to word boundaries,
        the 1995 production scheme), ``compact`` (per-layer, unpadded),
        ``packed`` (the Section 10 proposal: one bit-compacted header
        block with no per-header framing — FRAG's boolean really costs
        one bit on the wire).
        """
        try:
            mode_byte = _MODE_BYTES[mode]
        except KeyError:
            raise HeaderError(f"unknown wire mode {mode!r}") from None
        headers = message.headers()
        out = bytearray()
        out += struct.pack(">HBB", _MAGIC, mode_byte, len(headers))
        if mode_byte == _MODE_PACKED:
            writer = BitWriter()
            for owner, header in headers:
                try:
                    layer_id, codec = self._by_name[owner]
                except KeyError:
                    raise HeaderError(
                        f"no codec registered for layer {owner!r}"
                    ) from None
                writer.write(layer_id, 8)
                codec.encode_bits(header, writer)
            blob = writer.getvalue()
            out += struct.pack(">H", len(blob))
            out += blob
        else:
            for owner, header in headers:
                try:
                    layer_id, codec = self._by_name[owner]
                except KeyError:
                    raise HeaderError(
                        f"no codec registered for layer {owner!r}"
                    ) from None
                blob = codec.encode(header)
                out += struct.pack(">BH", layer_id, len(blob))
                out += blob
                if mode_byte == _MODE_ALIGNED:
                    pad = (-(3 + len(blob))) % _WORD
                    out += b"\x00" * pad
        body = message.body_bytes()
        out += struct.pack(">I", len(body))
        out += body
        return bytes(out)

    def unmarshal(self, data: bytes) -> Message:
        """Rebuild a :class:`Message` from wire bytes.

        Raises :class:`HeaderError` on any corruption it can detect;
        corruption confined to the body passes through silently, which
        is exactly why the checksum layer exists.
        """
        try:
            magic, mode_byte, n_headers = struct.unpack_from(">HBB", data, 0)
        except struct.error as exc:
            raise HeaderError(f"short packet: {exc}") from exc
        if magic != _MAGIC:
            raise HeaderError(f"bad magic 0x{magic:04x}")
        if mode_byte not in (_MODE_ALIGNED, _MODE_COMPACT, _MODE_PACKED):
            raise HeaderError(f"bad mode byte {mode_byte}")
        offset = 4
        message = Message()
        if mode_byte == _MODE_PACKED:
            return self._unmarshal_packed(data, offset, n_headers, message)
        try:
            for _ in range(n_headers):
                layer_id, length = struct.unpack_from(">BH", data, offset)
                offset += 3
                blob = data[offset : offset + length]
                if len(blob) != length:
                    raise HeaderError("truncated header")
                offset += length
                if mode_byte == _MODE_ALIGNED:
                    offset += (-(3 + length)) % _WORD
                codec = self._by_id.get(layer_id)
                if codec is None:
                    raise HeaderError(f"unknown header id {layer_id}")
                message.push_header(codec.layer, codec.decode(blob))
            (body_len,) = struct.unpack_from(">I", data, offset)
            offset += 4
            body = data[offset : offset + body_len]
            if len(body) != body_len:
                raise HeaderError("truncated body")
        except HeaderError:
            raise
        except Exception as exc:
            raise HeaderError(f"corrupt packet: {exc}") from exc
        message.add_segment(body)
        return message

    def _unmarshal_packed(
        self, data: bytes, offset: int, n_headers: int, message: Message
    ) -> Message:
        try:
            (blob_len,) = struct.unpack_from(">H", data, offset)
            offset += 2
            blob = data[offset : offset + blob_len]
            if len(blob) != blob_len:
                raise HeaderError("truncated packed header block")
            offset += blob_len
            reader = BitReader(blob)
            for _ in range(n_headers):
                layer_id = reader.read(8)
                codec = self._by_id.get(layer_id)
                if codec is None:
                    raise HeaderError(f"unknown header id {layer_id}")
                message.push_header(codec.layer, codec.decode_bits(reader))
            (body_len,) = struct.unpack_from(">I", data, offset)
            offset += 4
            body = data[offset : offset + body_len]
            if len(body) != body_len:
                raise HeaderError("truncated body")
        except HeaderError:
            raise
        except Exception as exc:
            raise HeaderError(f"corrupt packed packet: {exc}") from exc
        message.add_segment(body)
        return message

    def header_overhead(self, message: Message, mode: str = "aligned") -> int:
        """Wire bytes spent on headers (everything except the body)."""
        return len(self.marshal(message, mode)) - message.body_size - 8


def canonical_content(registry: HeaderRegistry, message: Message) -> bytes:
    """Deterministic byte encoding of a message's headers and body.

    Integrity layers (checksumming, signing) cover everything pushed
    *above* themselves by encoding the current header stack plus the
    body through the registered codecs.  Both sides compute the same
    bytes because codecs are deterministic.
    """
    out = bytearray()
    for owner, header in message.headers():
        out += owner.encode("utf-8")
        out += registry.codec_for(owner).encode(header)
    out += message.body_bytes()
    return bytes(out)


def packed_bit_size(registry: HeaderRegistry, message: Message) -> int:
    """Bits needed by the paper's proposed precomputed single header.

    At stack-build time Horus would compute one compacted layout from
    every layer's field declarations; per message the cost is just the
    sum of the fields' natural bit widths — no per-header tags, lengths,
    or padding.
    """
    total = 0
    for owner, header in message.headers():
        total += registry.codec_for(owner).bit_size(header)
    return total


#: The process-wide default registry; layer modules register here at import.
DEFAULT_REGISTRY = HeaderRegistry()


def register(
    layer: str,
    fields: Sequence[FieldSpec],
    defaults: Optional[Dict[str, Any]] = None,
) -> HeaderCodec:
    """Shorthand: build a codec and register it on the default registry."""
    return DEFAULT_REGISTRY.register(HeaderCodec(layer, fields, defaults))
