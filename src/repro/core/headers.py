"""Header codecs and the wire format.

Inside a process, headers are plain dictionaries pushed and popped on the
:class:`~repro.core.message.Message` header stack with no serialization
cost.  Only at the wire boundary (the COM layer) is a message marshalled
to bytes and back.

Section 10 of the paper identifies header handling as an overhead
source: "Layers push their own header onto the message.  For
convenience, this header is aligned to a word boundary.  This leads to
a considerable overhead of unused bits" — and proposes precomputing "a
single header in which the necessary fields are compacted".  We
implement both strategies so the trade-off can be measured:

* ``aligned`` — each header is encoded independently and padded to a
  32-bit boundary (the paper's production scheme).
* ``compact`` — headers are concatenated with no padding.
* ``packed`` — one bit-compacted header block (the Section 10 proposal
  made executable; :func:`packed_bit_size` is its analytic size).
* ``table`` — HPACK-style header-table compression: a per-channel
  dynamic table indexes repetitive per-flow values (sender and group
  addresses, flow ids) so steady-state messages carry small table
  references and varint/delta-coded integers instead of full fields.

Receive-side cost is bounded by *lazy unmarshalling*: for the framed
modes (everything but ``packed``) :meth:`HeaderRegistry.unmarshal` can
validate the datagram's structure once and push lazy ``(codec, offset,
length)`` windows onto the message, decoding a header only when its
owning layer pops or peeks it and sharing the body as a ``memoryview``
slice instead of a copied ``bytes``.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.message import Header, Message
from repro.errors import HeaderError
from repro.net.address import EndpointAddress, GroupAddress

# ----------------------------------------------------------------------
# Bit-level IO (the Section 10 "compacted single header" proposal)
# ----------------------------------------------------------------------


class BitWriter:
    """Accumulates values MSB-first into a byte stream."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, value: int, bits: int) -> None:
        """Append the low ``bits`` bits of ``value``."""
        if value < 0 or (bits < 64 and value >> bits):
            raise HeaderError(f"value {value} does not fit in {bits} bits")
        self._acc = (self._acc << bits) | value
        self._nbits += bits
        while self._nbits >= 8:
            self._nbits -= 8
            self._out.append((self._acc >> self._nbits) & 0xFF)
        self._acc &= (1 << self._nbits) - 1

    def write_bytes(self, data: bytes) -> None:
        """Append raw bytes (bit-aligned, not byte-aligned)."""
        if self._nbits == 0:
            # Cursor on a byte boundary: one bulk extend instead of a
            # shift-and-mask loop per byte.
            self._out += data
            return
        for byte in data:
            self.write(byte, 8)

    def getvalue(self) -> bytes:
        """Finish: pad the tail to a byte boundary and return the stream."""
        if self._nbits:
            pad = 8 - self._nbits
            self.write(0, pad)
        return bytes(self._out)

    @property
    def bit_length(self) -> int:
        """Bits written so far (before final padding)."""
        return len(self._out) * 8 + self._nbits


class BitReader:
    """Reads values MSB-first from a byte stream."""

    def __init__(self, data: bytes, offset_bits: int = 0) -> None:
        self._data = data
        self._pos = offset_bits

    def read(self, bits: int) -> int:
        """Consume and return ``bits`` bits as an unsigned integer."""
        end = self._pos + bits
        if end > len(self._data) * 8:
            raise HeaderError("bit stream exhausted")
        value = 0
        pos = self._pos
        remaining = bits
        while remaining:
            byte = self._data[pos // 8]
            avail = 8 - (pos % 8)
            take = min(avail, remaining)
            shift = avail - take
            chunk = (byte >> shift) & ((1 << take) - 1)
            value = (value << take) | chunk
            pos += take
            remaining -= take
        self._pos = pos
        return value

    def read_bytes(self, count: int) -> bytes:
        """Consume ``count`` bytes (bit-aligned)."""
        if count <= 0:
            return b""
        if self._pos % 8 == 0:
            # Cursor on a byte boundary: bulk-slice the backing buffer.
            start = self._pos // 8
            end = start + count
            if end > len(self._data):
                raise HeaderError("bit stream exhausted")
            self._pos += count * 8
            return bytes(self._data[start:end])
        return bytes(self.read(8) for _ in range(count))

    @property
    def position_bits(self) -> int:
        """Current read position in bits."""
        return self._pos


# ----------------------------------------------------------------------
# Field types
# ----------------------------------------------------------------------


class FieldType:
    """Encodes/decodes one header field and knows its ideal bit width."""

    #: Encoded size in bytes when it does not depend on the value
    #: (``None`` for length-prefixed types).  Lets codecs precompute the
    #: fixed part of a header's wire size.
    fixed_byte_size: Optional[int] = None

    def encode(self, value: Any, out: bytearray) -> None:
        raise NotImplementedError

    def decode(self, data: bytes, offset: int) -> Tuple[Any, int]:
        raise NotImplementedError

    def bit_size(self, value: Any) -> int:
        """Minimum bits this value needs in a bit-packed header."""
        raise NotImplementedError

    def byte_size(self, value: Any) -> int:
        """Exact :meth:`encode` output size, without building the bytes.

        The default really encodes; fixed- and length-prefixed types
        override with arithmetic so size queries (the observability
        plane's header accounting) stay off the allocation path.
        """
        out = bytearray()
        self.encode(value, out)
        return len(out)

    # Bit-packed forms; the default round-trips through the byte codec
    # so every field type works in packed mode even before it has a
    # hand-tuned bit layout.
    def encode_bits(self, value: Any, writer: BitWriter) -> None:
        buffer = bytearray()
        self.encode(value, buffer)
        writer.write(len(buffer), 16)
        writer.write_bytes(bytes(buffer))

    def decode_bits(self, reader: BitReader) -> Any:
        length = reader.read(16)
        value, _ = self.decode(reader.read_bytes(length), 0)
        return value


class _UInt(FieldType):
    def __init__(self, fmt: str, bits: int):
        self._fmt = ">" + fmt
        self._bits = bits
        self._size = struct.calcsize(self._fmt)
        self.fixed_byte_size = self._size

    def encode(self, value: Any, out: bytearray) -> None:
        out += struct.pack(self._fmt, int(value))

    def decode(self, data: bytes, offset: int) -> Tuple[int, int]:
        (value,) = struct.unpack_from(self._fmt, data, offset)
        return value, offset + self._size

    def bit_size(self, value: Any) -> int:
        return self._bits

    def byte_size(self, value: Any) -> int:
        return self._size

    def encode_bits(self, value: Any, writer: BitWriter) -> None:
        writer.write(int(value), self._bits)

    def decode_bits(self, reader: BitReader) -> int:
        return reader.read(self._bits)


class _Bool(FieldType):
    fixed_byte_size = 1

    def encode(self, value: Any, out: bytearray) -> None:
        out.append(1 if value else 0)

    def decode(self, data: bytes, offset: int) -> Tuple[bool, int]:
        if offset >= len(data):
            raise HeaderError("truncated bool field")
        return bool(data[offset]), offset + 1

    def bit_size(self, value: Any) -> int:
        return 1  # the paper's FRAG example: one bit of real information

    def byte_size(self, value: Any) -> int:
        return 1

    def encode_bits(self, value: Any, writer: BitWriter) -> None:
        writer.write(1 if value else 0, 1)

    def decode_bits(self, reader: BitReader) -> bool:
        return bool(reader.read(1))


class _Float(FieldType):
    fixed_byte_size = 8

    def encode(self, value: Any, out: bytearray) -> None:
        out += struct.pack(">d", float(value))

    def decode(self, data: bytes, offset: int) -> Tuple[float, int]:
        (value,) = struct.unpack_from(">d", data, offset)
        return value, offset + 8

    def bit_size(self, value: Any) -> int:
        return 64

    def byte_size(self, value: Any) -> int:
        return 8

    def encode_bits(self, value: Any, writer: BitWriter) -> None:
        (as_int,) = struct.unpack(">Q", struct.pack(">d", float(value)))
        writer.write(as_int, 64)

    def decode_bits(self, reader: BitReader) -> float:
        (value,) = struct.unpack(">d", struct.pack(">Q", reader.read(64)))
        return value


class _VarBytes(FieldType):
    def encode(self, value: Any, out: bytearray) -> None:
        data = bytes(value)
        out += struct.pack(">I", len(data))
        out += data

    def decode(self, data: bytes, offset: int) -> Tuple[bytes, int]:
        (length,) = struct.unpack_from(">I", data, offset)
        offset += 4
        end = offset + length
        if end > len(data):
            raise HeaderError("truncated bytes field")
        return data[offset:end], end

    def bit_size(self, value: Any) -> int:
        return 32 + 8 * len(bytes(value))

    def byte_size(self, value: Any) -> int:
        return 4 + len(bytes(value))

    def encode_bits(self, value: Any, writer: BitWriter) -> None:
        data = bytes(value)
        writer.write(len(data), 32)
        writer.write_bytes(data)

    def decode_bits(self, reader: BitReader) -> bytes:
        return reader.read_bytes(reader.read(32))


class _Text(FieldType):
    def encode(self, value: Any, out: bytearray) -> None:
        data = str(value).encode("utf-8")
        out += struct.pack(">H", len(data))
        out += data

    def decode(self, data: bytes, offset: int) -> Tuple[str, int]:
        (length,) = struct.unpack_from(">H", data, offset)
        offset += 2
        end = offset + length
        if end > len(data):
            raise HeaderError("truncated text field")
        return data[offset:end].decode("utf-8"), end

    def bit_size(self, value: Any) -> int:
        return 16 + 8 * len(str(value).encode("utf-8"))

    def byte_size(self, value: Any) -> int:
        return 2 + len(str(value).encode("utf-8"))

    def encode_bits(self, value: Any, writer: BitWriter) -> None:
        data = str(value).encode("utf-8")
        writer.write(len(data), 16)
        writer.write_bytes(data)

    def decode_bits(self, reader: BitReader) -> str:
        return reader.read_bytes(reader.read(16)).decode("utf-8")


class _Address(FieldType):
    def encode(self, value: Any, out: bytearray) -> None:
        data = value.marshal()
        out.append(len(data))
        out += data

    def decode(self, data: bytes, offset: int) -> Tuple[EndpointAddress, int]:
        if offset >= len(data):
            raise HeaderError("truncated address field")
        length = data[offset]
        offset += 1
        end = offset + length
        if end > len(data):
            raise HeaderError("truncated address field")
        return EndpointAddress.unmarshal(data[offset:end]), end

    def bit_size(self, value: Any) -> int:
        return 8 + 8 * len(value.marshal())

    def byte_size(self, value: Any) -> int:
        return 1 + len(value.marshal())

    def encode_bits(self, value: Any, writer: BitWriter) -> None:
        data = value.marshal()
        writer.write(len(data), 8)
        writer.write_bytes(data)

    def decode_bits(self, reader: BitReader) -> "EndpointAddress":
        return EndpointAddress.unmarshal(reader.read_bytes(reader.read(8)))


class _Group(FieldType):
    def encode(self, value: Any, out: bytearray) -> None:
        data = value.marshal()
        out.append(len(data))
        out += data

    def decode(self, data: bytes, offset: int) -> Tuple[GroupAddress, int]:
        if offset >= len(data):
            raise HeaderError("truncated group field")
        length = data[offset]
        offset += 1
        end = offset + length
        if end > len(data):
            raise HeaderError("truncated group field")
        return GroupAddress.unmarshal(data[offset:end]), end

    def bit_size(self, value: Any) -> int:
        return 8 + 8 * len(value.marshal())

    def byte_size(self, value: Any) -> int:
        return 1 + len(value.marshal())

    def encode_bits(self, value: Any, writer: BitWriter) -> None:
        data = value.marshal()
        writer.write(len(data), 8)
        writer.write_bytes(data)

    def decode_bits(self, reader: BitReader) -> "GroupAddress":
        return GroupAddress.unmarshal(reader.read_bytes(reader.read(8)))


class ListOf(FieldType):
    """A length-prefixed homogeneous list of another field type."""

    def __init__(self, element: FieldType):
        self.element = element

    def encode(self, value: Any, out: bytearray) -> None:
        items = list(value)
        out += struct.pack(">H", len(items))
        for item in items:
            self.element.encode(item, out)

    def decode(self, data: bytes, offset: int) -> Tuple[List[Any], int]:
        (count,) = struct.unpack_from(">H", data, offset)
        offset += 2
        items: List[Any] = []
        for _ in range(count):
            item, offset = self.element.decode(data, offset)
            items.append(item)
        return items, offset

    def bit_size(self, value: Any) -> int:
        return 16 + sum(self.element.bit_size(item) for item in value)

    def byte_size(self, value: Any) -> int:
        return 2 + sum(self.element.byte_size(item) for item in value)

    def encode_bits(self, value: Any, writer: BitWriter) -> None:
        items = list(value)
        writer.write(len(items), 16)
        for item in items:
            self.element.encode_bits(item, writer)

    def decode_bits(self, reader: BitReader) -> List[Any]:
        count = reader.read(16)
        return [self.element.decode_bits(reader) for _ in range(count)]


class MapOf(FieldType):
    """A length-prefixed map with typed keys and values."""

    def __init__(self, key: FieldType, value: FieldType):
        self.key = key
        self.value = value

    def encode(self, value: Any, out: bytearray) -> None:
        items = sorted(value.items(), key=lambda kv: repr(kv[0]))
        out += struct.pack(">H", len(items))
        for k, v in items:
            self.key.encode(k, out)
            self.value.encode(v, out)

    def decode(self, data: bytes, offset: int) -> Tuple[Dict[Any, Any], int]:
        (count,) = struct.unpack_from(">H", data, offset)
        offset += 2
        result: Dict[Any, Any] = {}
        for _ in range(count):
            k, offset = self.key.decode(data, offset)
            v, offset = self.value.decode(data, offset)
            result[k] = v
        return result, offset

    def bit_size(self, value: Any) -> int:
        return 16 + sum(
            self.key.bit_size(k) + self.value.bit_size(v) for k, v in value.items()
        )

    def byte_size(self, value: Any) -> int:
        return 2 + sum(
            self.key.byte_size(k) + self.value.byte_size(v)
            for k, v in value.items()
        )

    def encode_bits(self, value: Any, writer: BitWriter) -> None:
        items = sorted(value.items(), key=lambda kv: repr(kv[0]))
        writer.write(len(items), 16)
        for k, v in items:
            self.key.encode_bits(k, writer)
            self.value.encode_bits(v, writer)

    def decode_bits(self, reader: BitReader) -> Dict[Any, Any]:
        count = reader.read(16)
        result: Dict[Any, Any] = {}
        for _ in range(count):
            k = self.key.decode_bits(reader)
            result[k] = self.value.decode_bits(reader)
        return result


#: Shared singleton field types, used declaratively by layer modules.
U8 = _UInt("B", 8)
U16 = _UInt("H", 16)
U32 = _UInt("I", 32)
U64 = _UInt("Q", 64)
BOOL = _Bool()
F64 = _Float()
VARBYTES = _VarBytes()
TEXT = _Text()
ADDRESS = _Address()
GROUP = _Group()

FieldSpec = Tuple[str, FieldType]


def _bool_to_byte(value: Any) -> int:
    return 1 if value else 0


# ----------------------------------------------------------------------
# Per-layer codec
# ----------------------------------------------------------------------


class HeaderCodec:
    """Declarative codec for one layer's header.

    ``fields`` is an ordered list of ``(name, field_type)`` pairs, with
    optional per-field defaults in ``defaults``.  Encoding a header dict
    writes every declared field (missing ones take their default);
    decoding always yields the full dict.
    """

    def __init__(
        self,
        layer: str,
        fields: Sequence[FieldSpec],
        defaults: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.layer = layer
        self.fields = list(fields)
        self.defaults = dict(defaults or {})
        # Precomputed split for wire_size: fixed-width fields contribute
        # a constant; only length-prefixed ones need the value.
        self._fixed_wire = 0
        self._var_fields: List[FieldSpec] = []
        for name, ftype in self.fields:
            fixed = ftype.fixed_byte_size
            if fixed is not None:
                self._fixed_wire += fixed
            else:
                self._var_fields.append((name, ftype))
        self._plan = self._build_plan()

    def _build_plan(self) -> List[Tuple[Any, ...]]:
        """Compile the field list into an encode/decode plan.

        Consecutive fixed-width fields (unsigned ints, bools, floats)
        collapse into one precompiled :class:`struct.Struct` so a run is
        packed and unpacked in a single C call; everything else stays a
        per-field step.  Wire bytes are identical to the per-field path.
        """
        plan: List[Tuple[Any, ...]] = []
        run: List[Tuple[str, Optional[Callable], Optional[Callable]]] = []
        run_fmt = ""

        def flush_run() -> None:
            nonlocal run, run_fmt
            if not run:
                return
            packer = struct.Struct(">" + run_fmt)
            names = tuple(n for n, _, _ in run)
            encs = tuple(e for _, e, _ in run)
            decs = tuple(d for _, _, d in run)
            plan.append(("struct", packer, names, encs, decs))
            run = []
            run_fmt = ""

        for name, ftype in self.fields:
            kind = type(ftype)
            if kind is _UInt:
                run.append((name, int, None))
                run_fmt += ftype._fmt[1]
            elif kind is _Bool:
                run.append((name, _bool_to_byte, bool))
                run_fmt += "B"
            elif kind is _Float:
                run.append((name, float, None))
                run_fmt += "d"
            else:
                flush_run()
                plan.append(("field", name, ftype))
        flush_run()
        return plan

    def _value(self, header: Header, name: str) -> Any:
        if name in header:
            return header[name]
        if name in self.defaults:
            return self.defaults[name]
        raise HeaderError(f"{self.layer}: missing header field {name!r}")

    def encode(self, header: Header) -> bytes:
        """Encode ``header`` to exact (unpadded) bytes."""
        out = bytearray()
        for step in self._plan:
            if step[0] == "struct":
                _, packer, names, encs, _ = step
                try:
                    out += packer.pack(
                        *[enc(self._value(header, name))
                          for name, enc in zip(names, encs)]
                    )
                except HeaderError:
                    raise
                except Exception:
                    # Re-run field-at-a-time to attribute the error.
                    self._encode_run_slow(header, names, out)
            else:
                _, name, ftype = step
                value = self._value(header, name)
                try:
                    ftype.encode(value, out)
                except HeaderError:
                    raise
                except Exception as exc:
                    raise HeaderError(
                        f"{self.layer}: cannot encode field "
                        f"{name!r}={value!r}: {exc}"
                    ) from exc
        return bytes(out)

    def _encode_run_slow(
        self, header: Header, names: Sequence[str], out: bytearray
    ) -> None:
        """Per-field fallback for a failed struct run: precise errors."""
        by_name = dict(self.fields)
        for name in names:
            value = self._value(header, name)
            try:
                by_name[name].encode(value, out)
            except HeaderError:
                raise
            except Exception as exc:
                raise HeaderError(
                    f"{self.layer}: cannot encode field {name!r}={value!r}: {exc}"
                ) from exc

    def decode(self, data: bytes) -> Header:
        """Decode bytes produced by :meth:`encode` back into a dict."""
        header: Header = {}
        offset = 0
        for step in self._plan:
            if step[0] == "struct":
                _, packer, names, _, decs = step
                try:
                    values = packer.unpack_from(data, offset)
                except Exception as exc:
                    raise HeaderError(
                        f"{self.layer}: cannot decode fields {names}: {exc}"
                    ) from exc
                offset += packer.size
                for name, dec, value in zip(names, decs, values):
                    header[name] = dec(value) if dec is not None else value
            else:
                _, name, ftype = step
                try:
                    header[name], offset = ftype.decode(data, offset)
                except HeaderError:
                    raise
                except Exception as exc:
                    raise HeaderError(
                        f"{self.layer}: cannot decode field {name!r}: {exc}"
                    ) from exc
        return header

    def encode_table(self, header: Header, channel: "HeaderChannelEncoder") -> bytes:
        """Encode ``header`` with table compression for ``channel``.

        Each field gets a one-byte tag: blob-like values (addresses,
        groups, text, bytes) intern into the channel table and travel as
        u16 references; unsigned ints travel as varints or zigzag deltas
        against a per-field base entry, whichever is smaller; everything
        else falls back to the literal canonical encoding.

        A header that repeats verbatim on a channel (COM's, every
        message) is replayed from a per-layer cache: same dict, same
        bytes, same table touches — without walking the fields.  A
        header that differs from the cached one only in its unsigned-int
        fields (a sequence number ticking up, every data message) takes
        a *template* path: unchanged fields replay their cached byte
        spans, and only the ints re-encode, inline.
        """
        cached = channel._enc_cache.get(self.layer)
        if cached is not None:
            if cached[0] == header:
                touch = channel.touch
                for idx in cached[2]:
                    touch(idx)
                return cached[1]
            template = cached[3]
            if template is not None:
                blob = self._encode_from_template(header, channel, template)
                if blob is not None:
                    return blob
        channel._touch_log = touches = []
        channel._cacheable = True
        out = bytearray()
        template = []
        layer = self.layer
        defaults = self.defaults
        try:
            for name, ftype in self.fields:
                value = self._value(header, name)
                start = len(out)
                tstart = len(touches)
                try:
                    self._encode_table_field(name, ftype, value, channel, out)
                except HeaderError:
                    raise
                except Exception as exc:
                    raise HeaderError(
                        f"{self.layer}: cannot encode field "
                        f"{name!r}={value!r}: {exc}"
                    ) from exc
                if template is None:
                    continue
                dflt = defaults.get(name, _REQUIRED)
                if type(ftype) is _UInt:
                    base = channel.base_for(layer, name)
                    if base is not None:
                        idx, base_value = base
                        template.append((
                            True, name, dflt, idx, base_value,
                            bytes((_TAG_DELTA,)) + struct.pack(">H", idx),
                        ))
                    elif ftype._bits < 16:
                        template.append((True, name, dflt, None, 0, b""))
                    else:
                        # Install failed (table full); the slow path
                        # retries it every message, so don't template.
                        template = None
                else:
                    template.append((
                        False, name, dflt, value,
                        bytes(out[start:]), tuple(touches[tstart:]),
                    ))
        finally:
            channel._touch_log = None
        blob = bytes(out)
        if channel._cacheable:
            channel._enc_cache[self.layer] = (
                dict(header), blob, tuple(touches),
                tuple(template) if template is not None else None,
            )
        return blob

    def _encode_from_template(
        self, header: Header, channel: "HeaderChannelEncoder", template
    ) -> Optional[bytes]:
        """Re-encode against a cached field template; None means bail.

        Unsigned-int fields re-encode inline (the delta-vs-varint choice
        and the table touches are byte-identical to the slow path);
        every other field must equal its cached value and replays its
        recorded span and touches.  Any surprise — a changed address, a
        missing field, a non-int — falls back to the full walk, which
        re-caches.
        """
        out = bytearray()
        touch = channel.touch
        get = header.get
        append = out.append
        for seg in template:
            if seg[0]:
                _, name, dflt, idx, base_value, delta_prefix = seg
                number = get(name, dflt)
                if type(number) is not int or number < 0:
                    return None
                if number < 0x200000:
                    # Varint ≤ 3 bytes; a delta (tag + u16 index + varint,
                    # ≥ 4 bytes) can never win, so skip the base entirely.
                    append(_TAG_VARINT)
                    if number < 0x80:
                        append(number)
                    elif number < 0x4000:
                        append((number & 0x7F) | 0x80)
                        append(number >> 7)
                    else:
                        append((number & 0x7F) | 0x80)
                        append(((number >> 7) & 0x7F) | 0x80)
                        append(number >> 14)
                    continue
                if idx is not None:
                    delta = number - base_value
                    zz = (delta << 1) if delta >= 0 else ((-delta << 1) - 1)
                    if 3 + _uvarint_len(zz) < 1 + _uvarint_len(number):
                        touch(idx)
                        out += delta_prefix
                        _write_uvarint(out, zz)
                        continue
                append(_TAG_VARINT)
                _write_uvarint(out, number)
            else:
                _, name, dflt, value, span, idxs = seg
                if get(name, dflt) != value:
                    return None
                out += span
                for idx in idxs:
                    touch(idx)
        return bytes(out)

    def _encode_table_field(
        self,
        name: str,
        ftype: FieldType,
        value: Any,
        channel: "HeaderChannelEncoder",
        out: bytearray,
    ) -> None:
        kind = type(ftype)
        if kind is _UInt:
            number = int(value)
            if number < 0:
                raise HeaderError(
                    f"{self.layer}: negative value for unsigned field {name!r}"
                )
            base = channel.base_for(self.layer, name)
            if base is None and ftype._bits >= 16:
                # First sighting: install the canonical encoding as the
                # delta base for this (layer, field).
                raw = bytearray()
                ftype.encode(number, raw)
                idx = channel.intern(bytes(raw))
                if idx is not None:
                    channel.set_base(self.layer, name, idx, number)
            elif base is not None:
                idx, base_value = base
                zz = _zigzag(number - base_value)
                if 3 + _uvarint_len(zz) < 1 + _uvarint_len(number):
                    channel.touch(idx)
                    out.append(_TAG_DELTA)
                    out += struct.pack(">H", idx)
                    _write_uvarint(out, zz)
                    return
            out.append(_TAG_VARINT)
            _write_uvarint(out, number)
            return
        if kind in (_Address, _Group, _Text, _VarBytes):
            raw = bytearray()
            ftype.encode(value, raw)
            raw = bytes(raw)
            idx = channel.intern(raw) if len(raw) > 3 else None
            if idx is not None:
                out.append(_TAG_REF)
                out += struct.pack(">H", idx)
                return
        out.append(_TAG_LITERAL)
        ftype.encode(value, out)

    def decode_table(self, data: bytes, table: "_ChannelTable") -> Header:
        """Decode bytes produced by :meth:`encode_table`."""
        header: Header = {}
        offset = 0
        size = len(data)
        for name, ftype in self.fields:
            try:
                if offset >= size:
                    raise HeaderError("truncated table-coded header")
                tag = data[offset]
                offset += 1
                if tag == _TAG_LITERAL:
                    header[name], offset = ftype.decode(data, offset)
                elif tag == _TAG_VARINT:
                    header[name], offset = _read_uvarint(data, offset)
                elif tag == _TAG_REF:
                    (idx,) = struct.unpack_from(">H", data, offset)
                    offset += 2
                    header[name] = table.value(idx, ftype)
                elif tag == _TAG_DELTA:
                    (idx,) = struct.unpack_from(">H", data, offset)
                    offset += 2
                    zz, offset = _read_uvarint(data, offset)
                    header[name] = table.value(idx, ftype) + _unzigzag(zz)
                else:
                    raise HeaderError(f"bad field tag {tag}")
            except HeaderError:
                raise
            except Exception as exc:
                raise HeaderError(
                    f"{self.layer}: cannot decode field {name!r}: {exc}"
                ) from exc
        return header

    def bit_size(self, header: Header) -> int:
        """Bits this header would need in a packed single-header layout."""
        total = 0
        for name, ftype in self.fields:
            value = header.get(name, self.defaults.get(name))
            total += ftype.bit_size(value)
        return total

    def wire_size(self, header: Header) -> int:
        """Exact :meth:`encode` output size in bytes, without encoding."""
        total = self._fixed_wire
        for name, ftype in self._var_fields:
            if name in header:
                value = header[name]
            elif name in self.defaults:
                value = self.defaults[name]
            else:
                raise HeaderError(f"{self.layer}: missing header field {name!r}")
            total += ftype.byte_size(value)
        return total

    def encode_bits(self, header: Header, writer: BitWriter) -> None:
        """Append this header's fields to a packed bit stream."""
        for name, ftype in self.fields:
            if name in header:
                value = header[name]
            elif name in self.defaults:
                value = self.defaults[name]
            else:
                raise HeaderError(f"{self.layer}: missing header field {name!r}")
            try:
                ftype.encode_bits(value, writer)
            except HeaderError:
                raise
            except Exception as exc:
                raise HeaderError(
                    f"{self.layer}: cannot bit-encode field {name!r}={value!r}: {exc}"
                ) from exc

    def decode_bits(self, reader: BitReader) -> Header:
        """Read this header's fields from a packed bit stream."""
        header: Header = {}
        for name, ftype in self.fields:
            try:
                header[name] = ftype.decode_bits(reader)
            except HeaderError:
                raise
            except Exception as exc:
                raise HeaderError(
                    f"{self.layer}: cannot bit-decode field {name!r}: {exc}"
                ) from exc
        return header


# ----------------------------------------------------------------------
# Header-table compression (the "table" wire mode)
# ----------------------------------------------------------------------
#
# HPACK-style: each sender channel (one per endpoint × group) owns a
# dynamic table mapping small u16 indices to canonically-encoded field
# values.  Installs ride in an eagerly-applied updates section of the
# datagram preamble; steady-state headers then reference values by
# index, and integers travel as varints or zigzag deltas against a
# per-field base entry.  Unknown references raise HeaderError — the
# datagram is rejected whole and the sender's periodic refresh
# re-installs the entry, so loss heals without acks.

_TAG_LITERAL = 0  # canonical field encoding follows
_TAG_REF = 1      # u16 table index
_TAG_VARINT = 2   # unsigned LEB128
_TAG_DELTA = 3    # u16 base index + zigzag LEB128 delta

#: Sentinel default for template fields with no registered default: a
#: missing required field can never equal it, so the template bails to
#: the slow path, which raises the proper error.
_REQUIRED = object()


def _write_uvarint(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_uvarint(data: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    size = len(data)
    while True:
        if offset >= size:
            raise HeaderError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise HeaderError("varint too long")


def _uvarint_len(value: int) -> int:
    length = 1
    while value > 0x7F:
        value >>= 7
        length += 1
    return length


def _zigzag(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value: int) -> int:
    return (value >> 1) if not (value & 1) else -((value + 1) >> 1)


class HeaderChannelEncoder:
    """Sender-side dynamic table for one wire channel.

    A channel is one sender endpoint's stream into one group; the COM
    layer owns the encoder and passes it to
    :meth:`HeaderRegistry.marshal` in ``table`` mode.  ``epoch``
    distinguishes encoder incarnations on the same channel id so a
    receiver discards stale entries after a rejoin.
    """

    __slots__ = ("channel_id", "epoch", "refresh_every", "max_entries",
                 "_by_raw", "_raws", "_uses", "_bases", "_pending",
                 "_enc_cache", "_touch_log", "_cacheable")

    def __init__(
        self,
        channel_id: int,
        epoch: int,
        refresh_every: int = 64,
        max_entries: int = 4096,
    ) -> None:
        self.channel_id = channel_id & 0xFFFFFFFF
        self.epoch = epoch & 0xFFFF
        #: Every entry is re-installed after this many references, so a
        #: receiver that lost the original install datagram recovers.
        self.refresh_every = refresh_every
        self.max_entries = max_entries
        self._by_raw: Dict[bytes, int] = {}
        self._raws: List[bytes] = []
        self._uses: List[int] = []
        #: (layer, field) -> (entry idx, base int value) for delta coding.
        self._bases: Dict[Tuple[str, str], Tuple[int, int]] = {}
        #: Installs/refreshes to emit in the next datagram's preamble.
        self._pending: List[Tuple[int, bytes]] = []
        #: layer -> (header snapshot, encoded bytes, touched entries,
        #: field template): steady-state headers that repeat verbatim
        #: (COM's group/source/kind above all) skip field-by-field
        #: encoding entirely, and headers whose ints tick (sequence
        #: numbers) re-encode only those via the template.  Touched
        #: entries are replayed on a hit so refresh cadence is identical
        #: to an uncached encode.
        self._enc_cache: Dict[str, Tuple[Header, bytes, Tuple[int, ...], Any]] = {}
        self._touch_log: Optional[List[int]] = None
        self._cacheable = False

    def intern(self, raw: bytes) -> Optional[int]:
        """Index for ``raw``, installing it if new; None if table full."""
        idx = self._by_raw.get(raw)
        if idx is None:
            if len(self._raws) >= self.max_entries:
                return None
            idx = len(self._raws)
            self._raws.append(raw)
            self._uses.append(0)
            self._by_raw[raw] = idx
            self._pending.append((idx, raw))
            # A fresh install: the next encode of the same header will
            # reference the table instead, so these bytes must not be
            # replayed from the cache.
            self._cacheable = False
            return idx
        self.touch(idx)
        return idx

    def touch(self, idx: int) -> None:
        """Count one reference; schedules a periodic refresh install."""
        uses = self._uses[idx] + 1
        if uses >= self.refresh_every:
            self._pending.append((idx, self._raws[idx]))
            uses = 0
        self._uses[idx] = uses
        log = self._touch_log
        if log is not None:
            log.append(idx)

    def base_for(self, layer: str, field: str) -> Optional[Tuple[int, int]]:
        return self._bases.get((layer, field))

    def set_base(self, layer: str, field: str, idx: int, value: int) -> None:
        self._bases[(layer, field)] = (idx, value)
        # First sighting of a delta field: later encodes of the same
        # value emit a delta against this base, so don't cache this one.
        self._cacheable = False

    def refresh_all(self) -> None:
        """Re-emit every entry in the next datagram.

        Called when the channel's audience changes (a new member joined
        the destination set): the newcomer missed every earlier install,
        so the next datagram must be self-contained.
        """
        self._pending = list(enumerate(self._raws))
        self._uses = [0] * len(self._uses)

    def take_updates(self) -> List[Tuple[int, bytes]]:
        """Drain the installs to ship with the datagram being built."""
        updates = self._pending
        self._pending = []
        return updates


class _ChannelTable:
    """Receiver-side entries for one channel (one epoch's worth)."""

    __slots__ = ("epoch", "entries", "_decoded", "_rows")

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        self.entries: Dict[int, bytes] = {}
        # Decoded-value cache: repetitive values (addresses above all)
        # are parsed once per install, not once per message.
        self._decoded: Dict[Tuple[int, int], Any] = {}
        # Whole-header row cache: layer -> (encoded bytes, decoded
        # snapshot).  Steady-state headers repeat byte-identically
        # (COM's, every message); a hit costs one bytes compare and a
        # small dict copy instead of a field walk.  Installs clear it
        # (they are rare — first datagrams and periodic refreshes).
        self._rows: Dict[str, Tuple[bytes, Header]] = {}

    def install(self, idx: int, raw: bytes) -> None:
        self.entries[idx] = raw
        # Invalidate any cached decode for this slot.
        for key in [k for k in self._decoded if k[0] == idx]:
            del self._decoded[key]
        self._rows.clear()

    def decode_row(self, codec: "HeaderCodec", blob: bytes) -> Header:
        """Decode one table-coded header via the row cache."""
        entry = self._rows.get(codec.layer)
        if entry is not None and entry[0] == blob:
            return dict(entry[1])
        header = codec.decode_table(blob, self)
        self._rows[codec.layer] = (blob, dict(header))
        return header

    def value(self, idx: int, ftype: FieldType) -> Any:
        key = (idx, id(ftype))
        try:
            return self._decoded[key]
        except KeyError:
            pass
        raw = self.entries.get(idx)
        if raw is None:
            raise HeaderError(
                f"unknown header-table index {idx} (install lost?)"
            )
        value, _ = ftype.decode(raw, 0)
        self._decoded[key] = value
        return value


class HeaderTableStore:
    """Receiver-side table state, one per receiving endpoint.

    Keyed by channel id; an epoch change (sender rejoined, new encoder)
    resets that channel's entries.  Kept per-receiver — never shared
    across simulated nodes — so each receiver's view of a channel
    depends only on the datagrams *it* saw (per-receiver loss fidelity).
    """

    __slots__ = ("_channels",)

    def __init__(self) -> None:
        self._channels: Dict[int, _ChannelTable] = {}

    def channel(self, channel_id: int, epoch: int) -> _ChannelTable:
        table = self._channels.get(channel_id)
        if table is None or table.epoch != epoch:
            table = _ChannelTable(epoch)
            self._channels[channel_id] = table
        return table


def make_channel_encoder(
    source: Any, group: Any, epoch: int, refresh_every: int = 64
) -> HeaderChannelEncoder:
    """Build the sender-side encoder for one (endpoint, group) channel.

    The channel id is a stable 4-byte hash of the marshalled addresses,
    so both sides derive it without negotiation messages.
    """
    import hashlib

    digest = hashlib.blake2b(
        source.marshal() + b"|" + group.marshal(), digest_size=4
    ).digest()
    return HeaderChannelEncoder(
        int.from_bytes(digest, "big"), epoch, refresh_every=refresh_every
    )


class _LazyHeader:
    """A deferred header: a (codec, offset, length) window into a datagram.

    :meth:`Message.pop_header` / ``peek_header`` call
    :meth:`materialize` on first access; decoding is a pure function of
    the immutable datagram bytes, so thunks may be shared by message
    copies.
    """

    __slots__ = ("codec", "data", "offset", "length", "table")

    def __init__(
        self,
        codec: "HeaderCodec",
        data: bytes,
        offset: int,
        length: int,
        table: Optional["_ChannelTable"] = None,
    ) -> None:
        self.codec = codec
        self.data = data
        self.offset = offset
        self.length = length
        self.table = table

    def materialize(self) -> Header:
        blob = bytes(self.data[self.offset : self.offset + self.length])
        if self.table is not None:
            return self.table.decode_row(self.codec, blob)
        return self.codec.decode(blob)


# ----------------------------------------------------------------------
# Registry and wire format
# ----------------------------------------------------------------------

_MAGIC = 0x4852  # "HR"
_MODE_ALIGNED = 0
_MODE_COMPACT = 1
_MODE_PACKED = 2  # the Section 10 proposal: one bit-compacted header block
_MODE_TABLE = 3   # header-table compression (HPACK-style, per channel)
_WORD = 4  # paper: headers aligned to a (32-bit) word boundary

_MODE_BYTES = {"aligned": _MODE_ALIGNED, "compact": _MODE_COMPACT,
               "packed": _MODE_PACKED, "table": _MODE_TABLE}

#: Wire modes every world accepts; validation lives here so the DES and
#: realtime worlds stay in lockstep when a mode is added.
WIRE_MODES = ("aligned", "compact", "packed", "table")

#: Preamble extension for table mode: channel id, epoch, update count.
_TABLE_PREAMBLE = struct.Struct(">IHH")
_TABLE_UPDATE = struct.Struct(">HH")


class HeaderRegistry:
    """Maps layer names to codecs and numeric wire identifiers.

    Identifiers are assigned at registration time; because every node in
    a simulation shares one Python process (and registration happens at
    import), sender and receiver always agree on the numbering — the
    single system-wide message format the paper calls for.
    """

    def __init__(self) -> None:
        self._by_name: Dict[str, Tuple[int, HeaderCodec]] = {}
        self._by_id: Dict[int, HeaderCodec] = {}

    def register(self, codec: HeaderCodec) -> HeaderCodec:
        """Register ``codec``; re-registering the same layer name is an error."""
        if codec.layer in self._by_name:
            raise HeaderError(f"codec for layer {codec.layer!r} already registered")
        layer_id = len(self._by_id) + 1
        if layer_id > 0xFF:
            raise HeaderError("too many registered header codecs")
        self._by_name[codec.layer] = (layer_id, codec)
        self._by_id[layer_id] = codec
        return codec

    def codec_for(self, layer: str) -> HeaderCodec:
        """The codec registered for ``layer`` (raises if absent)."""
        try:
            return self._by_name[layer][1]
        except KeyError:
            raise HeaderError(f"no codec registered for layer {layer!r}") from None

    def has(self, layer: str) -> bool:
        """Whether ``layer`` has a registered codec."""
        return layer in self._by_name

    # -- wire format ----------------------------------------------------

    def marshal(
        self,
        message: Message,
        mode: str = "aligned",
        channel: Optional[HeaderChannelEncoder] = None,
        into: Optional[bytearray] = None,
    ) -> bytes:
        """Flatten ``message`` (headers + body) to wire bytes.

        Modes: ``aligned`` (per-layer headers padded to word boundaries,
        the 1995 production scheme), ``compact`` (per-layer, unpadded),
        ``packed`` (the Section 10 proposal: one bit-compacted header
        block with no per-header framing — FRAG's boolean really costs
        one bit on the wire), ``table`` (header-table compression;
        requires the sender's per-channel ``channel`` encoder).

        ``into`` lets hot send paths reuse one scratch buffer: the
        datagram is built there (the buffer is cleared first) and the
        returned ``bytes`` is a copy of its final contents.
        """
        try:
            mode_byte = _MODE_BYTES[mode]
        except KeyError:
            raise HeaderError(f"unknown wire mode {mode!r}") from None
        headers = message.iter_headers()
        if into is None:
            out = bytearray()
        else:
            out = into
            out.clear()
        out += struct.pack(">HBB", _MAGIC, mode_byte, len(headers))
        if mode_byte == _MODE_PACKED:
            writer = BitWriter()
            for owner, header in headers:
                try:
                    layer_id, codec = self._by_name[owner]
                except KeyError:
                    raise HeaderError(
                        f"no codec registered for layer {owner!r}"
                    ) from None
                writer.write(layer_id, 8)
                codec.encode_bits(header, writer)
            blob = writer.getvalue()
            out += struct.pack(">H", len(blob))
            out += blob
        elif mode_byte == _MODE_TABLE:
            if channel is None:
                raise HeaderError(
                    "table wire mode needs a per-channel encoder "
                    "(HeaderRegistry.marshal(..., channel=...))"
                )
            blobs: List[Tuple[int, bytes]] = []
            for owner, header in headers:
                try:
                    layer_id, codec = self._by_name[owner]
                except KeyError:
                    raise HeaderError(
                        f"no codec registered for layer {owner!r}"
                    ) from None
                blobs.append((layer_id, codec.encode_table(header, channel)))
            # Installs must precede the headers that reference them, so
            # they ride in the preamble and are applied eagerly by the
            # receiver even when header decode itself is lazy.
            updates = channel.take_updates()
            out += _TABLE_PREAMBLE.pack(
                channel.channel_id, channel.epoch, len(updates)
            )
            for idx, raw in updates:
                out += _TABLE_UPDATE.pack(idx, len(raw))
                out += raw
            for layer_id, blob in blobs:
                out += struct.pack(">BH", layer_id, len(blob))
                out += blob
        else:
            for owner, header in headers:
                try:
                    layer_id, codec = self._by_name[owner]
                except KeyError:
                    raise HeaderError(
                        f"no codec registered for layer {owner!r}"
                    ) from None
                blob = codec.encode(header)
                out += struct.pack(">BH", layer_id, len(blob))
                out += blob
                if mode_byte == _MODE_ALIGNED:
                    pad = (-(3 + len(blob))) % _WORD
                    out += b"\x00" * pad
        body = message.body_bytes()
        out += struct.pack(">I", len(body))
        out += body
        return bytes(out)

    def unmarshal(
        self,
        data: bytes,
        lazy: bool = False,
        tables: Optional[HeaderTableStore] = None,
    ) -> Message:
        """Rebuild a :class:`Message` from wire bytes.

        Raises :class:`HeaderError` on any corruption it can detect;
        corruption confined to the body passes through silently, which
        is exactly why the checksum layer exists.

        With ``lazy=True`` (framed modes only — ``packed`` is a single
        sequential bit stream and always decodes eagerly) the datagram's
        structure is validated once, but each header is decoded only
        when its owning layer pops or peeks it, and the body is shared
        as a ``memoryview`` slice.  Lazy and eager decode accept and
        reject exactly the same datagrams; laziness only moves *when* a
        value-level ``HeaderError`` surfaces (at access instead of
        here), which is why receive paths feed known-garbled packets
        through the eager path.

        ``tables`` carries the receiver's per-channel state for ``table``
        mode; without it each datagram gets a throwaway store (only
        self-contained datagrams — ones installing everything they
        reference — decode).
        """
        try:
            magic, mode_byte, n_headers = struct.unpack_from(">HBB", data, 0)
        except struct.error as exc:
            raise HeaderError(f"short packet: {exc}") from exc
        if magic != _MAGIC:
            raise HeaderError(f"bad magic 0x{magic:04x}")
        offset = 4
        message = Message()
        if mode_byte == _MODE_PACKED:
            return self._unmarshal_packed(data, offset, n_headers, message)
        table: Optional[_ChannelTable] = None
        if mode_byte == _MODE_TABLE:
            table, offset = self._apply_table_preamble(data, offset, tables)
        elif mode_byte not in (_MODE_ALIGNED, _MODE_COMPACT):
            raise HeaderError(f"bad mode byte {mode_byte}")
        # Structural scan: frame every header span and the body before
        # decoding anything, so truncation is caught here even when the
        # per-header decode happens lazily later.
        spans: List[Tuple[HeaderCodec, int, int]] = []
        size = len(data)
        aligned = mode_byte == _MODE_ALIGNED
        by_id = self._by_id
        try:
            for _ in range(n_headers):
                layer_id, length = struct.unpack_from(">BH", data, offset)
                offset += 3
                end = offset + length
                if end > size:
                    raise HeaderError("truncated header")
                codec = by_id.get(layer_id)
                if codec is None:
                    raise HeaderError(f"unknown header id {layer_id}")
                spans.append((codec, offset, length))
                offset = end
                if aligned:
                    offset += (-(3 + length)) % _WORD
            (body_len,) = struct.unpack_from(">I", data, offset)
            offset += 4
            if offset + body_len > size:
                raise HeaderError("truncated body")
        except HeaderError:
            raise
        except Exception as exc:
            raise HeaderError(f"corrupt packet: {exc}") from exc
        if lazy:
            push_lazy = message.push_lazy_header
            for codec, start, length in spans:
                push_lazy(codec.layer, _LazyHeader(codec, data, start, length, table))
            if body_len:
                message.add_segment(memoryview(data)[offset : offset + body_len])
        else:
            push = message.push_owned_header
            for codec, start, length in spans:
                blob = bytes(data[start : start + length])
                if table is not None:
                    push(codec.layer, table.decode_row(codec, blob))
                else:
                    push(codec.layer, codec.decode(blob))
            message.add_segment(bytes(data[offset : offset + body_len]))
        return message

    def _apply_table_preamble(
        self,
        data: bytes,
        offset: int,
        tables: Optional[HeaderTableStore],
    ) -> Tuple[_ChannelTable, int]:
        """Parse channel id / epoch / updates; returns the live table."""
        try:
            channel_id, epoch, n_updates = _TABLE_PREAMBLE.unpack_from(
                data, offset
            )
            offset += _TABLE_PREAMBLE.size
            store = tables if tables is not None else HeaderTableStore()
            table = store.channel(channel_id, epoch)
            for _ in range(n_updates):
                idx, length = _TABLE_UPDATE.unpack_from(data, offset)
                offset += _TABLE_UPDATE.size
                end = offset + length
                if end > len(data):
                    raise HeaderError("truncated table update")
                table.install(idx, bytes(data[offset:end]))
                offset = end
        except HeaderError:
            raise
        except Exception as exc:
            raise HeaderError(f"corrupt table preamble: {exc}") from exc
        return table, offset

    def _unmarshal_packed(
        self, data: bytes, offset: int, n_headers: int, message: Message
    ) -> Message:
        try:
            (blob_len,) = struct.unpack_from(">H", data, offset)
            offset += 2
            blob = data[offset : offset + blob_len]
            if len(blob) != blob_len:
                raise HeaderError("truncated packed header block")
            offset += blob_len
            reader = BitReader(blob)
            for _ in range(n_headers):
                layer_id = reader.read(8)
                codec = self._by_id.get(layer_id)
                if codec is None:
                    raise HeaderError(f"unknown header id {layer_id}")
                message.push_owned_header(codec.layer, codec.decode_bits(reader))
            (body_len,) = struct.unpack_from(">I", data, offset)
            offset += 4
            body = data[offset : offset + body_len]
            if len(body) != body_len:
                raise HeaderError("truncated body")
        except HeaderError:
            raise
        except Exception as exc:
            raise HeaderError(f"corrupt packed packet: {exc}") from exc
        message.add_segment(body)
        return message

    def header_overhead(self, message: Message, mode: str = "aligned") -> int:
        """Wire bytes spent on headers (everything except the body)."""
        return len(self.marshal(message, mode)) - message.body_size - 8


def canonical_content(registry: HeaderRegistry, message: Message) -> bytes:
    """Deterministic byte encoding of a message's headers and body.

    Integrity layers (checksumming, signing) cover everything pushed
    *above* themselves by encoding the current header stack plus the
    body through the registered codecs.  Both sides compute the same
    bytes because codecs are deterministic.

    Owner names are length-prefixed: bare concatenation let distinct
    stacks collide (owners ``"AB"`` + ``"C"`` framed identically to
    ``"A"`` + ``"BC"`` when the encoded headers lined up), which an
    attacker — or plain bad luck — could use to swap headers without
    moving the checksum.  The prefix makes the framing injective.
    """
    out = bytearray()
    for owner, header in message.headers():
        name = owner.encode("utf-8")
        out += struct.pack(">H", len(name))
        out += name
        out += registry.codec_for(owner).encode(header)
    out += message.body_bytes()
    return bytes(out)


def packed_bit_size(registry: HeaderRegistry, message: Message) -> int:
    """Bits needed by the paper's proposed precomputed single header.

    At stack-build time Horus would compute one compacted layout from
    every layer's field declarations; per message the cost is just the
    sum of the fields' natural bit widths — no per-header tags, lengths,
    or padding.
    """
    total = 0
    for owner, header in message.headers():
        total += registry.codec_for(owner).bit_size(header)
    return total


#: The process-wide default registry; layer modules register here at import.
DEFAULT_REGISTRY = HeaderRegistry()


def register(
    layer: str,
    fields: Sequence[FieldSpec],
    defaults: Optional[Dict[str, Any]] = None,
) -> HeaderCodec:
    """Shorthand: build a codec and register it on the default registry."""
    return DEFAULT_REGISTRY.register(HeaderCodec(layer, fields, defaults))
