"""The Horus Common Protocol Interface (HCPI) event vocabulary.

Tables 1 and 2 of the paper define the complete sets of downcalls and
upcalls.  Every layer speaks exactly this interface on both its top and
bottom edges — that uniformity is what lets layers stack in any order
"like LEGO blocks".

Downcalls travel toward the network, upcalls toward the application.
Both are small value objects; layers either handle them, transform
them, or pass them through unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.core.message import Message
from repro.net.address import EndpointAddress

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.view import View


class DowncallType(enum.Enum):
    """Table 1: the complete HCPI downcall set."""

    ENDPOINT = "endpoint"  # create a communication endpoint
    JOIN = "join"  # join group and return handle
    MERGE = "merge"  # merge with other view
    MERGE_DENIED = "merge_denied"  # deny merge request
    MERGE_GRANTED = "merge_granted"  # grant merge request
    VIEW = "view"  # install a group view
    CAST = "cast"  # multicast a message
    SEND = "send"  # send message to subset
    ACK = "ack"  # acknowledge a message
    STABLE = "stable"  # message is stable
    LEAVE = "leave"  # leave group
    FLUSH = "flush"  # remove members and flush
    FLUSH_OK = "flush_ok"  # go along with flush
    DESTROY = "destroy"  # clean up endpoint
    FOCUS = "focus"  # focus on layer and return handle
    DUMP = "dump"  # dump layer information


class FlowVerdict(enum.Enum):
    """Outcome of a CAST/SEND downcall under flow control.

    Not a new HCPI call — Tables 1 and 2 are the paper's frozen
    vocabulary — but a verdict a flow-control layer stamps into
    ``Downcall.extra["flow_verdict"]`` on the way down, so backpressure
    propagates up to the caller instead of vanishing into an unbounded
    queue.  :meth:`~repro.core.group.GroupHandle.cast` returns it.
    """

    ACCEPTED = "accepted"  # charged and passed down immediately
    QUEUED = "queued"  # held in the bounded queue awaiting credit
    SHED = "shed"  # dropped by the shed policy (will never be sent)
    BLOCKED = "blocked"  # refused outright; the caller should retry later


class UpcallType(enum.Enum):
    """Table 2: the complete HCPI upcall set."""

    MERGE_REQUEST = "merge_request"  # request to merge
    MERGE_DENIED = "merge_denied"  # request denied
    FLUSH = "flush"  # view flush started
    FLUSH_OK = "flush_ok"  # flush completed
    VIEW = "view"  # view installation
    CAST = "cast"  # received multicast message
    SEND = "send"  # received subset message
    LEAVE = "leave"  # member leaves
    DESTROY = "destroy"  # endpoint destroyed
    LOST_MESSAGE = "lost_message"  # message was lost
    STABLE = "stable"  # stability update
    PROBLEM = "problem"  # communication problem
    SYSTEM_ERROR = "system_error"  # system error report
    EXIT = "exit"  # close down event


@dataclass(slots=True)
class Downcall:
    """One downcall travelling toward the network.

    Only the fields relevant to the call type are populated; the rest
    stay ``None`` (the HCPI is a narrow waist, not a kitchen sink).
    """

    type: DowncallType
    message: Optional[Message] = None
    #: Destination subset for SEND; member list for VIEW/FLUSH.
    members: Optional[List[EndpointAddress]] = None
    view: Optional["View"] = None
    #: Extra call-specific data (e.g. a merge contact address).
    extra: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        bits = [self.type.name]
        if self.message is not None:
            bits.append(repr(self.message))
        if self.members is not None:
            bits.append(f"members={[str(m) for m in self.members]}")
        return f"<Downcall {' '.join(bits)}>"


@dataclass(slots=True)
class Upcall:
    """One upcall travelling toward the application."""

    type: UpcallType
    message: Optional[Message] = None
    source: Optional[EndpointAddress] = None
    members: Optional[List[EndpointAddress]] = None
    view: Optional["View"] = None
    #: Extra call-specific data (e.g. a stability matrix, an error reason).
    extra: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        bits = [self.type.name]
        if self.source is not None:
            bits.append(f"from={self.source}")
        if self.message is not None:
            bits.append(repr(self.message))
        if self.view is not None:
            bits.append(repr(self.view))
        return f"<Upcall {' '.join(bits)}>"


def cast_down(message: Message) -> Downcall:
    """Shorthand for the hot-path CAST downcall."""
    return Downcall(DowncallType.CAST, message=message)


def send_down(message: Message, members: List[EndpointAddress]) -> Downcall:
    """Shorthand for the SEND-to-subset downcall."""
    return Downcall(DowncallType.SEND, message=message, members=list(members))


def cast_up(message: Message, source: EndpointAddress) -> Upcall:
    """Shorthand for the hot-path CAST upcall."""
    return Upcall(UpcallType.CAST, message=message, source=source)


def send_up(message: Message, source: EndpointAddress) -> Upcall:
    """Shorthand for the SEND upcall."""
    return Upcall(UpcallType.SEND, message=message, source=source)
