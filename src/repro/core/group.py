"""The application-facing group handle.

Section 2: "The top-most module is the only one to deviate from the
Horus interface standard: it converts the Horus protocol abstraction
into one matching the needs and expectations of a user."  The
:class:`GroupHandle` is that top-most module: it turns method calls
into downcalls and upcalls into Python callbacks (or a pollable inbox).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.core.events import (
    Downcall,
    DowncallType,
    FlowVerdict,
    Upcall,
    UpcallType,
)
from repro.core.message import Message
from repro.core.stack import Stack
from repro.core.view import View
from repro.errors import GroupError
from repro.net.address import EndpointAddress, GroupAddress


@dataclass
class DeliveredMessage:
    """One message as delivered to the application.

    Attributes:
        data: the flattened message body.
        source: the sending endpoint.
        was_cast: True for multicasts, False for subset sends.
        view: the view in which the message was delivered (None for
            stacks without a membership layer).
        info: extra per-message facts contributed by layers on the way
            up — e.g. ``stable_id`` from the STABLE layer (pass it to
            :meth:`GroupHandle.ack`) or ``total_seq`` from TOTAL.
        message: the underlying message object.
    """

    data: bytes
    source: EndpointAddress
    was_cast: bool
    view: Optional[View]
    info: Dict[str, Any] = field(default_factory=dict)
    message: Optional[Message] = None


class GroupHandle:
    """A joined group, as seen by the application.

    Created by :meth:`repro.core.endpoint.Endpoint.join`; do not
    construct directly.  Callbacks are invoked from the event loop:

    * ``on_message(delivered)`` for each incoming cast/send (if absent,
      messages accumulate in :attr:`inbox` for :meth:`receive`),
    * ``on_view(view)`` for each view installation,
    * ``on_stable(matrix)`` for stability updates,
    * ``on_problem(member)`` for communication-problem reports,
    * ``on_exit()`` when the endpoint has fully left the group.
    """

    def __init__(
        self,
        endpoint_address: EndpointAddress,
        group: GroupAddress,
        on_message: Optional[Callable[[DeliveredMessage], None]] = None,
        on_view: Optional[Callable[[View], None]] = None,
        on_stable: Optional[Callable[[Dict[Any, Any]], None]] = None,
        on_problem: Optional[Callable[[EndpointAddress], None]] = None,
        on_exit: Optional[Callable[[], None]] = None,
    ) -> None:
        self.endpoint_address = endpoint_address
        self.group = group
        self.on_message = on_message
        self.on_view = on_view
        self.on_stable = on_stable
        self.on_problem = on_problem
        self.on_exit = on_exit
        #: Pollable message queue, used when ``on_message`` is not given.
        self.inbox: Deque[DeliveredMessage] = deque()
        #: The most recently installed view (None before the first VIEW).
        self.view: Optional[View] = None
        #: All views this member has installed, in order.
        self.view_history: List[View] = []
        #: All messages delivered, in delivery order (for verification).
        self.delivery_log: List[DeliveredMessage] = []
        self.left = False
        self._stack: Optional[Stack] = None

    # ------------------------------------------------------------------
    # Wiring (called by Endpoint)
    # ------------------------------------------------------------------

    def attach_stack(self, stack: Stack) -> None:
        """Connect the protocol stack under this handle."""
        self._stack = stack

    @property
    def stack(self) -> Stack:
        """The protocol stack beneath this handle."""
        if self._stack is None:
            raise GroupError("group handle has no stack attached")
        return self._stack

    # ------------------------------------------------------------------
    # Downcalls (Table 1, application side)
    # ------------------------------------------------------------------

    def cast(self, data: bytes, **info: Any) -> Optional[FlowVerdict]:
        """Multicast ``data`` to the group's current view.

        Extra keyword arguments ride down with the call for layers that
        understand them (e.g. ``priority=3`` for a PRIO layer).

        Returns the :class:`~repro.core.events.FlowVerdict` stamped by a
        flow-control layer (``None`` when no such layer is stacked).
        A ``SHED``/``BLOCKED`` verdict means the message will not be
        sent; the caller decides whether to retry, back off, or drop.
        """
        self._check_open()
        message = Message(bytes(data))
        downcall = Downcall(DowncallType.CAST, message=message, extra=info)
        self.stack.down(downcall)
        return downcall.extra.get("flow_verdict")

    def send(
        self, members: List[EndpointAddress], data: bytes
    ) -> Optional[FlowVerdict]:
        """Send ``data`` to a subset of the view.

        Returns the flow verdict, like :meth:`cast`.
        """
        self._check_open()
        if not members:
            raise GroupError("send needs at least one destination")
        message = Message(bytes(data))
        downcall = Downcall(
            DowncallType.SEND, message=message, members=list(members)
        )
        self.stack.down(downcall)
        return downcall.extra.get("flow_verdict")

    def ack(self, delivered: DeliveredMessage) -> None:
        """Tell the stability layer this message ``has been processed``.

        This is the paper's ``horus_ack(m)`` end-to-end mechanism
        (Section 9): what "processed" means — displayed, logged, safe to
        delete — is entirely up to the application.
        """
        self._check_open()
        stable_id = delivered.info.get("stable_id")
        if stable_id is None:
            raise GroupError(
                "message carries no stable_id; is a STABLE/PINWHEEL layer stacked?"
            )
        self.stack.down(
            Downcall(DowncallType.ACK, extra={"stable_id": stable_id})
        )

    def set_destinations(self, members: List[EndpointAddress]) -> None:
        """Manually install a destination set (the ``view`` downcall).

        For stacks *without* a membership layer, "a view ... is nothing
        but the set of destination endpoints for multicast messages"
        (Section 7); this is how the application supplies it.
        """
        self._check_open()
        self.stack.down(Downcall(DowncallType.VIEW, members=list(members)))

    def merge_with(self, contact: EndpointAddress) -> None:
        """Ask the membership layer to merge our view with ``contact``'s."""
        self._check_open()
        self.stack.down(
            Downcall(DowncallType.MERGE, extra={"contact": contact})
        )

    def leave(self) -> None:
        """Leave the group gracefully."""
        if self.left:
            return
        self.stack.down(Downcall(DowncallType.LEAVE))

    def dump(self) -> List[Dict[str, Any]]:
        """The ``dump`` downcall: introspection of every layer."""
        return self.stack.dump()

    def focus(self, layer_name: str, topmost: bool = False):
        """The ``focus`` downcall: a handle on one layer by name.

        Raises when the name is ambiguous unless ``topmost=True``; see
        :meth:`repro.core.stack.Stack.focus`.
        """
        return self.stack.focus(layer_name, topmost=topmost)

    def focus_all(self, layer_name: str):
        """Every instance of one layer, top first (may be empty)."""
        return self.stack.focus_all(layer_name)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def receive(self) -> Optional[DeliveredMessage]:
        """Pop the next delivered message, or ``None`` if the inbox is empty."""
        if self.inbox:
            return self.inbox.popleft()
        return None

    def deliver_upcall(self, upcall: Upcall) -> None:
        """Stack exit point: translate upcalls into application effects."""
        if upcall.type in (UpcallType.CAST, UpcallType.SEND):
            delivered = DeliveredMessage(
                data=upcall.message.body_bytes() if upcall.message else b"",
                source=upcall.source,
                was_cast=upcall.type is UpcallType.CAST,
                view=self.view,
                info=dict(upcall.extra),
                message=upcall.message,
            )
            self.delivery_log.append(delivered)
            if self.on_message is not None:
                self.on_message(delivered)
            else:
                self.inbox.append(delivered)
        elif upcall.type is UpcallType.VIEW:
            self.view = upcall.view
            if upcall.view is not None:
                self.view_history.append(upcall.view)
            if self.on_view is not None and upcall.view is not None:
                self.on_view(upcall.view)
        elif upcall.type is UpcallType.STABLE:
            if self.on_stable is not None:
                self.on_stable(upcall.extra.get("matrix", {}))
        elif upcall.type is UpcallType.PROBLEM:
            if self.on_problem is not None and upcall.source is not None:
                self.on_problem(upcall.source)
        elif upcall.type is UpcallType.EXIT:
            self.left = True
            self.stack.stop()
            if self.on_exit is not None:
                self.on_exit()
        # LOST_MESSAGE, MERGE_REQUEST/DENIED, FLUSH, FLUSH_OK, LEAVE,
        # DESTROY, SYSTEM_ERROR are informational at the application
        # edge; they are observable via the delivery/trace logs.

    def _check_open(self) -> None:
        if self.left:
            raise GroupError(f"endpoint has left group {self.group}")

    def __repr__(self) -> str:
        state = "left" if self.left else "joined"
        return f"<GroupHandle {self.endpoint_address} in {self.group} ({state})>"
