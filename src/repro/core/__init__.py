"""The Horus object model and Common Protocol Interface.

Section 3 of the paper: Horus provides four classes of objects —
endpoints, groups, messages, and threads.  Here:

* :class:`~repro.core.endpoint.Endpoint` — the communicating entity.
* :class:`~repro.core.group.GroupHandle` — the application's view of a
  joined group (the local "group object").
* :class:`~repro.core.message.Message` — header push/pop plus iovec body.
* :class:`~repro.core.process.World` / ``Process`` — the event-queue
  execution model standing in for Horus threads.

Plus the composition machinery: :class:`~repro.core.layer.Layer` (the
protocol abstract data type), :class:`~repro.core.stack.Stack`
(run-time LEGO stacking), and the HCPI event vocabulary in
:mod:`repro.core.events` (Tables 1 and 2).
"""

from repro.core.endpoint import DEFAULT_STACK, Endpoint
from repro.core.events import (
    Downcall,
    DowncallType,
    FlowVerdict,
    Upcall,
    UpcallType,
    cast_down,
    cast_up,
    send_down,
    send_up,
)
from repro.core.group import DeliveredMessage, GroupHandle
from repro.core.headers import (
    DEFAULT_REGISTRY,
    HeaderCodec,
    HeaderRegistry,
    packed_bit_size,
)
from repro.core.layer import Layer, LayerContext
from repro.core.message import Message
from repro.core.process import GuardedScheduler, Process, World
from repro.core.stack import (
    Stack,
    StackConfig,
    build_stack,
    format_stack_spec,
    known_layers,
    parse_stack_spec,
    register_layer,
)
from repro.core.view import View, ViewId

__all__ = [
    "DEFAULT_REGISTRY",
    "DEFAULT_STACK",
    "DeliveredMessage",
    "Downcall",
    "DowncallType",
    "FlowVerdict",
    "Endpoint",
    "GroupHandle",
    "GuardedScheduler",
    "HeaderCodec",
    "HeaderRegistry",
    "Layer",
    "LayerContext",
    "Message",
    "Process",
    "Stack",
    "StackConfig",
    "Upcall",
    "UpcallType",
    "View",
    "ViewId",
    "World",
    "build_stack",
    "cast_down",
    "cast_up",
    "format_stack_spec",
    "known_layers",
    "packed_bit_size",
    "parse_stack_spec",
    "register_layer",
    "send_down",
    "send_up",
]
