"""Reproduction of "A Framework for Protocol Composition in Horus".

(van Renesse, Birman, Friedman, Hayden, Karr — PODC 1995.)

Horus treats a communication protocol as an abstract data type: a layer
with standardized top and bottom interfaces, stackable at run time like
LEGO blocks.  This package reproduces the whole system in Python over a
deterministic discrete-event simulation:

* :mod:`repro.core` — the object model (endpoints, groups, messages)
  and the Horus Common Protocol Interface (HCPI).
* :mod:`repro.layers` — the protocol library: COM, NAK, FRAG, MBRSHIP,
  TOTAL, STABLE, and the rest of the paper's Figure 1 / Table 3 set.
* :mod:`repro.properties` — Tables 3 and 4 as an executable algebra:
  well-formedness checking and stack synthesis.
* :mod:`repro.net` / :mod:`repro.sim` — simulated networks (ATM, UDP,
  LAN) and the event-queue execution substrate.
* :mod:`repro.runtime` — the real-time execution substrate: a
  wall-clock asyncio engine and an OS-UDP transport behind the same
  seams, so the identical stacks serve real traffic
  (:class:`RealtimeWorld` is the drop-in sibling of :class:`World`).
* :mod:`repro.membership` — directory, failure detectors, and the
  Section 9 partition policies.
* :mod:`repro.verify` — executable specifications (the reference-
  implementation methodology of Section 8).
* :mod:`repro.chaos` — declarative, seed-deterministic failure
  scenarios over the unified :class:`FaultPlane`, verified against the
  executable specs and shrinkable to minimal repros.
* :mod:`repro.toolkit` — the Isis-like tools of Section 1: replicated
  state machines and data, locks, primary-backup, load balancing, and
  guaranteed execution.

Quickstart::

    from repro import World

    world = World(seed=1)
    a = world.process("a").endpoint()
    b = world.process("b").endpoint()
    ga = a.join("chat", stack="MBRSHIP:FRAG:NAK:COM")
    gb = b.join("chat", stack="MBRSHIP:FRAG:NAK:COM")
    world.run(2.0)                    # let membership settle
    ga.cast(b"hello group")
    world.run(1.0)
    print(gb.receive().data)          # b'hello group'
"""

from repro.core import (
    DEFAULT_STACK,
    DeliveredMessage,
    Downcall,
    DowncallType,
    Endpoint,
    FlowVerdict,
    GroupHandle,
    Layer,
    LayerContext,
    Message,
    Process,
    Stack,
    StackConfig,
    Upcall,
    UpcallType,
    View,
    ViewId,
    World,
    build_stack,
    known_layers,
    parse_stack_spec,
)
from repro.net import EndpointAddress, FaultModel, GroupAddress
from repro.obs import MetricsRegistry, ObsOptions, SpanRecorder

_LAZY_EXPORTS = {
    # Realtime substrate: loaded on first touch so `import repro` stays
    # light and asyncio-free for pure-simulation users.
    "RealtimeEngine": "repro.runtime.engine",
    "RealtimeWorld": "repro.runtime.world",
    "UdpTransport": "repro.runtime.transport",
    # Chaos engine: same treatment — most users never soak.
    "FaultPlane": "repro.chaos",
    "Scenario": "repro.chaos",
    "ScenarioRunner": "repro.chaos",
    "generate_scenario": "repro.chaos",
    "shrink_scenario": "repro.chaos",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__version__ = "1.0.0"

__all__ = [
    "DEFAULT_STACK",
    "DeliveredMessage",
    "Downcall",
    "DowncallType",
    "Endpoint",
    "EndpointAddress",
    "FaultModel",
    "FaultPlane",
    "FlowVerdict",
    "GroupAddress",
    "GroupHandle",
    "Layer",
    "LayerContext",
    "Message",
    "MetricsRegistry",
    "ObsOptions",
    "Process",
    "RealtimeEngine",
    "RealtimeWorld",
    "Scenario",
    "ScenarioRunner",
    "SpanRecorder",
    "Stack",
    "StackConfig",
    "UdpTransport",
    "Upcall",
    "UpcallType",
    "View",
    "ViewId",
    "World",
    "__version__",
    "build_stack",
    "generate_scenario",
    "known_layers",
    "parse_stack_spec",
    "shrink_scenario",
]
