"""Distributed mutual exclusion from total order.

"It is straightforward to implement ... fault-tolerant synchronization
... in Horus" (Section 9).  Lock requests and releases are multicast
through a TOTAL stack, so every member sees the same queue of waiters
and independently computes the same holder — no lock server, no extra
messages beyond the requests themselves.

Crash safety comes from virtual synchrony: when a view change removes a
member, every survivor prunes it from the queue at the same logical
instant, so a lock held by a crashed process is recovered consistently.
"""

from __future__ import annotations

import json
from typing import Callable, List, Optional, Tuple

from repro.core.endpoint import Endpoint
from repro.core.group import DeliveredMessage
from repro.core.view import View
from repro.net.address import EndpointAddress

DEFAULT_STACK = "TOTAL:MBRSHIP:FRAG:NAK:COM"


class DistributedLock:
    """One member's handle on a named replicated lock.

    >>> lock = DistributedLock(endpoint, "mutex-group", "the-lock")
    >>> lock.acquire(on_granted=lambda: print("mine!"))
    >>> ...
    >>> lock.release()
    """

    def __init__(
        self,
        endpoint: Endpoint,
        group: str,
        lock_name: str = "lock",
        stack: str = DEFAULT_STACK,
    ) -> None:
        self.lock_name = lock_name
        #: The agreed queue of waiters; queue[0] holds the lock.
        self.queue: List[Tuple[str, int]] = []  # (member, request id)
        self._request_seq = 0
        self._grant_callbacks = {}
        self.grants_observed = 0
        # Captured before join(): the first VIEW upcall fires inside it.
        self._address = endpoint.address
        self.handle = endpoint.join(
            group, stack=stack, on_message=self._deliver, on_view=self._on_view
        )

    @property
    def me(self) -> str:
        return str(self._address)

    # ------------------------------------------------------------------
    # Application surface
    # ------------------------------------------------------------------

    def acquire(self, on_granted: Optional[Callable[[], None]] = None) -> int:
        """Queue for the lock; ``on_granted`` fires when it is ours."""
        self._request_seq += 1
        request_id = self._request_seq
        if on_granted is not None:
            self._grant_callbacks[request_id] = on_granted
        self._cast({"op": "acquire", "member": self.me, "id": request_id})
        return request_id

    def release(self) -> None:
        """Give the lock up (no-op unless we hold it when this orders)."""
        self._cast({"op": "release", "member": self.me})

    @property
    def holder(self) -> Optional[str]:
        """Who currently holds the lock, per this member's queue."""
        return self.queue[0][0] if self.queue else None

    def held_by_me(self) -> bool:
        """Whether this member holds the lock right now."""
        return self.holder == self.me

    # ------------------------------------------------------------------
    # Replicated queue machinery
    # ------------------------------------------------------------------

    def _cast(self, message: dict) -> None:
        self.handle.cast(json.dumps(message).encode("utf-8"))

    def _deliver(self, delivered: DeliveredMessage) -> None:
        message = json.loads(delivered.data.decode("utf-8"))
        previous_holder = self.holder
        if message["op"] == "acquire":
            self.queue.append((message["member"], message["id"]))
        elif message["op"] == "release":
            if self.queue and self.queue[0][0] == message["member"]:
                self.queue.pop(0)
        self._notify_if_granted(previous_holder)

    def _on_view(self, view: View) -> None:
        """Prune departed members — identical pruning at every survivor."""
        previous_holder = self.holder
        alive = {str(m) for m in view.members}
        self.queue = [entry for entry in self.queue if entry[0] in alive]
        self._notify_if_granted(previous_holder)

    def _notify_if_granted(self, previous_holder: Optional[str]) -> None:
        if self.holder != previous_holder and self.held_by_me():
            self.grants_observed += 1
            request_id = self.queue[0][1]
            callback = self._grant_callbacks.pop(request_id, None)
            if callback is not None:
                callback()

    def __repr__(self) -> str:
        return (
            f"<DistributedLock {self.lock_name!r} at {self.me} "
            f"holder={self.holder} queue={len(self.queue)}>"
        )
