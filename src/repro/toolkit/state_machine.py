"""Replicated state machines over totally ordered multicast.

The second tier of the paper's three-tier picture (Section 9): "The
second tier closely resembles a state machine, and implements higher
level programming abstractions."  Commands are multicast through a
TOTAL stack; every replica applies the identical sequence to a
deterministic ``apply`` function, so replica state never diverges —
across crashes, joins, and view changes.
"""

from __future__ import annotations

import json
from typing import Any, Callable, List, Optional

from repro.core.endpoint import Endpoint
from repro.core.group import DeliveredMessage

#: apply(state, command) -> new state.  Must be deterministic.
ApplyFn = Callable[[Any, Any], Any]

DEFAULT_STACK = "TOTAL:MBRSHIP:FRAG:NAK:COM"


class ReplicatedStateMachine:
    """One replica of a deterministic state machine.

    >>> rsm = ReplicatedStateMachine(endpoint, "counters", apply_fn,
    ...                              initial={})
    >>> rsm.submit({"op": "incr", "key": "hits"})
    >>> # after world.run(...): rsm.state reflects every applied command

    Commands are JSON-serializable values; ``apply_fn`` receives the
    current state and one command and returns the next state.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        group: str,
        apply_fn: ApplyFn,
        initial: Any = None,
        stack: str = DEFAULT_STACK,
    ) -> None:
        self.apply_fn = apply_fn
        self.state = initial
        #: Every command applied, in order (identical at all replicas).
        self.applied_log: List[Any] = []
        self.handle = endpoint.join(group, stack=stack, on_message=self._deliver)

    def submit(self, command: Any) -> None:
        """Replicate one command (applies everywhere in total order)."""
        self.handle.cast(json.dumps(command).encode("utf-8"))

    def _deliver(self, delivered: DeliveredMessage) -> None:
        command = json.loads(delivered.data.decode("utf-8"))
        self.state = self.apply_fn(self.state, command)
        self.applied_log.append(command)

    @property
    def commands_applied(self) -> int:
        """How many commands this replica has executed."""
        return len(self.applied_log)

    def leave(self) -> None:
        """Retire this replica."""
        self.handle.leave()

    def __repr__(self) -> str:
        return (
            f"<ReplicatedStateMachine {self.handle.endpoint_address} "
            f"applied={self.commands_applied}>"
        )
