"""Replicated state machines over totally ordered multicast.

The second tier of the paper's three-tier picture (Section 9): "The
second tier closely resembles a state machine, and implements higher
level programming abstractions."  Commands are multicast through a
TOTAL stack; every replica applies the identical sequence to a
deterministic ``apply`` function, so replica state never diverges —
across crashes, joins, and view changes.

With the default stack a joining replica receives the coordinator's
``(state, applied_log)`` snapshot through the stack's
:class:`~repro.layers.xfer.StateTransferLayer` before applying new
commands, so late replicas start from the group's history instead of
``initial``.  With ``durable=True`` every applied command is also
journaled to the world's store domain (WAL keyed by
``(node, "rsm.<group>")``) and replayed on ``stateful=True`` recovery.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, List, Optional

from repro.core.endpoint import Endpoint
from repro.core.group import DeliveredMessage

#: apply(state, command) -> new state.  Must be deterministic.
ApplyFn = Callable[[Any, Any], Any]

DEFAULT_STACK = "XFER:TOTAL:MBRSHIP:FRAG:NAK:COM"
#: The pre-XFER stack: joiners start from ``initial``, not group history.
LEGACY_STACK = "TOTAL:MBRSHIP:FRAG:NAK:COM"


class ReplicatedStateMachine:
    """One replica of a deterministic state machine.

    >>> rsm = ReplicatedStateMachine(endpoint, "counters", apply_fn,
    ...                              initial={})
    >>> rsm.submit({"op": "incr", "key": "hits"})
    >>> # after world.run(...): rsm.state reflects every applied command

    Commands are JSON-serializable values; ``apply_fn`` receives the
    current state and one command and returns the next state.  The
    state itself must be JSON-serializable for snapshot transfer and
    durable journaling to work.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        group: str,
        apply_fn: ApplyFn,
        initial: Any = None,
        stack: str = DEFAULT_STACK,
        durable: bool = False,
        namespace: Optional[str] = None,
        snapshot_every: int = 64,
        policy: Any = None,
    ) -> None:
        self.apply_fn = apply_fn
        self.state = initial
        #: Every command applied, in order (identical at all replicas).
        self.applied_log: List[Any] = []
        self.store = None
        self._snapshot_every = max(1, int(snapshot_every))
        #: Commands replayed from a previous incarnation's journal.
        self.recovered_commands = 0
        if durable:
            domain = getattr(endpoint.process.world, "store", None)
            if domain is None:
                raise ValueError(
                    "durable=True needs a world with a store domain"
                )
            self.store = domain.store(
                endpoint.address.node, namespace or f"rsm.{group}",
                policy=policy,
            )
            self._replay_journal()
        self.handle = endpoint.join(group, stack=stack, on_message=self._deliver)
        xfers = self.handle.focus_all("XFER")
        self._xfer = xfers[0] if xfers else None
        if self._xfer is not None:
            self._xfer.bind(provider=self._provide, installer=self._install)

    def submit(self, command: Any) -> bytes:
        """Replicate one command (applies everywhere in total order);
        returns the cast payload bytes."""
        payload = json.dumps(command, sort_keys=True).encode("utf-8")
        self.handle.cast(payload)
        return payload

    def digest(self) -> str:
        """SHA-256 over the canonical JSON ``(state, applied_log)``."""
        return hashlib.sha256(self._state_bytes()).hexdigest()

    @property
    def synced(self) -> bool:
        """Whether this replica holds the group's history (always true
        without an XFER layer, which cannot transfer it)."""
        return self._xfer.synced if self._xfer is not None else True

    def _deliver(self, delivered: DeliveredMessage) -> None:
        try:
            command = json.loads(delivered.data.decode("utf-8"))
        except ValueError:
            return  # foreign traffic; a command is always JSON
        self._apply(command)
        if self.store is not None:
            self.store.append(delivered.data)
            if self.store.since_snapshot >= self._snapshot_every:
                self.store.snapshot(self._state_bytes(), epoch=0)

    def _apply(self, command: Any) -> None:
        self.state = self.apply_fn(self.state, command)
        self.applied_log.append(command)

    # ------------------------------------------------------------------
    # XFER callbacks and durable journaling
    # ------------------------------------------------------------------

    def _state_bytes(self) -> bytes:
        return json.dumps(
            {"state": self.state, "applied_log": self.applied_log},
            sort_keys=True,
        ).encode("utf-8")

    def _provide(self) -> bytes:
        return self._state_bytes()

    def _install(self, state: bytes, epoch: int):
        try:
            decoded = json.loads(state.decode("utf-8")) if state else {}
        except ValueError:
            return None
        self.state = decoded.get("state")
        self.applied_log = list(decoded.get("applied_log", ()))
        if self.store is not None:
            # The ticket lets XFER's ack="durable" defer sync to disk.
            return self.store.snapshot(self._state_bytes(), epoch=epoch)
        return None

    def _replay_journal(self) -> None:
        replayed = self.store.replay()
        if replayed.snapshot is not None:
            try:
                decoded = json.loads(replayed.snapshot.decode("utf-8"))
                self.state = decoded.get("state")
                self.applied_log = list(decoded.get("applied_log", ()))
            except ValueError:
                pass
        for record in replayed.entries:
            try:
                self._apply(json.loads(record.decode("utf-8")))
            except ValueError:
                continue
        self.recovered_commands = len(replayed.entries)

    @property
    def commands_applied(self) -> int:
        """How many commands this replica has executed."""
        return len(self.applied_log)

    def leave(self) -> None:
        """Retire this replica."""
        self.handle.leave()

    def __repr__(self) -> str:
        return (
            f"<ReplicatedStateMachine {self.handle.endpoint_address} "
            f"applied={self.commands_applied}>"
        )
