"""Guaranteed execution: a task runs to completion despite crashes.

The Isis tool list (Section 1) includes "guaranteed execution": once a
task is submitted to the group, *some* member executes it, even if the
member that started it crashes mid-way — and no task executes its
effect twice.

Mechanism: tasks and completions are totally ordered multicasts.  The
current owner of a task is a deterministic function of the view (its
rank by task hash, like the load balancer); on a view change, tasks
whose completions have not been seen are re-owned and re-executed by
the new owner.  Exactly-once *effects* come from idempotent execution
plus completion dedup — the classic at-least-once execution /
at-most-once effect split.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Set

from repro.core.endpoint import Endpoint
from repro.core.group import DeliveredMessage
from repro.core.view import View

DEFAULT_STACK = "TOTAL:MBRSHIP:FRAG:NAK:COM"

TaskFn = Callable[[bytes], None]


def _owner_rank(task_id: bytes, group_size: int) -> int:
    digest = hashlib.sha256(task_id).digest()
    return int.from_bytes(digest[:4], "big") % group_size


class GuaranteedExecutor:
    """One member of a crash-tolerant task execution group.

    >>> executor = GuaranteedExecutor(endpoint, "tasks", run_task)
    >>> executor.submit(b"backup-database")
    >>> # run_task(b"backup-database") executes exactly once group-wide,
    >>> # even if its first owner crashes before finishing.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        group: str,
        task_fn: TaskFn,
        stack: str = DEFAULT_STACK,
    ) -> None:
        self.task_fn = task_fn
        self.view: Optional[View] = None
        #: Tasks seen but not yet completed, in arrival order.
        self.outstanding: List[bytes] = []
        self.completed: Set[bytes] = set()
        #: Tasks this member executed (for tests/metrics).
        self.executed: List[bytes] = []
        # Captured before join(): the first VIEW upcall fires inside it.
        self._address = endpoint.address
        self.handle = endpoint.join(
            group, stack=stack, on_message=self._deliver, on_view=self._on_view
        )

    def submit(self, task: bytes) -> None:
        """Offer a task for guaranteed execution (any member may)."""
        self.handle.cast(b"T" + task)

    # ------------------------------------------------------------------

    def owner_rank_of(self, task: bytes) -> Optional[int]:
        """The view rank that owns ``task`` right now (None pre-view)."""
        if self.view is None or self.view.size == 0:
            return None
        return _owner_rank(task, self.view.size)

    def _owns(self, task: bytes) -> bool:
        if self.view is None or self.view.size == 0:
            return False
        rank = _owner_rank(task, self.view.size)
        return self.view.members[rank] == self._address

    def _execute(self, task: bytes) -> None:
        self.executed.append(task)
        self.task_fn(task)
        self.handle.cast(b"D" + task)

    def _deliver(self, delivered: DeliveredMessage) -> None:
        kind, task = delivered.data[:1], delivered.data[1:]
        if kind == b"T":
            if task in self.completed or task in self.outstanding:
                return
            self.outstanding.append(task)
            if self._owns(task):
                self._execute(task)
        elif kind == b"D":
            # Completion: dedup point — every member agrees (total
            # order) which completion was first.
            if task not in self.completed:
                self.completed.add(task)
                if task in self.outstanding:
                    self.outstanding.remove(task)

    def _on_view(self, view: View) -> None:
        self.view = view
        # Re-own tasks whose completion never arrived: their owner may
        # have crashed mid-execution.
        for task in list(self.outstanding):
            if self._owns(task):
                self._execute(task)

    def __repr__(self) -> str:
        return (
            f"<GuaranteedExecutor {self._address} outstanding="
            f"{len(self.outstanding)} completed={len(self.completed)}>"
        )
