"""Isis-style tools over the Horus core (Section 1).

"Isis supported process groups with mechanisms for joining a group ...
and communicating with groups using atomic, ordered multicasts.  These
primitive functions were used to support tools for locking and
replicating data, load-balancing, guaranteed execution, primary-backup
fault-tolerance, parallel computation, and system control and
management.  Horus focuses on the core of Isis, implementing a very
powerful process group communication architecture which can be used in
support of Isis-like tools."

This package is those tools, rebuilt on the reproduction's public API —
nothing here touches layer internals; everything goes through
:class:`~repro.core.group.GroupHandle`:

* :class:`~repro.toolkit.state_machine.ReplicatedStateMachine` —
  deterministic command replication over totally ordered multicast.
* :class:`~repro.toolkit.replicated_data.ReplicatedDict` — a replicated
  key-value map with state transfer to joiners.
* :class:`~repro.toolkit.lock.DistributedLock` — mutual exclusion from
  total order, with crash-safe lock recovery via view changes.
* :class:`~repro.toolkit.primary_backup.PrimaryBackup` — primary-backup
  fault tolerance with automatic failover.
* :class:`~repro.toolkit.load_balancer.LoadBalancer` — coordination-free
  work partitioning by view rank.
"""

from repro.toolkit.guaranteed import GuaranteedExecutor
from repro.toolkit.load_balancer import LoadBalancer
from repro.toolkit.lock import DistributedLock
from repro.toolkit.primary_backup import PrimaryBackup
from repro.toolkit.replicated_data import ReplicatedDict
from repro.toolkit.state_machine import ReplicatedStateMachine

__all__ = [
    "DistributedLock",
    "GuaranteedExecutor",
    "LoadBalancer",
    "PrimaryBackup",
    "ReplicatedDict",
    "ReplicatedStateMachine",
]
