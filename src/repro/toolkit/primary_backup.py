"""Primary-backup fault tolerance.

One of the Isis tools the paper's introduction lists.  The oldest view
member is the primary (the coordinator — the same message-free election
the membership layer uses); it executes client operations and multicasts
the *results* so backups stay in lock-step without re-executing anything
non-deterministic.  When a view change removes the primary, the next
oldest member takes over instantly — every survivor agrees who that is
without exchanging a single election message.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional

from repro.core.endpoint import Endpoint
from repro.core.group import DeliveredMessage
from repro.core.view import View

DEFAULT_STACK = "TOTAL:MBRSHIP:FRAG:NAK:COM"

#: execute(state, operation) -> (new_state, result).  May be
#: non-deterministic: only the primary runs it.
ExecuteFn = Callable[[Any, Any], Any]


class PrimaryBackup:
    """One member of a primary-backup service group.

    >>> service = PrimaryBackup(endpoint, "svc", execute_fn, initial=0)
    >>> if service.is_primary:
    ...     service.submit({"op": "charge", "amount": 10})
    """

    def __init__(
        self,
        endpoint: Endpoint,
        group: str,
        execute: ExecuteFn,
        initial: Any = None,
        stack: str = DEFAULT_STACK,
    ) -> None:
        self.execute = execute
        self.state = initial
        self.view: Optional[View] = None
        #: Results applied, in order (identical at primary and backups).
        self.result_log: List[Any] = []
        #: Operations accepted while not primary, forwarded on promotion.
        self._deferred: List[Any] = []
        self.failovers = 0
        # Captured before join(): the first VIEW upcall fires inside it.
        self._address = endpoint.address
        self.handle = endpoint.join(
            group, stack=stack, on_message=self._deliver, on_view=self._on_view
        )

    @property
    def is_primary(self) -> bool:
        """Whether this member currently executes operations."""
        return self.view is not None and self.view.coordinator == self._address

    def submit(self, operation: Any) -> None:
        """Hand one operation to the service.

        On the primary the operation executes at once and its state
        delta replicates; on a backup it is deferred and executes if
        this member is ever promoted (client retry logic in miniature).
        """
        if self.is_primary:
            self._execute_and_replicate(operation)
        else:
            self._deferred.append(operation)

    def _execute_and_replicate(self, operation: Any) -> None:
        self.state, result = self.execute(self.state, operation)
        self.handle.cast(
            json.dumps({"state": self.state, "result": result}).encode("utf-8")
        )

    def _deliver(self, delivered: DeliveredMessage) -> None:
        update = json.loads(delivered.data.decode("utf-8"))
        # Backups adopt the primary's post-execution state verbatim; the
        # primary's own loopback confirms replication ordering.
        self.state = update["state"]
        self.result_log.append(update["result"])

    def _on_view(self, view: View) -> None:
        was_primary = self.is_primary
        self.view = view
        if self.is_primary and not was_primary:
            self.failovers += 1
            deferred, self._deferred = self._deferred, []
            for operation in deferred:
                self._execute_and_replicate(operation)

    def __repr__(self) -> str:
        role = "primary" if self.is_primary else "backup"
        return f"<PrimaryBackup {self._address} ({role})>"
